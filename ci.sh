#!/usr/bin/env bash
# CI gate for the pipeline-adc workspace. Run from the repo root:
#
#   ./ci.sh                    # every stage, in order
#   ./ci.sh fmt clippy lint    # just the named stages
#   ./ci.sh --deny-perf        # perf regressions fail the build
#
# Stages (each is timed; a wall-clock summary table prints on exit):
#   fmt         -- formatting is enforced, not advisory
#   clippy      -- workspace-wide, all targets, warnings are errors
#   lint        -- adc-lint workspace-native static analysis (DESIGN.md
#                  §10, §15): interprocedural determinism / panic-
#                  freedom / lock-order invariants over the workspace
#                  call graph; any diagnostic, stale allow pragma, or
#                  malformed pragma fails under --deny. Emits the JSON
#                  report and DOT/JSON call+lock graphs under
#                  target/lint/ (uploaded as a CI artifact) and is
#                  bounded by a hard 30s wall-clock guard
#   build       -- release build of the whole workspace
#   test        -- full test suite (unit + integration + property)
#   determinism -- cross-profile anchor: the `determinism` integration
#                  test runs in debug AND release against one shared
#                  ADC_DETERMINISM_HASH_FILE (campaign digest) and
#                  ADC_DETERMINISM_LANES_HASH_FILE (lane-parallel SoA
#                  kernel digest), so "debug and release produce
#                  bit-identical campaign AND laned-conversion results"
#                  is asserted, not assumed
#   service     -- loopback gate: the `service` suite (real TCP server,
#                  concurrent clients, pipelined out-of-order
#                  completions, admission-control shedding under
#                  overload, bit-identity vs in-process records)
#                  re-runs in release under a hard wall-clock guard —
#                  a hung drain fails CI instead of wedging it
#   cluster     -- distribution gate: the `cluster` suite spins up two
#                  loopback servers and diffs the distributed campaign
#                  digest against the in-process one, in release under
#                  the same hard wall-clock guard as `service`
#   perf        -- regression gate: regenerates BENCH_runtime.json,
#                  BENCH_service.json, BENCH_dsp.json,
#                  BENCH_interleave.json, and BENCH_cluster.json in a
#                  scratch dir and diffs them against the baselines
#                  committed at HEAD with `bench_compare` (±30% on
#                  samples/sec, p99 latency, DSP-kernel us/call,
#                  ganged-array us/epoch, cluster jobs/sec, and — via
#                  --lanes — the DSP lane-axis rows: laned samples/sec
#                  and speedup vs scalar per lane count; exempt across
#                  differing host_cpus; the DSP, interleave, and
#                  cluster comparisons are skipped when HEAD predates
#                  their reports, and the lane axis is advisory while
#                  the baseline predates the lanes field). Advisory by
#                  default; fatal under --deny-perf.
#
# Every run writes target/ci_summary.json (stage wall-clock + status +
# exit status) for artifact upload, and appends the same table — with
# the failing stage named — to $GITHUB_STEP_SUMMARY when set.
set -euo pipefail
cd "$(dirname "$0")"

ALL_STAGES=(fmt clippy lint build test determinism service cluster perf)
DENY_PERF=0
SELECTED=()
for arg in "$@"; do
  case "$arg" in
    --deny-perf) DENY_PERF=1 ;;
    -h|--help)
      echo "usage: ./ci.sh [--deny-perf] [stage ...]"
      echo "stages: ${ALL_STAGES[*]}"
      exit 0
      ;;
    -*) echo "unknown flag: $arg (try --help)" >&2; exit 2 ;;
    *)
      case " ${ALL_STAGES[*]} " in
        *" $arg "*) SELECTED+=("$arg") ;;
        *) echo "unknown stage: $arg (stages: ${ALL_STAGES[*]})" >&2; exit 2 ;;
      esac
      ;;
  esac
done
[ ${#SELECTED[@]} -eq 0 ] && SELECTED=("${ALL_STAGES[@]}")

say() { printf '\n==> %s\n' "$*"; }

SCRATCH=$(mktemp -d)
TIMINGS=()
CURRENT_STAGE=""
CURRENT_START=0

summary() {
  status=$?
  if [ -n "$CURRENT_STAGE" ]; then
    TIMINGS+=("$CURRENT_STAGE $(( $(date +%s) - CURRENT_START )) FAILED")
  fi
  if [ ${#TIMINGS[@]} -gt 0 ]; then
    printf '\n%-14s %8s  %s\n' "stage" "wall (s)" "status"
    for row in "${TIMINGS[@]}"; do
      # shellcheck disable=SC2086
      printf '%-14s %8s  %s\n' $row
    done
    # Machine-readable run record for CI artifact upload: one row per
    # executed stage plus the run's overall exit status.
    mkdir -p target
    {
      printf '{\n  "exit_status": %s,\n  "deny_perf": %s,\n  "stages": [\n' \
        "$status" "$DENY_PERF"
      first=1
      for row in "${TIMINGS[@]}"; do
        read -r name wall result <<< "$row"
        [ $first = 1 ] || printf ',\n'
        first=0
        printf '    { "stage": "%s", "wall_s": %s, "status": "%s" }' \
          "$name" "$wall" "$result"
      done
      printf '\n  ]\n}\n'
    } > target/ci_summary.json
  fi
  # On GitHub runners, name the failing stage (or the green run) where
  # reviewers look first — the job's step summary.
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ] && [ ${#TIMINGS[@]} -gt 0 ]; then
    {
      if [ "$status" = 0 ]; then
        echo "### CI green (\`${SELECTED[*]}\`)"
      else
        echo "### CI FAILED in stage \`$CURRENT_STAGE\`"
      fi
      echo
      echo "| stage | wall (s) | status |"
      echo "| --- | ---: | --- |"
      for row in "${TIMINGS[@]}"; do
        read -r name wall result <<< "$row"
        echo "| $name | $wall | $result |"
      done
    } >> "$GITHUB_STEP_SUMMARY"
  fi
  rm -rf "$SCRATCH"
  exit $status
}
trap summary EXIT

stage_fmt() {
  cargo fmt --all --check
}

stage_clippy() {
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_lint() {
  # Analysis artifacts (machine-readable report + call/lock graphs)
  # land under target/lint/ for CI upload. The interprocedural scan
  # finishes in single-digit seconds; the hard 30s guard turns an
  # accidental fixpoint blowup into a CI failure instead of a hang.
  mkdir -p target/lint
  cargo build -q -p adc-lint
  timeout 30 target/debug/adc-lint --deny \
    --json target/lint/report.json --graph-out target/lint/graphs
}

stage_build() {
  cargo build --release --workspace
}

stage_test() {
  cargo test -q
  cargo test -q --workspace
}

stage_determinism() {
  hash_file="$SCRATCH/determinism.hash"
  lanes_hash_file="$SCRATCH/determinism_lanes.hash"
  rm -f "$hash_file" "$lanes_hash_file"
  ADC_DETERMINISM_HASH_FILE=$hash_file \
    ADC_DETERMINISM_LANES_HASH_FILE=$lanes_hash_file \
    cargo test -q --test determinism
  ADC_DETERMINISM_HASH_FILE=$hash_file \
    ADC_DETERMINISM_LANES_HASH_FILE=$lanes_hash_file \
    cargo test -q --release --test determinism
  echo "determinism digest: $(cat "$hash_file")"
  echo "laned-kernel digest: $(cat "$lanes_hash_file")"
}

stage_service() {
  timeout 300 cargo test -q --release --test service
}

stage_cluster() {
  timeout 300 cargo test -q --release --test cluster
}

stage_perf() {
  baseline="$SCRATCH/baseline"
  fresh="$SCRATCH/fresh"
  mkdir -p "$baseline" "$fresh"
  if ! git show HEAD:BENCH_runtime.json > "$baseline/BENCH_runtime.json" 2>/dev/null ||
     ! git show HEAD:BENCH_service.json > "$baseline/BENCH_service.json" 2>/dev/null; then
    echo "no committed BENCH baselines at HEAD; skipping perf gate"
    return 0
  fi
  # BENCH_dsp.json, BENCH_interleave.json, and BENCH_cluster.json are
  # newer than the other baselines; bench_compare skips their
  # comparisons gracefully when HEAD predates them.
  git show HEAD:BENCH_dsp.json > "$baseline/BENCH_dsp.json" 2>/dev/null ||
    rm -f "$baseline/BENCH_dsp.json"
  git show HEAD:BENCH_interleave.json > "$baseline/BENCH_interleave.json" 2>/dev/null ||
    rm -f "$baseline/BENCH_interleave.json"
  git show HEAD:BENCH_cluster.json > "$baseline/BENCH_cluster.json" 2>/dev/null ||
    rm -f "$baseline/BENCH_cluster.json"
  cargo build --release -q -p adc-bench --bins
  bin_dir="$PWD/target/release"
  (cd "$fresh" && "$bin_dir/bench_runtime" && "$bin_dir/bench_service" &&
    "$bin_dir/bench_dsp" && "$bin_dir/bench_interleave" && "$bin_dir/bench_cluster")
  deny_flag=()
  [ "$DENY_PERF" = 1 ] && deny_flag=(--deny-perf)
  # --lanes adds the DSP lane-axis rows (laned samples/sec and speedup
  # vs scalar per lane count); advisory automatically while the HEAD
  # baseline predates the lanes field.
  "$bin_dir/bench_compare" --baseline-dir "$baseline" --fresh-dir "$fresh" \
    --lanes "${deny_flag[@]}"
}

for stage in "${SELECTED[@]}"; do
  say "$stage"
  CURRENT_STAGE="$stage"
  CURRENT_START=$(date +%s)
  "stage_$stage"
  TIMINGS+=("$stage $(( $(date +%s) - CURRENT_START )) ok")
  CURRENT_STAGE=""
done

say "CI green"
