#!/usr/bin/env bash
# CI gate for the pipeline-adc workspace. Run from the repo root:
#
#   ./ci.sh
#
# Stages:
#   1. cargo fmt    -- formatting is enforced, not advisory
#   2. cargo clippy -- workspace-wide, all targets, warnings are errors
#   3. adc-lint     -- workspace-native static analysis (DESIGN.md §10):
#      the determinism / panic-freedom / float-discipline invariants are
#      checked at the source level; any diagnostic, stale allow pragma,
#      or malformed pragma fails the build under --deny
#   4. release build
#   5. full test suite (unit + integration + property tests)
#   6. cross-profile determinism anchor: the `determinism` integration
#      test runs in debug AND release against one shared
#      ADC_DETERMINISM_HASH_FILE, so "debug and release produce
#      bit-identical campaign results" is an asserted property, not an
#      assumption. The first profile records the campaign digest; the
#      second must reproduce it exactly.
#   7. service loopback gate: the `service` integration suite (real TCP
#      server, concurrent clients, bit-identity vs in-process records)
#      re-runs in release under a hard wall-clock guard — a hung drain
#      or deadlocked backpressure queue fails CI instead of wedging it.
set -euo pipefail
cd "$(dirname "$0")"

say() { printf '\n==> %s\n' "$*"; }

say "fmt check"
cargo fmt --all --check

say "clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

say "adc-lint (project invariants: determinism, panic-freedom, float discipline)"
cargo run -q -p adc-lint -- --deny

say "release build"
cargo build --release --workspace

say "tests (tier 1: umbrella crate, then the full workspace)"
cargo test -q
cargo test -q --workspace

say "cross-profile determinism (debug vs release, shared hash file)"
hash_file=$(mktemp)
trap 'rm -f "$hash_file"' EXIT
ADC_DETERMINISM_HASH_FILE=$hash_file cargo test -q --test determinism
ADC_DETERMINISM_HASH_FILE=$hash_file cargo test -q --release --test determinism
say "determinism digest: $(cat "$hash_file")"

say "service loopback gate (release, 300 s wall-clock guard)"
timeout 300 cargo test -q --release --test service

say "CI green"
