//! # pipeline-adc
//!
//! Umbrella crate for the behavioral reproduction of the DATE 2004 paper
//! *"A 97mW 110MS/s 12b Pipeline ADC Implemented in 0.18µm Digital CMOS"*
//! (Andersen et al., Nordic Semiconductor).
//!
//! Re-exports the workspace crates under one namespace:
//!
//! * [`analog`] — behavioral analog components (opamps, switches,
//!   capacitors, comparators, references, noise);
//! * [`spectral`] — FFT, windows, SNR/SNDR/SFDR/ENOB, INL/DNL, sine fits;
//! * [`bias`] — the switched-capacitor bias generator (paper Eq. 1),
//!   current mirrors, and the power model (Fig. 4);
//! * [`pipeline`] — the 10×1.5-bit + 2-bit-flash converter itself;
//! * [`calib`] — background calibration for time-interleaved arrays:
//!   live-data offset/gain/timing estimation, fractional-delay
//!   correction, and the ganged-capture scenario;
//! * [`testbench`] — signal sources, band-pass filters, measurement
//!   sessions, sweeps, the Table I datasheet, and the Fig. 8 FoM survey;
//! * [`runtime`] — the deterministic parallel campaign engine the
//!   sweeps and Monte-Carlo runs execute on;
//! * [`server`] — the streaming digitization service: the converter
//!   behind a length-prefixed TCP protocol, bit-identical to direct
//!   library calls at the same seed;
//! * [`cluster`] — distributed campaign execution: job batches farmed
//!   to remote `adc-server` hosts with work stealing and shared
//!   content-addressed caches, assembled bit-identically to an
//!   in-process run;
//! * [`trace`] — deterministic tracing & profiling: span guards and
//!   counters threaded through the runtime, server, and pipeline, with
//!   Chrome trace-event and human-summary exporters.
//!
//! ```
//! use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
//! use pipeline_adc::testbench::MeasurementSession;
//!
//! # fn main() -> Result<(), pipeline_adc::pipeline::BuildAdcError> {
//! // The paper's die on the bench, measured at fin = 10 MHz:
//! let mut bench = MeasurementSession::nominal()?;
//! let m = bench.measure_tone(10e6);
//! assert!(m.analysis.enob > 10.0);
//!
//! // Or drive the converter directly:
//! let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7)?;
//! assert!((adc.power_w() - 0.097).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

pub use adc_analog as analog;
pub use adc_bias as bias;
pub use adc_calib as calib;
pub use adc_cluster as cluster;
pub use adc_digital as digital;
pub use adc_pipeline as pipeline;
pub use adc_runtime as runtime;
pub use adc_server as server;
pub use adc_spectral as spectral;
pub use adc_testbench as testbench;
pub use adc_trace as trace;
