//! SoC scenario: interleave two of the paper's IP blocks for 220 MS/s.
//!
//! The narrative runs the repair ladder end to end on one mismatched
//! array — timing skew and bandwidth spread drawn Monte-Carlo style on
//! top of the per-die offset/gain differences:
//!
//! 1. **raw** — the textbook pathology on display: offset tone at
//!    `fs/2`, gain/skew images at `fs/2 − fin`;
//! 2. **foreground alignment** — a DC calibration cures offset and gain
//!    but is blind to timing skew, so the image family stays;
//! 3. **background calibration** — the LMS loop estimates skew from
//!    live conversion data and drives the fractional-delay corrector,
//!    taking the image family down too.
//!
//! Spur attribution at each rung comes from the forensics module, which
//! knows *where* each mismatch family must land.
//!
//! Run with: `cargo run --release --example interleaving`

use pipeline_adc::calib::{BackgroundCalibrator, CalState, CalibConfig};
use pipeline_adc::pipeline::interleave::{InterleaveMismatch, InterleavedAdc};
use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::spectral::interleave::attribute_record;
use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use pipeline_adc::spectral::window::coherent_frequency;

fn measure(ilv: &mut InterleavedAdc, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192;
    let fs = ilv.sample_rate_hz();
    let (f_in, _) = coherent_frequency(fs, n, 20e6);
    let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
    let record = ilv.convert_waveform(&tone, n);
    let a = analyze_tone(&record, &ToneAnalysisConfig::coherent())?;
    let spurs = attribute_record(&record, ilv.channel_count())?;
    println!(
        "{label:28} SNDR {:5.1} dB   ENOB {:5.2}   offset family {:6.1} dBc   image family {:6.1} dBc",
        a.sndr_db, a.enob, spurs.offset_worst_dbc, spurs.image_worst_dbc
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("two nominal dies (seeds 7, 8) interleaved to 220 MS/s, fin = 20 MHz");
    println!("with typical timing-skew and bandwidth mismatch drawn from the seed\n");
    let mut ilv = InterleavedAdc::build_with_mismatch(
        &AdcConfig::nominal_110ms(),
        2,
        220e6,
        7,
        &InterleaveMismatch::typical(),
    )?;
    println!(
        "array power: {:.1} mW ({} channels), drawn skews: {:?} ps\n",
        ilv.power_w() * 1e3,
        ilv.channel_count(),
        ilv.channel_skews_s()
            .iter()
            .map(|s| (s * 1e12 * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    measure(&mut ilv, "raw (unaligned channels)")?;

    // Rung 2: foreground DC alignment — cures offset/gain, not timing.
    ilv.align_channels(64);
    measure(&mut ilv, "after foreground alignment")?;

    // Rung 3: background calibration from live conversion data alone.
    // The loop watches interleaved records of the working stimulus and
    // converges to Hold; no calibration signal is injected.
    let fs = ilv.sample_rate_hz();
    let m = ilv.channel_count();
    let mut cal = BackgroundCalibrator::new(m, fs, CalibConfig::default());
    let epoch_len = 4096;
    let (f_cal, _) = coherent_frequency(fs, epoch_len, 20e6);
    let wave = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_cal * t).sin();
    let mut epochs = 0;
    for _ in 0..24 {
        let record = ilv.convert_waveform(&wave, epoch_len);
        let report = cal.observe(&record)?;
        cal.apply_to(&mut ilv);
        epochs += 1;
        if report.state == CalState::Hold {
            break;
        }
    }
    println!(
        "background loop reached {:?} after {epochs} epochs",
        cal.state()
    );
    measure(&mut ilv, "after background calibration")?;

    println!("\nforeground alignment kills the offset family but the image");
    println!("family survives (timing skew is invisible at DC); the background");
    println!("loop estimates skew from the data itself and drives the");
    println!("fractional-delay corrector, pulling the image family down too.");
    Ok(())
}
