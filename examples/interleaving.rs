//! SoC scenario: interleave two of the paper's IP blocks for 220 MS/s.
//!
//! Shows the textbook interleaving pathology (offset tone at fs/2, gain
//! image at fs/2 − fin) and the foreground channel alignment that cures
//! the correctable part of it.
//!
//! Run with: `cargo run --release --example interleaving`

use pipeline_adc::pipeline::interleave::InterleavedAdc;
use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use pipeline_adc::spectral::window::coherent_frequency;

fn measure(ilv: &mut InterleavedAdc, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192;
    let fs = ilv.sample_rate_hz();
    let (f_in, _) = coherent_frequency(fs, n, 20e6);
    let tone = move |t: f64| 0.98 * (2.0 * std::f64::consts::PI * f_in * t).sin();
    let record = ilv.convert_waveform(&tone, n);
    let a = analyze_tone(&record, &ToneAnalysisConfig::coherent())?;
    println!(
        "{label:28} SNDR {:5.1} dB   SFDR {:5.1} dB   ENOB {:5.2}   worst spur @ bin {}",
        a.sndr_db, a.sfdr_db, a.enob, a.worst_spur_bin
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("two nominal dies (seeds 7, 8) interleaved to 220 MS/s, fin = 20 MHz\n");
    let mut ilv = InterleavedAdc::build(&AdcConfig::nominal_110ms(), 2, 220e6, 7)?;
    println!(
        "array power: {:.1} mW ({} channels)\n",
        ilv.power_w() * 1e3,
        ilv.channel_count()
    );

    measure(&mut ilv, "raw (unaligned channels)")?;
    ilv.align_channels(64);
    measure(&mut ilv, "after offset/gain alignment")?;

    println!("\nfor reference, the pathology at full strength:");
    ilv.inject_mismatch(1, 5e-3, 1.02);
    measure(&mut ilv, "5 mV / 2% injected mismatch")?;

    println!("\nresidual spurs after alignment come from mismatches the");
    println!("foreground procedure cannot see (timing skew, nonlinearity");
    println!("differences) — the classic interleaving literature's subject.");
    Ok(())
}
