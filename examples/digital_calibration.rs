//! Extension scenario: foreground digital weight calibration.
//!
//! The paper's converter relies on raw capacitor matching for its
//! linearity; its successors added digital calibration. This example
//! measures a mismatched die's static accuracy with the ideal radix-2
//! reconstruction weights, then calibrates the actual per-stage weights
//! and measures again.
//!
//! Run with: `cargo run --release --example digital_calibration`

use pipeline_adc::analog::capacitor::CapacitorSpec;
use pipeline_adc::pipeline::calibration::{
    calibrate_foreground, training_levels, CalibrationWeights,
};
use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A die with 4x the nominal capacitor mismatch, noise suppressed so
    // the static effect is visible in isolation.
    let mut cfg = AdcConfig::ideal(110e6);
    cfg.c_sample_stage1 = CapacitorSpec::new(4e-12, 0.0, 0.004);
    let mut adc = PipelineAdc::build(cfg, 11)?;

    let ideal_weights = CalibrationWeights::ideal(10, 1.0);
    println!("calibrating: 512 training levels across +/-0.98 V_REF...");
    let fitted = calibrate_foreground(&mut adc, &training_levels(512, 1.0), 1)?;
    println!(
        "fit residual: {:.1} uV rms\n",
        fitted.fit_residual_rms_v * 1e6
    );

    println!("stage   ideal weight   fitted weight   deviation");
    for (i, (ideal, fit)) in ideal_weights
        .stage_weights_v
        .iter()
        .zip(&fitted.stage_weights_v)
        .enumerate()
    {
        println!(
            "  {:2}    {:10.6} V   {:10.6} V   {:+8.4} %",
            i + 1,
            ideal,
            fit,
            (fit / ideal - 1.0) * 100.0
        );
    }

    // Compare static accuracy over a fresh evaluation sweep.
    let rms = |weights: &CalibrationWeights, adc: &mut PipelineAdc| {
        let mut sum2 = 0.0;
        let points = 801;
        for i in 0..points {
            let v = -0.95 + 1.9 * i as f64 / (points - 1) as f64;
            let raw = adc.convert_held_raw(v);
            sum2 += (weights.reconstruct_v(&raw) - v).powi(2);
        }
        (sum2 / points as f64).sqrt()
    };
    let err_ideal = rms(&ideal_weights, &mut adc);
    let err_fitted = rms(&fitted, &mut adc);
    let lsb = 2.0 / 4096.0;
    println!(
        "\nstatic RMS error with ideal weights:  {:.2} LSB",
        err_ideal / lsb
    );
    println!(
        "static RMS error after calibration:   {:.2} LSB",
        err_fitted / lsb
    );
    println!(
        "improvement: {:.1}x — mismatch-induced INL removed digitally.",
        err_ideal / err_fitted
    );
    Ok(())
}
