//! SoC-integrator scenario: one ADC IP block, many applications.
//!
//! The paper pitches the converter as an IP block whose power scales
//! automatically with the clock you feed it (Eq. 1), holding full
//! performance from 20 to 140 MS/s. This example plays the SoC
//! integrator: drop the same block into an imaging, an ultrasound, and a
//! communications product — each at its own conversion rate — and compare
//! against a conventional fixed-bias design sized for the fastest case.
//!
//! Run with: `cargo run --release --example power_scaling`

use pipeline_adc::pipeline::{AdcConfig, BiasKind};
use pipeline_adc::testbench::report::TextTable;
use pipeline_adc::testbench::{MeasurementSession, GOLDEN_SEED};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let applications = [
        ("imaging sensor readout", 25e6, 5e6),
        ("ultrasound front-end", 40e6, 8e6),
        ("cable comms receiver", 110e6, 10e6),
        ("max-rate stress", 140e6, 10e6),
    ];

    let mut table = TextTable::new([
        "application",
        "rate (MS/s)",
        "SC-bias power (mW)",
        "fixed-bias power (mW)",
        "SNDR (dB)",
        "ENOB",
    ]);

    for (name, f_cr, f_in) in applications {
        // The paper's design: SC bias scales with the applied clock.
        let sc_config = AdcConfig {
            f_cr_hz: f_cr,
            ..AdcConfig::nominal_110ms()
        };
        let mut bench = MeasurementSession::new(sc_config, GOLDEN_SEED)?;
        let sc_power = bench.adc().power_w();
        let m = bench.measure_tone(f_in);

        // The conventional alternative: current sized once for 140 MS/s
        // with a 1.3x corner margin, burned at every rate.
        let fixed_config = AdcConfig {
            f_cr_hz: f_cr,
            bias_kind: BiasKind::Fixed {
                design_rate_hz: 140e6,
                margin: 1.3,
            },
            ..AdcConfig::nominal_110ms()
        };
        let fixed_bench = MeasurementSession::new(fixed_config, GOLDEN_SEED)?;
        let fixed_power = fixed_bench.adc().power_w();

        table.push_row([
            name.to_string(),
            format!("{:.0}", f_cr / 1e6),
            format!("{:.1}", sc_power * 1e3),
            format!("{:.1}", fixed_power * 1e3),
            format!("{:.1}", m.analysis.sndr_db),
            format!("{:.2}", m.analysis.enob),
        ]);
    }

    println!("{}", table.render());
    println!("The SC-bias column is the paper's headline: the imaging product");
    println!("pays ~40 mW instead of ~144 mW for the identical IP block, with");
    println!("full 10+ ENOB performance at every rate in the band.");
    Ok(())
}
