//! Static-linearity scenario: the sine-wave histogram (code-density)
//! test behind the paper's DNL/INL rows in Table I.
//!
//! Run with: `cargo run --release --example linearity`

use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::testbench::MeasurementSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The real die.
    let mut bench = MeasurementSession::nominal()?;
    println!("running 2^20-sample sine histogram on the nominal die...");
    let lin = bench.measure_linearity(1 << 20)?;
    println!(
        "DNL: {:+.2} / {:+.2} LSB   (paper: -1.2/+1.2)",
        lin.dnl_min, lin.dnl_max
    );
    println!(
        "INL: {:+.2} / {:+.2} LSB   (paper: -1.5/+1.0)",
        lin.inl_min, lin.inl_max
    );
    println!(
        "missing codes: {}  (no missing codes at 12 bits)",
        lin.missing_codes.len()
    );

    // Where do the DNL extremes sit? Major MDAC decision boundaries.
    let mut worst: Vec<(usize, f64)> = lin.dnl_lsb.iter().copied().enumerate().collect();
    worst.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    println!("\nfive largest |DNL| codes:");
    for (idx, dnl) in worst.iter().take(5) {
        println!("  code {:4}: {:+.2} LSB", idx + 1, dnl);
    }

    // Sanity reference: the ideal converter measures flat.
    let mut ideal = MeasurementSession::golden(AdcConfig::ideal(110e6))?;
    let lin = ideal.measure_linearity(1 << 19)?;
    println!(
        "\nideal reference converter: DNL {:+.2}/{:+.2}, INL {:+.2}/{:+.2} LSB",
        lin.dnl_min, lin.dnl_max, lin.inl_min, lin.inl_max
    );
    Ok(())
}
