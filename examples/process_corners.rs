//! Process-corner scenario: the "pure digital process" robustness story.
//!
//! A digital flow gives the analog designer ±15 % capacitors and shifted
//! transistors; the paper's SC bias generator makes the converter immune
//! to the capacitance spread because the bias current *tracks* it
//! (`GBW = gm/2πC` with `gm ∝ I ∝ C`). This example measures the same
//! design at all three corners, with the SC generator and with a fixed
//! generator, and shows what the tracking buys.
//!
//! Run with: `cargo run --release --example process_corners`

use pipeline_adc::analog::process::{OperatingConditions, ProcessCorner};
use pipeline_adc::pipeline::{AdcConfig, BiasKind};
use pipeline_adc::testbench::{MeasurementSession, GOLDEN_SEED};

fn measure(bias_kind: BiasKind, corner: ProcessCorner) -> (f64, f64, f64) {
    let cfg = AdcConfig {
        bias_kind,
        conditions: OperatingConditions::at_corner(corner),
        ..AdcConfig::nominal_110ms()
    };
    let mut s = MeasurementSession::new(cfg, GOLDEN_SEED).expect("config builds");
    s.record_len = 4096;
    let power = s.adc().power_w();
    let m = s.measure_tone(10e6);
    (m.analysis.sndr_db, m.analysis.enob, power)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("corner   SC bias: SNDR / ENOB / power    fixed bias: SNDR / ENOB / power");
    println!("--------------------------------------------------------------------------");
    let fixed = BiasKind::Fixed {
        design_rate_hz: 140e6,
        margin: 1.3,
    };
    for corner in ProcessCorner::all() {
        let (s_sndr, s_enob, s_p) = measure(BiasKind::Switched, corner);
        let (f_sndr, f_enob, f_p) = measure(fixed, corner);
        println!(
            "  {}        {:5.1} dB / {:5.2} / {:5.1} mW       {:5.1} dB / {:5.2} / {:5.1} mW",
            corner.label(),
            s_sndr,
            s_enob,
            s_p * 1e3,
            f_sndr,
            f_enob,
            f_p * 1e3
        );
    }
    println!();
    println!("the SC column's power follows the capacitor corner (Eq. 1's cost)");
    println!("while performance stays flat; the fixed column burns its worst-case");
    println!("margin at every corner. Both survive — the margin is what differs.");
    Ok(())
}
