//! IP-vendor scenario: will the design yield in production?
//!
//! Fabricates a population of dies, looks at the spread of the Table I
//! metrics, and screens against a shippable specification.
//!
//! Run with: `cargo run --release --example yield_analysis`

use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::testbench::montecarlo::{run_monte_carlo, YieldSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fabricating and measuring 24 dies at 110 MS/s, fin = 10 MHz...\n");
    let mc = run_monte_carlo(&AdcConfig::nominal_110ms(), 24, 10e6, 4096)?;

    println!("          min     mean    max     sigma");
    println!(
        "SNR    {:7.1} {:7.1} {:7.1} {:7.2}  dB",
        mc.snr.min, mc.snr.mean, mc.snr.max, mc.snr.sigma
    );
    println!(
        "SNDR   {:7.1} {:7.1} {:7.1} {:7.2}  dB",
        mc.sndr.min, mc.sndr.mean, mc.sndr.max, mc.sndr.sigma
    );
    println!(
        "SFDR   {:7.1} {:7.1} {:7.1} {:7.2}  dB",
        mc.sfdr.min, mc.sfdr.mean, mc.sfdr.max, mc.sfdr.sigma
    );
    println!(
        "ENOB   {:7.2} {:7.2} {:7.2} {:7.2}  bit",
        mc.enob.min, mc.enob.mean, mc.enob.max, mc.enob.sigma
    );
    println!(
        "power  {:7.1} {:7.1} {:7.1} {:7.2}  mW",
        mc.power.min * 1e3,
        mc.power.mean * 1e3,
        mc.power.max * 1e3,
        mc.power.sigma * 1e3
    );

    let spec = YieldSpec::paper_with_margin();
    println!(
        "\nyield vs shippable spec (SNDR>=62, SFDR>=65, P<=115mW): {:.0}%",
        mc.yield_against(&spec) * 100.0
    );
    let failures: Vec<_> = mc.failures(&spec).collect();
    if failures.is_empty() {
        println!("no failing dies in this population.");
    } else {
        for die in failures {
            println!(
                "failing die seed {}: SNDR {:.1} dB, SFDR {:.1} dB, {:.1} mW",
                die.seed,
                die.sndr_db,
                die.sfdr_db,
                die.power_w * 1e3
            );
        }
    }
    Ok(())
}
