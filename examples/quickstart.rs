//! Quickstart: fabricate the paper's 110 MS/s 12-bit pipeline ADC,
//! convert a near-full-scale 10 MHz sine, and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use pipeline_adc::pipeline::{AdcConfig, BuildAdcError, PipelineAdc};
use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use pipeline_adc::spectral::window::coherent_frequency;
use pipeline_adc::testbench::SineSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fabricate a die. The (config, seed) pair fully determines the
    //    converter: capacitor mismatch, comparator offsets, everything.
    let config = AdcConfig::nominal_110ms();
    let mut adc = PipelineAdc::build(config, 7).map_err(|e: BuildAdcError| Box::new(e))?;
    println!(
        "fabricated: {} bits, {} stages, {:.0} MS/s, {:.1} mW",
        adc.config().resolution_bits(),
        adc.config().stage_count,
        adc.config().f_cr_hz / 1e6,
        adc.power_w() * 1e3
    );

    // 2. Pick a coherent stimulus near 10 MHz for an 8192-point record,
    //    then convert it.
    let n = 8192;
    let (f_in, bin) = coherent_frequency(adc.config().f_cr_hz, n, 10e6);
    let tone = SineSource::clean(0.999, f_in);
    let codes = adc.convert_waveform(&tone, n);
    println!(
        "captured {} codes at fin = {:.4} MHz (bin {bin})",
        codes.len(),
        f_in / 1e6
    );

    // 3. Post-process the record into the paper's Table I metrics.
    let record: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
    let analysis = analyze_tone(
        &record,
        &ToneAnalysisConfig::coherent().with_full_scale(1.0),
    )?;
    println!();
    println!("SNR  = {:.1} dB   (paper: 67.1)", analysis.snr_db);
    println!("SNDR = {:.1} dB   (paper: 64.2)", analysis.sndr_db);
    println!("SFDR = {:.1} dB   (paper: 69.4)", analysis.sfdr_db);
    println!("ENOB = {:.2} bit  (paper: 10.4)", analysis.enob);
    println!("signal level: {:.2} dBFS", analysis.signal_dbfs);
    println!();
    println!(
        "worst spur at bin {}; first harmonics:",
        analysis.worst_spur_bin
    );
    for h in analysis.harmonics.iter().take(4) {
        println!("  HD{}: {:.1} dBc (bin {})", h.order, h.dbc, h.bin);
    }
    Ok(())
}
