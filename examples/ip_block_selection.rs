//! IP-selection scenario: use the paper's Eq. 2 figure of merit to rank
//! candidate 12-bit converters for an SoC, reproducing the Fig. 8
//! argument.
//!
//! Run with: `cargo run --release --example ip_block_selection`

use pipeline_adc::testbench::datasheet::Datasheet;
use pipeline_adc::testbench::survey::fig8_survey;
use pipeline_adc::testbench::MeasurementSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measure OUR die rather than trusting the published row.
    let mut bench = MeasurementSession::nominal()?;
    let sheet = Datasheet::measure(&mut bench, 10e6, 1 << 19)?;
    let measured_fm = sheet.figure_of_merit();
    println!(
        "measured die: ENOB {:.2}, {:.0} MS/s, {:.1} mW, {:.2} mm^2  =>  FM = {measured_fm:.0}",
        sheet.enob,
        sheet.f_cr_hz / 1e6,
        sheet.power_w * 1e3,
        sheet.area_mm2
    );

    // Rank against the literature survey.
    let mut survey = fig8_survey();
    survey.sort_by(|a, b| b.figure_of_merit().total_cmp(&a.figure_of_merit()));
    println!("\nsurvey ranking (Eq. 2, FM = 2^ENOB * f_CR / (A * P)):");
    for (i, e) in survey.iter().enumerate() {
        let marker = if e.name == "This design" {
            "  <== the paper"
        } else {
            ""
        };
        println!(
            "  {:2}. {:24} {:9}  FM {:6.0}  ({:.2} mm^2, {:.0} mW){marker}",
            i + 1,
            e.name,
            e.supply_group(),
            e.figure_of_merit(),
            e.area_mm2,
            e.power_mw,
        );
    }

    let published = survey
        .iter()
        .find(|e| e.name == "This design")
        .expect("survey contains the paper");
    println!(
        "\nour measured FM ({measured_fm:.0}) vs the published row ({:.0}): {}",
        published.figure_of_merit(),
        if (measured_fm / published.figure_of_merit() - 1.0).abs() < 0.25 {
            "consistent"
        } else {
            "check calibration"
        }
    );
    Ok(())
}
