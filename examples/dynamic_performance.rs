//! Characterisation-lab scenario: reproduce the paper's two dynamic
//! sweeps (Figs. 5 and 6) in miniature.
//!
//! Run with: `cargo run --release --example dynamic_performance`

use pipeline_adc::testbench::report::{db_cell, mhz_cell, TextTable};
use pipeline_adc::testbench::SweepRunner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = SweepRunner::nominal();

    println!("== SNR/SNDR/SFDR vs conversion rate (fin = 10 MHz) — Fig. 5 ==");
    let rates: Vec<f64> = [20.0, 60.0, 110.0, 140.0, 170.0, 200.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let mut t = TextTable::new(["rate (MS/s)", "SNR", "SNDR", "SFDR"]);
    for p in runner.rate_sweep(&rates, 10e6)? {
        t.push_row([
            mhz_cell(p.x_hz),
            db_cell(p.snr_db),
            db_cell(p.sndr_db),
            db_cell(p.sfdr_db),
        ]);
    }
    println!("{}", t.render());
    println!("note the flat band through 140 MS/s (the SC bias generator at");
    println!("work) and the collapse beyond it (fixed DSB/logic delays).\n");

    println!("== SNR/SNDR/SFDR vs input frequency (110 MS/s) — Fig. 6 ==");
    let fins: Vec<f64> = [5.0, 20.0, 40.0, 80.0, 150.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let mut t = TextTable::new(["fin (MHz)", "SNR", "SNDR", "SFDR"]);
    for p in runner.frequency_sweep(&fins)? {
        t.push_row([
            mhz_cell(p.x_hz),
            db_cell(p.snr_db),
            db_cell(p.sndr_db),
            db_cell(p.sfdr_db),
        ]);
    }
    println!("{}", t.render());
    println!("SFDR falls with fin (unbootstrapped input switches); SNR holds");
    println!("to ~100 MHz and then the 0.45 ps clock jitter takes over.\n");

    println!("== SNDR vs input level (fin = 10 MHz, 110 MS/s) ==");
    let levels = [-60.0, -40.0, -20.0, -6.0, -0.5];
    let mut t = TextTable::new(["level (dBFS)", "SNDR", "ENOB"]);
    for (dbfs, p) in runner.amplitude_sweep(10e6, &levels)? {
        t.push_row([
            format!("{dbfs:.1}"),
            db_cell(p.sndr_db),
            format!("{:.2}", p.enob),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}
