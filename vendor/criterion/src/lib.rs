//! Offline stand-in for `criterion` — the API subset this workspace's
//! benches use (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros and `black_box`).
//!
//! Measurement is deliberately simple: warm up briefly, then time enough
//! iterations to cover a minimum window and report the mean per
//! iteration plus derived throughput. When the binary is invoked with
//! `--test` (as `cargo test --benches` does), every benchmark runs a
//! single iteration so the suite stays fast and merely checks the code
//! paths.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (parameter-labelled).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labelled by the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Something usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.0
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    /// Mean wall time per iteration from the measured window.
    mean: Duration,
}

impl Bencher {
    /// Times `body`, storing the mean per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            self.mean = Duration::ZERO;
            return;
        }
        // Warm-up: at least one call, at most ~100 ms.
        let warmup_start = Instant::now();
        let mut single = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            black_box(body());
            single = t.elapsed();
            if warmup_start.elapsed() > Duration::from_millis(100) {
                break;
            }
        }
        // Measure: enough iterations for a ~300 ms window (≥ 5 iters).
        let window = Duration::from_millis(300);
        let iters = if single.is_zero() {
            1000
        } else {
            (window.as_nanos() / single.as_nanos().max(1)).clamp(5, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn in_test_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("CRITERION_TEST_MODE").is_some()
}

fn report(name: &str, bench: &Bencher, throughput: Option<Throughput>) {
    if bench.test_mode {
        println!("test-mode {name}: ok");
        return;
    }
    let per_iter = bench.mean;
    let rate = |count: u64| {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            count as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "{name:<40} {per_iter:>12.3?}/iter  {:>14.3e} elem/s",
            rate(n)
        ),
        Some(Throughput::Bytes(n)) => {
            println!("{name:<40} {per_iter:>12.3?}/iter  {:>14.3e} B/s", rate(n))
        }
        None => println!("{name:<40} {per_iter:>12.3?}/iter"),
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut body: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            mean: Duration::ZERO,
        };
        body(&mut bencher);
        let label = format!("{}/{}", self.name, id.into_name());
        report(&label, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<N: IntoBenchmarkName, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group (layout compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            test_mode: in_test_mode(),
            mean: Duration::ZERO,
        };
        body(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: IntoBenchmarkName>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into_name(),
            throughput: None,
            test_mode: in_test_mode(),
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
