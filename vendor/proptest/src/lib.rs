//! Offline stand-in for `proptest` — the subset this workspace's
//! property tests use.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { ... } }` form with range strategies over the numeric
//! primitives, `prop::collection::vec`, and `prop_assert!`/
//! `prop_assert_eq!`. Case generation is deterministic: the stream is
//! seeded from the test's name, so failures reproduce exactly across
//! runs and machines. Shrinking is not implemented — a failing case
//! panics with its case index and message instead.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (from `prop_assert!`-style macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a stable label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, so each property gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one case.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A fixed-length `Vec` strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::...` namespace as re-exported by the prelude.
pub mod prop {
    pub use super::collection;
}

/// The macro-facing prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
}

/// Fails the current property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
