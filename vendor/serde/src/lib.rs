//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as a *capability marker*: config and
//! result types `#[derive(serde::Serialize, serde::Deserialize)]` and
//! tests assert the bounds hold, but nothing is ever serialized through
//! serde's data model (reports are rendered via `adc-testbench::report`,
//! and the campaign cache in `adc-runtime` has its own line codec).
//! Since crates.io is unreachable in this environment, this crate
//! provides the marker traits and a derive that implements them, keeping
//! every `#[derive]` site and trait bound source-compatible.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type can be serialized.
///
/// The real trait's methods are intentionally absent — no code path in
/// this workspace drives serde serialization.
pub trait Serialize {}

/// Marker: the type can be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// Deserialization helpers (`serde::de` module-layout compatibility).
pub mod de {
    /// Marker: the type can be deserialized without borrowing.
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

// Implementations for the std types that appear inside derived types,
// mirroring the real crate's blanket coverage closely enough for the
// workspace's bounds.
macro_rules! mark_primitive {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {}
        impl<'de> Deserialize<'de> for $ty {}
    )*};
}

mark_primitive!(
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String,
    &'static str,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

macro_rules! mark_tuple {
    ($($name:ident)+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

mark_tuple!(A);
mark_tuple!(A B);
mark_tuple!(A B C);
mark_tuple!(A B C D);
mark_tuple!(A B C D E);
mark_tuple!(A B C D E F);
