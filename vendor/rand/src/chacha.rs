//! ChaCha12 keystream generator, laid out exactly as
//! `rand_chacha::ChaCha12Rng` (rand 0.8) emits it:
//!
//! * state = constants ‖ 8×u32 key ‖ 64-bit block counter ‖ 64-bit zero
//!   stream id, words little-endian;
//! * blocks are produced four at a time into a 64-word buffer (the
//!   SIMD-friendly layout `c2-chacha` uses), counter advancing by one per
//!   16-word block;
//! * `next_u64` pairs buffer words low-then-high with
//!   `rand_core::block::BlockRng`'s exact end-of-buffer straddle rule.

use crate::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BUF_WORDS: usize = 64; // four 16-word blocks per refill
const DOUBLE_ROUNDS: usize = 6; // ChaCha12

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The `rand 0.8` standard generator: ChaCha with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    /// Block counter of the *next* refill's first block.
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means "exhausted".
    index: usize,
}

impl ChaCha12Rng {
    fn block(&self, counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // state[14], state[15]: stream id, zero for StdRng.
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        state
    }

    /// Refills the four-block buffer and positions the cursor at
    /// `start_index` (mirrors `BlockRng::generate_and_set`).
    fn refill(&mut self, start_index: usize) {
        for blk in 0..BUF_WORDS / 16 {
            let words = self.block(self.counter.wrapping_add(blk as u64));
            self.buf[blk * 16..(blk + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
        self.index = start_index;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // `rand_core::block::BlockRng::next_u64`, including the straddle
        // case where the low half is the buffer's last word and the high
        // half is the next buffer's first.
        let read =
            |buf: &[u32; BUF_WORDS], i: usize| (u64::from(buf[i + 1]) << 32) | u64::from(buf[i]);
        if self.index < BUF_WORDS - 1 {
            let value = read(&self.buf, self.index);
            self.index += 2;
            value
        } else if self.index >= BUF_WORDS {
            self.refill(2);
            read(&self.buf, 0)
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill(1);
            let hi = u64::from(self.buf[0]);
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// RFC 8439-style layout check, adapted to 12 rounds: the generator
    /// must be a pure function of the seed.
    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let draws_a: Vec<u64> = (0..200).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..200).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..200).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    /// The buffer boundary (word 64) must not disturb the word sequence:
    /// interleaving u32 and u64 reads equals one flat u32 stream.
    #[test]
    fn word_pairing_is_low_then_high() {
        let mut flat = ChaCha12Rng::seed_from_u64(7);
        let words: Vec<u32> = (0..130).map(|_| flat.next_u32()).collect();
        let mut paired = ChaCha12Rng::seed_from_u64(7);
        for i in (0..128).step_by(2) {
            let v = paired.next_u64();
            assert_eq!(v as u32, words[i], "low word at {i}");
            assert_eq!((v >> 32) as u32, words[i + 1], "high word at {i}");
        }
    }

    /// The straddle case: 63 u32 draws leave one word; the next u64 must
    /// span the refill with low = old last word.
    #[test]
    fn straddles_buffer_boundary_like_block_rng() {
        let mut flat = ChaCha12Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..66).map(|_| flat.next_u32()).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..63 {
            rng.next_u32();
        }
        let v = rng.next_u64();
        assert_eq!(v as u32, words[63]);
        assert_eq!((v >> 32) as u32, words[64]);
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
