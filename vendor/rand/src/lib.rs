//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, std-only reimplementation of the `rand 0.8` API
//! surface it consumes: `rngs::StdRng`, the `RngCore`/`SeedableRng`/`Rng`
//! traits, `gen::<f64>()`, and `gen_range` over `f64` ranges.
//!
//! **Stream compatibility.** `StdRng` here is a ChaCha12 generator with
//! the same construction as `rand 0.8`'s (`rand_chacha::ChaCha12Rng`):
//! a PCG32-expanded `seed_from_u64`, a four-block (256-byte) output
//! buffer, and `rand_core::block::BlockRng`'s `next_u64` word pairing.
//! The float paths reproduce `rand 0.8`'s `Standard` (53-bit multiply)
//! and `UniformFloat::sample_single` ([1, 2) mantissa trick). Keeping the
//! streams identical preserves the repository's golden-die calibration
//! (`adc-testbench::GOLDEN_SEED`); `tests/` asserts known draws so any
//! drift is caught loudly.

mod chacha;

pub use chacha::ChaCha12Rng;

/// Random number generators (`rand` module-layout compatibility).
pub mod rngs {
    /// The standard RNG: ChaCha with 12 rounds, as in `rand 0.8`.
    pub type StdRng = super::ChaCha12Rng;
}

/// The core RNG trait: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, with `rand_core 0.6`'s PCG32-based
/// `seed_from_u64` expansion.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// the same PCG32 key-derivation `rand_core 0.6` uses.
    fn seed_from_u64(mut state: u64) -> Self {
        // Constants from the PCG32 reference implementation, as used by
        // `rand_core::SeedableRng::seed_from_u64`.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that maps raw RNG output to values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: `rand 0.8`'s `Standard`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 random bits: `(u >> 11) · 2⁻⁵³`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// A range that can be sampled from directly (`gen_range` support).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    /// `rand 0.8`'s `UniformFloat::<f64>::sample_single`: draw a mantissa
    /// in `[1, 2)`, shift to `[0, 1)`, scale, and reject the rare
    /// rounding overshoot onto `hi`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range: {self:?}");
        let scale = self.end - self.start;
        loop {
            // 52 random mantissa bits with the [1, 2) exponent.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty gen_range: {self:?}");
        let span = self.end - self.start;
        // Unbiased rejection sampling over the widest multiple of `span`.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_single(rng) as usize
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude-style re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Distribution, Rng, RngCore, SeedableRng, Standard};
}
