//! Derive macros for the offline `serde` stand-in.
//!
//! The stand-in's `Serialize`/`Deserialize` are marker traits, so the
//! derive only needs the item's name: it emits
//! `impl serde::Serialize for Name {}` (and the `'de` variant). Written
//! against `proc_macro` directly — `syn`/`quote` are not available
//! offline. Non-generic structs and enums are supported, which covers
//! every derive site in this workspace; a generic item produces a
//! compile error naming this limitation.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item, rejecting
/// generics (unneeded in this workspace).
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        match tree {
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => return Err(format!("expected item name, found {other:?}")),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "offline serde derive does not support generics (on `{name}`)"
                            ));
                        }
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)` paths &c. — keep scanning.
            }
            // Attributes (`#[...]`) arrive as Punct + Group; skip both.
            TokenTree::Punct(_) | TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    Err("no struct/enum found in derive input".to_string())
}

fn marker_impl(input: TokenStream, template: &str) -> TokenStream {
    match item_name(input) {
        Ok(name) => template
            .replace("__NAME__", &name)
            .parse()
            .expect("valid impl tokens"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("valid error tokens"),
    }
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl serde::Serialize for __NAME__ {}")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> serde::Deserialize<'de> for __NAME__ {}")
}
