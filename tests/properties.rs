//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use pipeline_adc::pipeline::correction::assemble_code;
use pipeline_adc::pipeline::subconverter::StageDecision;
use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
use pipeline_adc::spectral::complex::Complex64;
use pipeline_adc::spectral::fft::{fft_in_place, ifft_in_place};
use pipeline_adc::spectral::window::{alias_bin, coherent_frequency_clear};
use pipeline_adc::testbench::walden_adjusted_fm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ideal converter is monotone: v1 < v2 ⇒ code(v1) ≤ code(v2).
    #[test]
    fn ideal_converter_is_monotone(a in -0.999f64..0.999, b in -0.999f64..0.999) {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = adc.convert_held(lo);
        let c_hi = adc.convert_held(hi);
        prop_assert!(c_lo <= c_hi, "codes {c_lo} > {c_hi} for {lo} <= {hi}");
    }

    /// The ideal converter's reconstruction error never exceeds 1/2 LSB.
    #[test]
    fn ideal_converter_quantizes_within_half_lsb(v in -0.999f64..0.999) {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).unwrap();
        let code = adc.convert_held(v);
        let err = (adc.reconstruct_v(code) - v).abs();
        prop_assert!(err <= adc.config().lsb_v() / 2.0 + 1e-12, "err {err}");
    }

    /// FFT followed by IFFT is the identity (to numerical precision) for
    /// random complex vectors of random power-of-two lengths.
    #[test]
    fn fft_round_trips(
        log_n in 4usize..11,
        seed in 0u64..1000,
    ) {
        let n = 1 << log_n;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let orig: Vec<Complex64> = (0..n).map(|_| Complex64::new(rand(), rand())).collect();
        let mut work = orig.clone();
        fft_in_place(&mut work).unwrap();
        ifft_in_place(&mut work).unwrap();
        for (a, b) in orig.iter().zip(&work) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// Parseval's theorem holds for random real signals.
    #[test]
    fn parseval_holds_for_random_signals(seed in 0u64..1000) {
        let n = 1024;
        let mut state = seed.wrapping_add(7);
        let signal: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }).collect();
        let time: f64 = signal.iter().map(|x| x * x).sum();
        let spec = pipeline_adc::spectral::fft::fft_real(&signal).unwrap();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() / time.max(1e-30) < 1e-9);
    }

    /// Correction arithmetic: for any decision vector, the code equals
    /// the weighted sum, stays in range, and is monotone in each digit.
    #[test]
    fn correction_code_is_weighted_sum(
        levels in prop::collection::vec(-1i8..=1, 10),
        flash in 0u8..=3,
    ) {
        let decisions: Vec<StageDecision> =
            levels.iter().map(|&dac_level| StageDecision { dac_level }).collect();
        let code = assemble_code(&decisions, flash);
        let expected: i64 = levels
            .iter()
            .enumerate()
            .map(|(i, &d)| i64::from(d + 1) << (10 - i))
            .sum::<i64>()
            + i64::from(flash);
        prop_assert_eq!(i64::from(code), expected.clamp(0, 4095));
        // Bumping any single digit by one level raises the code.
        for i in 0..10 {
            if levels[i] < 1 {
                let mut bumped = decisions.clone();
                bumped[i] = StageDecision { dac_level: levels[i] + 1 };
                prop_assert!(assemble_code(&bumped, flash) >= code);
            }
        }
    }

    /// Eq. 2 figure of merit is monotone in the right directions.
    #[test]
    fn fom_monotonicity(
        enob in 6.0f64..14.0,
        rate in 1.0f64..500.0,
        area in 0.1f64..30.0,
        power in 1.0f64..1000.0,
    ) {
        let base = walden_adjusted_fm(enob, rate, area, power);
        prop_assert!(walden_adjusted_fm(enob + 0.1, rate, area, power) > base);
        prop_assert!(walden_adjusted_fm(enob, rate * 1.1, area, power) > base);
        prop_assert!(walden_adjusted_fm(enob, rate, area * 1.1, power) < base);
        prop_assert!(walden_adjusted_fm(enob, rate, area, power * 1.1) < base);
    }

    /// The alias-aware coherent frequency chooser always returns an odd
    /// cycle count whose alias clears the exclusion regions.
    #[test]
    fn coherent_frequency_clear_invariants(
        fs_mhz in 1.0f64..300.0,
        target_mhz in 0.5f64..300.0,
        log_n in 8usize..14,
    ) {
        let n = 1 << log_n;
        let (f, m) = coherent_frequency_clear(fs_mhz * 1e6, n, target_mhz * 1e6, 8);
        prop_assert_eq!(m % 2, 1);
        let b = alias_bin(m, n);
        prop_assert!(b >= 8 && b <= n / 2 - 8, "bin {}", b);
        prop_assert!((f - m as f64 * fs_mhz * 1e6 / n as f64).abs() < 1.0);
    }

    /// Power model linearity: scaled power is exactly proportional to
    /// rate for any rate pair.
    #[test]
    fn power_scales_linearly(f1 in 1.0f64..200.0, f2 in 1.0f64..200.0) {
        let at = |f_mhz: f64| {
            let cfg = AdcConfig { f_cr_hz: f_mhz * 1e6, ..AdcConfig::nominal_110ms() };
            PipelineAdc::build(cfg, 7).map(|adc| adc.power_reading().scaled_w)
        };
        if let (Ok(p1), Ok(p2)) = (at(f1), at(f2)) {
            let r = (p1 / f1) / (p2 / f2);
            prop_assert!((r - 1.0).abs() < 1e-9, "ratio {}", r);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lane-parallel SoA kernel neither reorders nor
    /// cross-contaminates lanes at *any* batch width: for an arbitrary
    /// lane count and seed base, every lane of a batch fed
    /// lane-distinct waveforms reproduces, bit for bit, the scalar
    /// planned path on that lane's own waveform and seed. A lane
    /// permutation, an off-by-one in a stage-major stripe, or one
    /// lane's noise draw leaking into a neighbor all fail here.
    #[test]
    fn lane_batches_never_reorder_or_cross_contaminate(
        lanes in 1usize..12,
        seed_base in 0u64..1000,
    ) {
        use pipeline_adc::pipeline::lanes::LaneBatch;

        let config = AdcConfig::nominal_110ms();
        let seeds: Vec<u64> = (0..lanes as u64).map(|l| seed_base * 31 + l).collect();
        // Lane-distinct stimuli so a crossed lane cannot hide behind a
        // shared waveform: each lane sees its own amplitude and phase.
        let tones: Vec<_> = (0..lanes)
            .map(|l| {
                let amp = 0.5 + 0.04 * l as f64;
                let phase = 0.3 * l as f64;
                move |t: f64| amp * (2.0 * std::f64::consts::PI * 9.7e6 * t + phase).sin()
            })
            .collect();
        let waveforms: Vec<&dyn pipeline_adc::pipeline::Waveform> =
            tones.iter().map(|t| t as _).collect();

        let mut batch = LaneBatch::build(&config, &seeds).unwrap();
        let records = batch.convert_waveforms(&waveforms, 96);
        for (lane, seed) in seeds.iter().enumerate() {
            let mut scalar = PipelineAdc::build(config.clone(), *seed).unwrap();
            let alone = scalar.convert_waveform(&tones[lane], 96);
            prop_assert!(
                records[lane] == alone,
                "lane {}/{} diverged at seed {}",
                lane,
                lanes,
                seed
            );
        }
    }

    /// Any fabricated nominal-config die converts a mid-scale DC input to
    /// a mid-scale code (no die is wildly broken).
    #[test]
    fn every_die_centers_midscale(seed in 0u64..500) {
        let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), seed).unwrap();
        let mean: f64 = (0..64)
            .map(|_| f64::from(adc.convert_held(0.0)))
            .sum::<f64>() / 64.0;
        prop_assert!((mean - 2047.5).abs() < 24.0, "seed {}: mean {}", seed, mean);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RTL ripple correction adder is bit-equivalent to the
    /// behavioral correction for arbitrary decision vectors.
    #[test]
    fn rtl_adder_equals_behavioral_correction(
        levels in prop::collection::vec(-1i8..=1, 10),
        flash in 0u8..=3,
    ) {
        let decisions: Vec<StageDecision> = levels
            .iter()
            .map(|&dac_level| StageDecision { dac_level })
            .collect();
        let words: Vec<u8> = levels.iter().map(|&d| (d + 1) as u8).collect();
        prop_assert_eq!(
            u32::from(pipeline_adc::digital::correction_sum(&words, flash)),
            assemble_code(&decisions, flash)
        );
    }

    /// Goertzel matches the FFT on random bins of random signals.
    #[test]
    fn goertzel_matches_fft_bin(seed in 0u64..500, bin in 0usize..512) {
        let n = 1024;
        let mut state = seed.wrapping_add(3);
        let sig: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }).collect();
        let g = pipeline_adc::spectral::goertzel::goertzel_bin(&sig, bin);
        let f = pipeline_adc::spectral::fft::fft_real(&sig).unwrap()[bin];
        prop_assert!((g.re - f.re).abs() < 1e-7 && (g.im - f.im).abs() < 1e-7);
    }

    /// Sine and ramp histogram tests agree on DNL for random single-code
    /// perturbations of a small converter.
    #[test]
    fn sine_and_ramp_histograms_agree(code in 5usize..27, shift in -0.45f64..0.45) {
        let nc = 32usize;
        let lsb = 2.0 / nc as f64;
        let mut transitions: Vec<f64> =
            (1..nc).map(|c| -1.0 + 2.0 * c as f64 / nc as f64).collect();
        transitions[code] += shift * lsb;
        let quantize = |v: f64| {
            transitions.iter().filter(|&&t| v > t).count() as u32
        };
        let n = 150_000;
        let sine: Vec<u32> = (0..n)
            .map(|i| quantize(1.05 * (0.317_233_091 * i as f64).sin()))
            .collect();
        let ramp: Vec<u32> = (0..n)
            .map(|i| quantize(-1.05 + 2.1 * i as f64 / (n - 1) as f64))
            .collect();
        let s = pipeline_adc::spectral::linearity::sine_histogram(&sine, nc as u32).unwrap();
        let r = pipeline_adc::spectral::linearity::ramp_histogram(&ramp, nc as u32).unwrap();
        // Compare the perturbed code's DNL between the two methods.
        let idx = code - 1; // dnl index of code `code`
        prop_assert!(
            (s.dnl_lsb[idx] - r.dnl_lsb[idx]).abs() < 0.12,
            "sine {} vs ramp {}",
            s.dnl_lsb[idx],
            r.dnl_lsb[idx]
        );
    }

    /// The three-parameter sine fit recovers amplitude and offset for
    /// random clean sines.
    #[test]
    fn sine_fit_recovers_parameters(
        amp in 0.05f64..1.5,
        dc in -0.3f64..0.3,
        freq in 0.01f64..0.45,
    ) {
        let n = 2048;
        let sig: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 + 0.7).sin() + dc)
            .collect();
        let fit = pipeline_adc::spectral::sinefit::fit_known_frequency(&sig, freq).unwrap();
        prop_assert!((fit.amplitude - amp).abs() < 1e-6 * amp.max(1.0));
        prop_assert!((fit.offset - dc).abs() < 1e-6);
    }

    /// Digital calibration weights on an ideal converter are strictly
    /// decreasing stage to stage (radix-2 ordering survives the fit).
    #[test]
    fn calibration_weights_are_radix_ordered(seed in 0u64..20) {
        use pipeline_adc::pipeline::calibration::{calibrate_foreground, training_levels};
        use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), seed).unwrap();
        let w = calibrate_foreground(&mut adc, &training_levels(256, 1.0), 1).unwrap();
        // The front weights are strongly conditioned by 256 levels; the
        // last stages' sub-LSB weights are fit-noise-limited, so check
        // the first seven ratios only.
        for pair in w.stage_weights_v.windows(2).take(7) {
            prop_assert!(pair[0] > pair[1], "weights {:?}", w.stage_weights_v);
        }
    }
}
