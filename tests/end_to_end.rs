//! End-to-end regression: the full reproduction pipeline (fabricate →
//! stimulate → capture → analyze) against the paper's published numbers.

use pipeline_adc::pipeline::{AdcConfig, ClockScheme};
use pipeline_adc::testbench::{MeasurementSession, SweepRunner, GOLDEN_SEED};

#[test]
fn table1_dynamic_metrics_regress() {
    let mut bench = MeasurementSession::nominal().expect("nominal builds");
    let m = bench.measure_tone(10e6);
    // Paper Table I @ fin = 10 MHz: SNR 67.1, SNDR 64.2, SFDR 69.4,
    // ENOB 10.4 — the golden die must stay inside these bands.
    assert!(
        (m.analysis.snr_db - 67.1).abs() < 1.5,
        "SNR {}",
        m.analysis.snr_db
    );
    assert!(
        (m.analysis.sndr_db - 64.2).abs() < 1.5,
        "SNDR {}",
        m.analysis.sndr_db
    );
    assert!(
        (m.analysis.sfdr_db - 69.4).abs() < 2.0,
        "SFDR {}",
        m.analysis.sfdr_db
    );
    assert!(
        (m.analysis.enob - 10.4).abs() < 0.25,
        "ENOB {}",
        m.analysis.enob
    );
}

#[test]
fn table1_power_regresses() {
    let bench = MeasurementSession::nominal().expect("nominal builds");
    let p_mw = bench.adc().power_w() * 1e3;
    assert!((p_mw - 97.0).abs() < 5.0, "power {p_mw} mW");
}

#[test]
fn fig4_power_is_linear_with_paper_slope() {
    let runner = SweepRunner::nominal();
    let pts = runner.power_sweep(&[110e6, 130e6]).expect("sweep runs");
    let p110 = pts[0].total_w * 1e3;
    let p130 = pts[1].total_w * 1e3;
    assert!((p110 - 97.0).abs() < 5.0, "97 mW anchor: {p110}");
    assert!((p130 - 110.0).abs() < 5.0, "110 mW anchor: {p130}");
    let slope = (p130 - p110) / 20.0;
    assert!((slope - 0.65).abs() < 0.05, "slope {slope} mW/MSps");
}

#[test]
fn fig5_flat_band_and_collapse() {
    let runner = SweepRunner {
        record_len: 4096,
        ..SweepRunner::nominal()
    };
    let pts = runner
        .rate_sweep(&[20e6, 60e6, 110e6, 140e6, 200e6], 10e6)
        .expect("sweep runs");
    // Paper: SNDR > 64 dB 20..120 MS/s, > 62 dB to 140 MS/s.
    assert!(pts[0].sndr_db > 63.0, "20 MS/s: {}", pts[0].sndr_db);
    assert!(pts[1].sndr_db > 63.0, "60 MS/s: {}", pts[1].sndr_db);
    assert!(pts[2].sndr_db > 63.0, "110 MS/s: {}", pts[2].sndr_db);
    assert!(pts[3].sndr_db > 61.0, "140 MS/s: {}", pts[3].sndr_db);
    // Collapse well beyond the specified band.
    assert!(pts[4].sndr_db < 55.0, "200 MS/s: {}", pts[4].sndr_db);
}

#[test]
fn fig6_jitter_and_switch_rolloff() {
    let runner = SweepRunner {
        record_len: 4096,
        ..SweepRunner::nominal()
    };
    let pts = runner
        .frequency_sweep(&[10e6, 40e6, 100e6, 150e6])
        .expect("sweep runs");
    // Paper: SNR > 66 dB to 100 MHz; SNDR > 60 dB to 40 MHz.
    assert!(pts[2].snr_db > 65.0, "SNR@100MHz {}", pts[2].snr_db);
    assert!(pts[1].sndr_db > 60.0, "SNDR@40MHz {}", pts[1].sndr_db);
    // SFDR falls monotonically from 10 MHz to 150 MHz.
    assert!(pts[3].sfdr_db < pts[1].sfdr_db - 10.0);
    assert!(pts[3].sfdr_db < pts[0].sfdr_db - 15.0);
    // SNR at 150 MHz is jitter-degraded but still near 63-65 dB.
    assert!(pts[3].snr_db > 60.0 && pts[3].snr_db < pts[0].snr_db);
}

#[test]
fn linearity_regresses_to_table1_band() {
    let mut bench = MeasurementSession::nominal().expect("nominal builds");
    let lin = bench.measure_linearity(1 << 19).expect("histogram runs");
    // Paper: DNL ±1.2 LSB, INL −1.5/+1.0 LSB. Bands: same order.
    assert!(
        lin.dnl_max < 1.6 && lin.dnl_max > 0.05,
        "DNL max {}",
        lin.dnl_max
    );
    assert!(
        lin.dnl_min > -1.6 && lin.dnl_min < -0.05,
        "DNL min {}",
        lin.dnl_min
    );
    assert!(
        lin.inl_max < 2.5 && lin.inl_max > 0.2,
        "INL max {}",
        lin.inl_max
    );
    assert!(
        lin.inl_min > -2.5 && lin.inl_min < -0.2,
        "INL min {}",
        lin.inl_min
    );
    assert!(
        lin.no_missing_codes(),
        "missing codes {:?}",
        lin.missing_codes
    );
}

#[test]
fn whole_bench_is_deterministic() {
    let run = || {
        let mut bench = MeasurementSession::nominal().expect("nominal builds");
        bench.record_len = 2048;
        let m = bench.measure_tone(10e6);
        (m.analysis.snr_db.to_bits(), m.analysis.sfdr_db.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn dies_differ_but_stay_in_family() {
    // Monte-Carlo across 6 dies: every die must still be a ~10.3+ ENOB,
    // 90-110 mW converter — process spread moves the numbers, not the
    // story.
    for seed in [1u64, 2, 3, 11, 23, GOLDEN_SEED] {
        let mut bench = MeasurementSession::new(AdcConfig::nominal_110ms(), seed).expect("builds");
        bench.record_len = 4096;
        let m = bench.measure_tone(10e6);
        assert!(
            m.analysis.enob > 10.0,
            "seed {seed}: ENOB {}",
            m.analysis.enob
        );
        let p = bench.adc().power_w() * 1e3;
        assert!((75.0..125.0).contains(&p), "seed {seed}: power {p}");
    }
}

#[test]
fn conventional_clocking_at_same_bias_is_no_better() {
    // Removing non-overlap can only help settling: at equal bias the
    // local-clock design's SNDR is >= the conventional one's (within
    // measurement noise).
    let measure = |clocking: ClockScheme| {
        let cfg = AdcConfig {
            clocking,
            ..AdcConfig::nominal_110ms()
        };
        let mut bench = MeasurementSession::new(cfg, GOLDEN_SEED).expect("builds");
        bench.record_len = 4096;
        bench.measure_tone(10e6).analysis.sndr_db
    };
    let local = measure(ClockScheme::LocalGenerated);
    let conventional = measure(ClockScheme::conventional());
    assert!(
        local >= conventional - 0.3,
        "local {local} vs conventional {conventional}"
    );
}

#[test]
fn sibling_design_family_works_end_to_end() {
    // Ref [1]'s representative configuration (10 b, 220 MS/s, 1.2 V):
    // same library, different design point — must deliver ~9.5+ ENOB at
    // near-full-scale, at lower power than the 12-bit part.
    use pipeline_adc::testbench::MeasurementSession;
    let mut sibling =
        MeasurementSession::golden(AdcConfig::sibling_220ms_10b()).expect("sibling builds");
    sibling.record_len = 4096;
    let m = sibling.measure_tone(20e6);
    assert!(m.analysis.enob > 9.3, "ENOB {}", m.analysis.enob);
    let nominal = MeasurementSession::nominal().expect("nominal builds");
    assert!(sibling.adc().power_w() < nominal.adc().power_w());
}
