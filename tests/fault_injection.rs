//! Fault-injection: the converter's redundancy and failure behaviour.
//!
//! The 1.5-bit architecture's defining property is that ADSC errors up to
//! ±V_REF/4 are digitally corrected; these tests inject faults at the
//! component level and check the top-level consequences — both the
//! absorbed ones and the catastrophic ones.

use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use pipeline_adc::spectral::window::coherent_frequency;
use pipeline_adc::testbench::SineSource;

fn sndr_of(adc: &mut PipelineAdc) -> f64 {
    let n = 4096;
    let (f_in, _) = coherent_frequency(adc.config().f_cr_hz, n, 10e6);
    let tone = SineSource::clean(0.999, f_in);
    adc.reset();
    let codes = adc.convert_waveform(&tone, n);
    let record: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
    analyze_tone(&record, &ToneAnalysisConfig::coherent())
        .expect("valid record")
        .sndr_db
}

#[test]
fn offset_within_redundancy_budget_is_absorbed() {
    let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
    let clean = sndr_of(&mut adc);
    // +200 mV on stage 3's upper comparator: < V_REF/4, must be invisible.
    adc.stage_mut(2).adsc.set_high_offset_v(0.2);
    let faulty = sndr_of(&mut adc);
    assert!(
        (clean - faulty).abs() < 0.5,
        "clean {clean} vs offset-injected {faulty}"
    );
}

#[test]
fn offset_beyond_redundancy_budget_breaks_codes() {
    let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
    let clean = sndr_of(&mut adc);
    // +400 mV: beyond V_REF/4 — residues leave the correctable range.
    adc.stage_mut(0).adsc.set_high_offset_v(0.4);
    let faulty = sndr_of(&mut adc);
    assert!(
        faulty < clean - 10.0,
        "expected severe degradation: clean {clean}, faulty {faulty}"
    );
}

#[test]
fn dead_comparator_is_catastrophic_in_stage1_only_mildly_later() {
    // A comparator stuck low = an enormous negative offset.
    let broken_sndr = |stage: usize| {
        let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
        adc.stage_mut(stage).adsc.set_high_offset_v(10.0); // never fires
        sndr_of(&mut adc)
    };
    let stage1 = broken_sndr(0);
    let stage9 = broken_sndr(8);
    // Stage 1 failure destroys the converter; a late-stage failure costs
    // little because its weight is ~2^-9 of full scale.
    assert!(stage1 < 40.0, "stage-1 dead comparator: SNDR {stage1}");
    assert!(stage9 > 60.0, "stage-9 dead comparator: SNDR {stage9}");
    assert!(stage9 > stage1 + 15.0);
}

#[test]
fn overrange_input_saturates_cleanly() {
    let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).expect("builds");
    // 50 % overdrive: codes clamp at the rails, no wrap-around.
    for i in 0..64 {
        let v = 1.5 * ((i as f64 / 64.0) * 2.0 - 1.0);
        let code = adc.convert_held(v);
        assert!(code <= 4095);
        if v > 1.1 {
            assert_eq!(code, 4095, "v {v}");
        }
        if v < -1.1 {
            assert_eq!(code, 0, "v {v}");
        }
    }
}

#[test]
fn mid_rail_dc_input_is_stable() {
    // A grounded input must produce a tight code cluster around midscale,
    // not oscillation.
    let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).expect("builds");
    let codes: Vec<u16> = (0..512).map(|_| adc.convert_held(0.0)).collect();
    let mean: f64 = codes.iter().map(|&c| f64::from(c)).sum::<f64>() / codes.len() as f64;
    assert!((mean - 2047.5).abs() < 8.0, "mean {mean}");
    let max = *codes.iter().max().expect("nonempty");
    let min = *codes.iter().min().expect("nonempty");
    assert!(max - min < 16, "spread {} codes", max - min);
}

#[test]
fn zero_settling_time_rate_is_rejected_not_garbage() {
    // 600 MS/s with a 1 ns logic delay leaves negative settling time: the
    // build must fail loudly instead of producing a silently broken ADC.
    let cfg = AdcConfig {
        f_cr_hz: 600e6,
        ..AdcConfig::nominal_110ms()
    };
    let err = PipelineAdc::build(cfg, 7).expect_err("must not build");
    let msg = err.to_string();
    assert!(msg.contains("600"), "message was: {msg}");
}

#[test]
fn flash_backend_bubble_tolerance() {
    // Force a flash comparator offset: the thermometer count degrades by
    // at most 1 LSB-level decisions, never produces wild codes.
    let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
    let clean = sndr_of(&mut adc);
    // The flash only resolves the last 2 bits; even a large offset there
    // costs at most ~a fraction of an LSB of the full converter.
    // (Accessible only through the stage API: inject on last stage ADSC
    // instead, whose weight is comparable.)
    adc.stage_mut(9).adsc.set_low_offset_v(-0.2);
    let faulty = sndr_of(&mut adc);
    assert!((clean - faulty).abs() < 1.0, "clean {clean} vs {faulty}");
}
