//! Cross-crate consistency: the same physics must agree wherever it is
//! computed (bias ↔ pipeline ↔ testbench ↔ spectral).

use pipeline_adc::analog::process::{OperatingConditions, ProcessCorner};
use pipeline_adc::bias::generator::BiasGenerator;
use pipeline_adc::bias::{BiasScheme, ScBiasGenerator};
use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
use pipeline_adc::spectral::sinefit::fit_known_frequency;
use pipeline_adc::spectral::window::coherent_frequency;
use pipeline_adc::testbench::{MeasurementSession, SineSource, GOLDEN_SEED};

#[test]
fn converter_power_equals_power_model() {
    let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), GOLDEN_SEED).expect("builds");
    let from_reading = adc.power_reading().total_w;
    let from_model = adc.power_model().total_power_w(adc.config().f_cr_hz);
    assert!((from_reading - from_model).abs() < 1e-15);
    assert_eq!(adc.power_w(), from_reading);
}

#[test]
fn eq1_flows_through_to_converter_power() {
    // Doubling the rate doubles the scaled component of the converter's
    // power — Eq. 1 visible at the top level.
    let at = |f: f64| {
        let cfg = AdcConfig {
            f_cr_hz: f,
            ..AdcConfig::nominal_110ms()
        };
        PipelineAdc::build(cfg, GOLDEN_SEED)
            .expect("builds")
            .power_reading()
    };
    let p55 = at(55e6);
    let p110 = at(110e6);
    assert!((p110.scaled_w / p55.scaled_w - 2.0).abs() < 1e-9);
    assert!((p110.fixed_w - p55.fixed_w).abs() < 1e-15);
}

#[test]
fn corner_capacitance_cancels_in_settling() {
    // The paper's tracking argument: bias ∝ C_B means GBW ∝ C/C is
    // corner-free, so SNDR at the slow-cap corner matches typical within
    // measurement noise.
    let measure = |corner: ProcessCorner| {
        let cfg = AdcConfig {
            conditions: OperatingConditions::at_corner(corner),
            ..AdcConfig::nominal_110ms()
        };
        let mut bench = MeasurementSession::new(cfg, GOLDEN_SEED).expect("builds");
        bench.record_len = 4096;
        bench.measure_tone(10e6).analysis.sndr_db
    };
    let tt = measure(ProcessCorner::Typical);
    let ss = measure(ProcessCorner::Slow);
    let ff = measure(ProcessCorner::Fast);
    assert!((tt - ss).abs() < 1.5, "TT {tt} vs SS {ss}");
    assert!((tt - ff).abs() < 1.5, "TT {tt} vs FF {ff}");
}

#[test]
fn sc_bias_tracks_the_same_die_capacitance_the_stages_use() {
    // White-box Eq. 1 check at the unit level, consistent with the
    // integration behaviour above.
    use pipeline_adc::analog::capacitor::Capacitor;
    let nominal = ScBiasGenerator::new(Capacitor::ideal(1e-12), 0.9);
    let fast_die = ScBiasGenerator::new(
        Capacitor {
            value_f: 0.85e-12,
            nominal_f: 1e-12,
        },
        0.9,
    );
    let ratio = fast_die.master_current_a(110e6) / nominal.master_current_a(110e6);
    assert!((ratio - 0.85).abs() < 1e-12);
    // And the scheme dispatch agrees with the trait object.
    let scheme = BiasScheme::Switched(nominal);
    assert_eq!(
        scheme.master_current_a(110e6),
        nominal.master_current_a(110e6)
    );
}

#[test]
fn fft_metrics_agree_with_sine_fit() {
    // Two independent SINAD estimators (FFT-based SNDR and IEEE-1057
    // residual-based SINAD) must agree on the same record.
    let mut bench = MeasurementSession::nominal().expect("builds");
    bench.record_len = 8192;
    let (codes, f_in) = bench.capture_tone(10e6);
    let record = bench.reconstruct(&codes);
    let fft = analyze_tone(&record, &ToneAnalysisConfig::coherent()).expect("analyzes");
    let f_cycles = f_in / bench.adc().config().f_cr_hz;
    let fit = fit_known_frequency(&record, f_cycles).expect("fits");
    assert!(
        (fft.sndr_db - fit.sinad_db).abs() < 1.0,
        "FFT {} vs sine-fit {}",
        fft.sndr_db,
        fit.sinad_db
    );
}

#[test]
fn coherent_capture_lands_on_predicted_bin() {
    let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
    let n = 4096;
    let (f_in, bin) = coherent_frequency(110e6, n, 17e6);
    let tone = SineSource::clean(0.9, f_in);
    let codes = adc.convert_waveform(&tone, n);
    let record: Vec<f64> = codes.iter().map(|&c| adc.reconstruct_v(c)).collect();
    let a = analyze_tone(&record, &ToneAnalysisConfig::coherent()).expect("analyzes");
    assert_eq!(a.fundamental_bin, bin);
}

#[test]
fn reconstruction_is_consistent_between_adc_and_session() {
    let cfg = AdcConfig::nominal_110ms();
    let adc = PipelineAdc::build(cfg.clone(), GOLDEN_SEED).expect("builds");
    let bench = MeasurementSession::new(cfg, GOLDEN_SEED).expect("builds");
    for code in [0u16, 1, 2047, 2048, 4095] {
        assert_eq!(
            adc.reconstruct_v(code),
            bench.reconstruct(&[code])[0],
            "code {code}"
        );
    }
}

#[test]
fn bias_trait_objects_interoperate_with_config_enum() {
    use pipeline_adc::bias::FixedBiasGenerator;
    let generators: Vec<Box<dyn BiasGenerator>> = vec![
        Box::new(ScBiasGenerator::new(
            pipeline_adc::analog::capacitor::Capacitor::ideal(1e-12),
            0.9,
        )),
        Box::new(FixedBiasGenerator::new(99e-6)),
    ];
    // At 110 MS/s the SC generator with these values equals the fixed one.
    let sc = generators[0].master_current_a(110e6);
    let fx = generators[1].master_current_a(110e6);
    assert!((sc - fx).abs() < 1e-12);
    // At 55 MS/s they diverge by exactly 2x.
    assert!(
        (generators[1].master_current_a(55e6) / generators[0].master_current_a(55e6) - 2.0).abs()
            < 1e-9
    );
}

#[test]
fn static_inl_predicts_the_dynamic_distortion_floor() {
    // Measure the golden die's INL (static), synthesize the distortion
    // spectrum it implies, and compare with the directly measured THD at
    // low input frequency — the static and dynamic characterisations
    // must tell one story.
    use pipeline_adc::spectral::linearity::predict_tone_from_inl;
    let mut bench = MeasurementSession::nominal().expect("builds");
    let lin = bench.measure_linearity(1 << 19).expect("histogram runs");
    let predicted =
        predict_tone_from_inl(&lin.inl_lsb, 4096, 0.999, 8192).expect("power-of-two record");
    let measured = bench.measure_tone(2e6); // low fin: static floor
    assert!(
        (predicted.thd_db - measured.analysis.thd_db).abs() < 6.0,
        "predicted THD {} vs measured {}",
        predicted.thd_db,
        measured.analysis.thd_db
    );
}

#[test]
fn decimation_recovers_snr_on_the_real_converter() {
    // Oversample + decimate: running the nominal die at 110 MS/s on a
    // ~2.8 MHz tone and decimating by 4 with a CIC must buy several dB
    // of SNDR — the processing-gain use-case of a rate-scalable IP
    // block.
    use pipeline_adc::digital::CicDecimator;
    use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
    let mut bench = MeasurementSession::nominal().expect("builds");

    // Direct measurement at the input rate.
    bench.record_len = 8192;
    let direct = bench.measure_tone(2.8e6).analysis.sndr_db;

    // Longer capture, decimated by 4. A tone coherent over 32768 input
    // samples has an integer cycle count over any contiguous 8192-sample
    // window at the decimated rate, so the analysis slice stays coherent.
    bench.record_len = 1 << 15;
    let (codes, _f_in) = bench.capture_tone(2.8e6);
    let record = bench.reconstruct(&codes);
    let mut cic = CicDecimator::new(3, 4);
    // Warm the filter on one pass (a coherent record wraps seamlessly),
    // then analyze the second pass: fully settled, fully coherent.
    let _ = cic.process_record(&record);
    let decimated = cic.process_record(&record);
    assert_eq!(decimated.len(), 8192);
    let dec = analyze_tone(&decimated, &ToneAnalysisConfig::coherent()).expect("analyzes");
    assert!(
        dec.sndr_db > direct + 3.0,
        "decimated {} vs direct {direct}",
        dec.sndr_db
    );
}
