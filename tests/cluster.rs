//! Cluster gate (ci.sh `cluster` stage): a campaign distributed over
//! two real loopback `adc-server` hosts produces a digest bit-identical
//! to the same campaign executed in-process, and the assembled
//! Monte-Carlo statistics match the `adc-testbench` reference path.
//!
//! This is the release-mode wall-clock-guarded rerun of the invariants
//! the `adc-cluster` crate tests own; like the `service` suite it
//! exercises real TCP sockets, so CI runs it under a hard timeout.

use std::time::Duration;

use adc_cluster::{
    assemble_monte_carlo, monte_carlo_campaign, probe_mix_config, standard_registry,
    ClusterCampaign, ClusterExecutor, ClusterOptions,
};
use adc_pipeline::config::AdcConfig;
use adc_runtime::canonical_key;
use adc_server::{Preset, Server, ServerConfig, ServerHandle};
use adc_testbench::{monte_carlo_plan, run_monte_carlo_with, RunPolicy};

type ServerJoin = std::thread::JoinHandle<std::io::Result<()>>;

fn spawn_host() -> (ServerHandle, ServerJoin) {
    let cfg = ServerConfig {
        job_runner: Some(standard_registry()),
        ..ServerConfig::default()
    };
    Server::spawn("127.0.0.1:0", cfg).expect("spawn loopback host")
}

fn spawn_pair() -> (Vec<(ServerHandle, ServerJoin)>, Vec<String>) {
    let hosts: Vec<_> = (0..2).map(|_| spawn_host()).collect();
    let peers = hosts.iter().map(|(h, _)| h.addr().to_string()).collect();
    (hosts, peers)
}

fn drain_all(hosts: Vec<(ServerHandle, ServerJoin)>) {
    for (handle, join) in hosts {
        handle.shutdown();
        join.join().expect("server thread").expect("serve");
    }
}

fn tight_options() -> ClusterOptions {
    ClusterOptions {
        window: 2,
        batch_jobs: 2,
        backoff: Duration::from_millis(5),
        ..ClusterOptions::default()
    }
}

/// One order-independent content digest over a campaign's result lines
/// (they are id-indexed, so order is part of the contract too).
fn digest(lines: &[String]) -> u64 {
    canonical_key("cluster-digest", &lines)
}

#[test]
fn distributed_probe_campaign_digest_matches_in_process() {
    let mut campaign = ClusterCampaign::new("probe-ci", "probe-mix", 77);
    for a in 0..16u64 {
        campaign.push_job(probe_mix_config(a, 3), canonical_key("probe-ci", &a));
    }

    let local = ClusterExecutor::new(Vec::new(), standard_registry())
        .execute(&campaign)
        .expect("in-process run");

    let (hosts, peers) = spawn_pair();
    let distributed = ClusterExecutor::new(peers, standard_registry())
        .options(tight_options())
        .execute(&campaign)
        .expect("2-host run");
    drain_all(hosts);

    assert_eq!(
        digest(&distributed.lines),
        digest(&local.lines),
        "distributed digest diverged from local"
    );
    assert_eq!(distributed.lines, local.lines);
    assert_eq!(
        distributed.stats.local_computed, 0,
        "{:?}",
        distributed.stats
    );
}

#[test]
fn distributed_monte_carlo_matches_the_testbench_reference() {
    let config = AdcConfig::nominal_110ms();
    let plan = monte_carlo_plan(&config, 4, 10e6, 512);
    let campaign = monte_carlo_campaign(Preset::Nominal110, &plan);
    let reference =
        run_monte_carlo_with(&config, 4, 10e6, 512, &RunPolicy::serial()).expect("reference");

    let (hosts, peers) = spawn_pair();
    let report = ClusterExecutor::new(peers, standard_registry())
        .options(tight_options())
        .execute(&campaign)
        .expect("distributed MC");
    drain_all(hosts);

    let assembled = assemble_monte_carlo(&report.lines).expect("assemble");
    assert_eq!(assembled, reference, "distributed MC diverged");
}
