//! The preset × corner integration matrix: every configuration preset
//! must build and deliver sane metrics at every process corner — the
//! end-to-end form of the paper's "pure digital process, no analog
//! options" robustness argument.

use pipeline_adc::analog::process::{OperatingConditions, ProcessCorner};
use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::testbench::{MeasurementSession, GOLDEN_SEED};

fn measure(config: AdcConfig, fin: f64) -> (f64, f64) {
    let mut s = MeasurementSession::new(config, GOLDEN_SEED).expect("config builds");
    s.record_len = 2048;
    let m = s.measure_tone(fin);
    (m.analysis.enob, s.adc().power_w())
}

#[test]
fn nominal_preset_works_at_every_corner() {
    for corner in ProcessCorner::all() {
        let cfg = AdcConfig {
            conditions: OperatingConditions::at_corner(corner),
            ..AdcConfig::nominal_110ms()
        };
        let (enob, power) = measure(cfg, 10e6);
        assert!(enob > 10.0, "{}: ENOB {enob}", corner.label());
        // Power tracks the capacitor corner through Eq. 1.
        assert!(
            (0.075..0.13).contains(&power),
            "{}: power {power}",
            corner.label()
        );
    }
}

#[test]
fn sibling_preset_works_at_every_corner() {
    for corner in ProcessCorner::all() {
        let cfg = AdcConfig {
            conditions: OperatingConditions {
                corner,
                vdd_v: 1.2,
                ..OperatingConditions::nominal()
            },
            ..AdcConfig::sibling_220ms_10b()
        };
        let (enob, _) = measure(cfg, 20e6);
        assert!(enob > 9.0, "{}: ENOB {enob}", corner.label());
    }
}

#[test]
fn ideal_preset_is_corner_independent() {
    // No physical effects enabled: every corner measures identically.
    let mut last = None;
    for corner in ProcessCorner::all() {
        let cfg = AdcConfig {
            conditions: OperatingConditions::at_corner(corner),
            ..AdcConfig::ideal(110e6)
        };
        let (enob, _) = measure(cfg, 10e6);
        if let Some(prev) = last {
            let diff: f64 = enob - prev;
            assert!(
                diff.abs() < 0.05,
                "corner-dependent ideal: {prev} vs {enob}"
            );
        }
        last = Some(enob);
    }
}

#[test]
fn power_tracks_capacitor_corner_direction() {
    // SS (high caps) must burn more than FF (low caps): Eq. 1's price.
    let power_at = |corner| {
        let cfg = AdcConfig {
            conditions: OperatingConditions::at_corner(corner),
            ..AdcConfig::nominal_110ms()
        };
        MeasurementSession::new(cfg, GOLDEN_SEED)
            .expect("builds")
            .adc()
            .power_w()
    };
    assert!(power_at(ProcessCorner::Slow) > power_at(ProcessCorner::Typical));
    assert!(power_at(ProcessCorner::Typical) > power_at(ProcessCorner::Fast));
}

#[test]
fn supply_variation_is_tolerated() {
    // ±10 % supply: the band-gap-referred design keeps working.
    for vdd in [1.62, 1.8, 1.98] {
        let cfg = AdcConfig {
            conditions: OperatingConditions {
                vdd_v: vdd,
                ..OperatingConditions::nominal()
            },
            ..AdcConfig::nominal_110ms()
        };
        let (enob, _) = measure(cfg, 10e6);
        assert!(enob > 10.0, "vdd {vdd}: ENOB {enob}");
    }
}
