//! Spur forensics over the interleaved array: each mismatch mechanism
//! must light up exactly its predicted family, and background
//! calibration must suppress the correctable families by a pinned
//! margin. These are the cross-crate assertions that make "we know
//! where the spurs are" checkable instead of an eyeballed spectrum.

use pipeline_adc::calib::{Alignment, GangedScenario};
use pipeline_adc::pipeline::interleave::{InterleaveMismatch, InterleavedAdc};
use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::spectral::interleave::attribute_record;
use pipeline_adc::spectral::window::coherent_frequency;

const N: usize = 8192;
const SEED: u64 = 7;

/// A low-noise array: the ideal config keeps thermal/jitter floors far
/// below the injected mismatch spurs, so family attribution is crisp.
fn quiet_array(m: usize) -> InterleavedAdc {
    let config = AdcConfig::ideal(110e6);
    let rate = config.f_cr_hz * m as f64;
    InterleavedAdc::build(&config, m, rate, SEED).expect("ideal array builds")
}

fn capture(ilv: &mut InterleavedAdc) -> Vec<f64> {
    let (f_in, _) = coherent_frequency(ilv.sample_rate_hz(), N, 20e6);
    let tone = move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin();
    ilv.convert_waveform(&tone, N)
}

#[test]
fn offset_only_mismatch_lights_exactly_the_offset_family() {
    let mut ilv = quiet_array(2);
    ilv.inject_mismatch(1, 2e-3, 1.0); // 2 mV offset, unity gain
    let report = attribute_record(&capture(&mut ilv), 2).expect("record attributes");
    // A 2 mV offset against a 0.9 V carrier: the fs/2 tone sits near
    // 20*log10(offset/(2*amplitude)) ≈ −59 dBc; demand it clearly hot.
    assert!(
        report.offset_worst_dbc > -70.0,
        "offset family should be hot: {} dBc",
        report.offset_worst_dbc
    );
    // The image family stays at the converter's quantization floor.
    assert!(
        report.image_worst_dbc < report.offset_worst_dbc - 15.0,
        "image family should be quiet: {} vs {} dBc",
        report.image_worst_dbc,
        report.offset_worst_dbc
    );
}

#[test]
fn gain_only_mismatch_lights_exactly_the_image_family() {
    let mut ilv = quiet_array(2);
    ilv.inject_mismatch(1, 0.0, 1.01); // 1% gain, no offset
    let report = attribute_record(&capture(&mut ilv), 2).expect("record attributes");
    // 1% gain mismatch on a 2-way array: image at −20*log10(2/0.01) ≈
    // −46 dBc.
    assert!(
        report.image_worst_dbc > -52.0,
        "image family should be hot: {} dBc",
        report.image_worst_dbc
    );
    assert!(
        report.offset_worst_dbc < report.image_worst_dbc - 15.0,
        "offset family should be quiet: {} vs {} dBc",
        report.offset_worst_dbc,
        report.image_worst_dbc
    );
}

#[test]
fn skew_only_mismatch_lights_exactly_the_image_family() {
    let mut ilv = quiet_array(2);
    ilv.inject_skew(1, 20e-12); // 20 ps timing skew
    let report = attribute_record(&capture(&mut ilv), 2).expect("record attributes");
    // 20 ps at fin ≈ 20 MHz: image near 20*log10(π·fin·δ) ≈ −58 dBc.
    assert!(
        report.image_worst_dbc > -64.0,
        "image family should be hot: {} dBc",
        report.image_worst_dbc
    );
    assert!(
        report.offset_worst_dbc < report.image_worst_dbc - 10.0,
        "offset family should be quiet: {} vs {} dBc",
        report.offset_worst_dbc,
        report.image_worst_dbc
    );
}

#[test]
fn four_way_array_families_attribute_too() {
    let mut ilv = quiet_array(4);
    ilv.inject_mismatch(2, 2e-3, 1.0);
    ilv.inject_skew(3, 20e-12);
    let report = attribute_record(&capture(&mut ilv), 4).expect("record attributes");
    assert!(report.offset_worst_dbc > -70.0);
    // A single channel's skew error spreads over M−1 image tones, each
    // carrying ~1/M of the error — the worst sits near −70 dBc here.
    assert!(report.image_worst_dbc > -76.0);
    // The offset family of a 4-way array includes the fs/4 tone.
    assert!(report.families.offset_bins.contains(&(N / 4)));
}

/// Background calibration must suppress both correctable families by a
/// pinned margin on a fully mismatched (nominal-noise) array, and land
/// the SNDR within the acceptance band of the matched array.
#[test]
fn background_calibration_suppresses_correctable_families() {
    let scenario = |mismatch: InterleaveMismatch, alignment: Alignment| GangedScenario {
        config: AdcConfig::nominal_110ms(),
        channels: 2,
        seed: SEED,
        mismatch,
        f_target_hz: 20e6,
        n_samples: N as u32,
        alignment,
    };
    let background = Alignment::Background {
        epochs: 24,
        epoch_len: 4096,
    };

    let raw = scenario(InterleaveMismatch::typical(), Alignment::Raw)
        .capture_tone()
        .expect("raw capture");
    let cal = scenario(InterleaveMismatch::typical(), background)
        .capture_tone()
        .expect("calibrated capture");
    assert!(
        cal.converged,
        "loop must reach Hold, ran {}",
        cal.epochs_run
    );
    assert!(cal.epochs_run > 0, "background cal must actually run");

    let raw_spurs = attribute_record(&raw.values, 2).expect("raw attributes");
    let cal_spurs = attribute_record(&cal.values, 2).expect("cal attributes");
    // Pinned suppression margins: ≥ 25 dB off the offset family and
    // ≥ 20 dB off the image family (measured ~35-60 dB in practice;
    // the margin leaves room for draw-to-draw spread, not for
    // regressions that disable a corrector).
    assert!(
        cal_spurs.offset_worst_dbc < raw_spurs.offset_worst_dbc - 25.0,
        "offset family: raw {} dBc, calibrated {} dBc",
        raw_spurs.offset_worst_dbc,
        cal_spurs.offset_worst_dbc
    );
    assert!(
        cal_spurs.image_worst_dbc < raw_spurs.image_worst_dbc - 20.0,
        "image family: raw {} dBc, calibrated {} dBc",
        raw_spurs.image_worst_dbc,
        cal_spurs.image_worst_dbc
    );

    // Acceptance: post-convergence SNDR within 1 dB of the matched
    // (mismatch-free) array at the same seed and stimulus.
    use pipeline_adc::spectral::metrics::{analyze_tone, ToneAnalysisConfig};
    let matched = scenario(InterleaveMismatch::none(), Alignment::Raw)
        .capture_tone()
        .expect("matched capture");
    let sndr = |r: &[f64]| {
        analyze_tone(r, &ToneAnalysisConfig::coherent())
            .expect("coherent record analyzes")
            .sndr_db
    };
    let (cal_sndr, matched_sndr) = (sndr(&cal.values), sndr(&matched.values));
    assert!(
        cal_sndr > matched_sndr - 1.0,
        "calibrated {cal_sndr:.2} dB must be within 1 dB of matched {matched_sndr:.2} dB"
    );
}
