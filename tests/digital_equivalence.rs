//! The cycle-accurate digital back-end (`adc-digital`) driven by the
//! *full behavioral converter*: raw stage decisions stream through the
//! skew adapter and RTL block, and must reproduce the converter's own
//! corrected codes, delayed by exactly the architectural latency.

use pipeline_adc::digital::backend::{DigitalBackend, SampleStream};
use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};

#[test]
fn rtl_backend_reproduces_converter_codes_from_live_decisions() {
    let mut adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).expect("builds");
    let n_stages = adc.config().stage_count;
    let mut backend = DigitalBackend::new(n_stages);
    let mut stream = SampleStream::new(n_stages);

    // A busy input exercising all decision patterns.
    let mut expected = Vec::new();
    let mut produced = Vec::new();
    for k in 0..400 {
        let v = 0.97 * (0.37 * k as f64).sin() + 0.02 * (1.7 * k as f64).cos();
        let raw = adc.convert_held_raw(v);
        expected.push(raw.code);
        let words = stream.push(&raw.dac_levels, raw.flash_code);
        let out = backend.clock(&words);
        if backend.output_valid() {
            produced.push(out);
        }
    }
    // Flush the pipeline.
    for _ in 0..16 {
        let words = stream.push(&vec![0i8; n_stages], 0);
        produced.push(backend.clock(&words));
    }

    let offset = produced
        .windows(8)
        .position(|w| w == &expected[..8])
        .expect("converter code stream appears in RTL output");
    for (i, &e) in expected.iter().enumerate().take(390) {
        assert_eq!(produced[offset + i], e, "sample {i}");
    }
}

#[test]
fn rtl_latency_equals_converter_latency() {
    let adc = PipelineAdc::build(AdcConfig::nominal_110ms(), 7).expect("builds");
    let backend = DigitalBackend::new(adc.config().stage_count);
    assert_eq!(backend.latency_cycles(), adc.latency_samples());
}

#[test]
fn rtl_backend_handles_rail_codes() {
    let mut adc = PipelineAdc::build(AdcConfig::ideal(110e6), 1).expect("builds");
    let n_stages = adc.config().stage_count;
    let mut backend = DigitalBackend::new(n_stages);
    let mut stream = SampleStream::new(n_stages);
    let mut outs = Vec::new();
    for _ in 0..20 {
        let raw = adc.convert_held_raw(0.99999);
        let words = stream.push(&raw.dac_levels, raw.flash_code);
        outs.push(backend.clock(&words));
    }
    assert_eq!(*outs.last().expect("nonempty"), 4095);
}
