//! Determinism contract of the `adc-runtime` campaign engine, end to
//! end: the same Monte-Carlo yield campaign must be **bit-identical**
//! at 1, 2, and 8 worker threads, and — via a recorded result hash —
//! across compilation profiles (debug vs release; see `ci.sh`, which
//! runs this test in both profiles against one
//! `ADC_DETERMINISM_HASH_FILE`).

use pipeline_adc::pipeline::lanes::LaneBatch;
use pipeline_adc::pipeline::{AdcConfig, PipelineAdc};
use pipeline_adc::runtime::{canonical_key, CacheCodec, Campaign, JobError};
use pipeline_adc::testbench::montecarlo::{run_monte_carlo_with, MonteCarloResult};
use pipeline_adc::testbench::sweep::SweepRunner;
use pipeline_adc::testbench::RunPolicy;

fn yield_campaign(threads: usize) -> MonteCarloResult {
    run_monte_carlo_with(
        &AdcConfig::nominal_110ms(),
        8,
        10e6,
        1024,
        &RunPolicy::parallel(threads),
    )
    .expect("campaign runs")
}

/// A stable 64-bit digest of a campaign result, built from the
/// bit-exact `CacheCodec` encodings (f64s as IEEE-754 bit patterns).
fn digest(mc: &MonteCarloResult) -> u64 {
    let lines: Vec<String> = mc.dies.iter().map(CacheCodec::encode).collect();
    canonical_key("determinism-digest", &lines)
}

#[test]
fn monte_carlo_is_bit_identical_at_1_2_and_8_threads() {
    let serial = yield_campaign(1);
    let two = yield_campaign(2);
    let eight = yield_campaign(8);
    assert_eq!(serial, two, "2 threads diverged from serial");
    assert_eq!(serial, eight, "8 threads diverged from serial");
    assert_eq!(digest(&serial), digest(&eight));
}

#[test]
fn sweeps_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let runner = SweepRunner {
            record_len: 1024,
            policy: RunPolicy::parallel(threads),
            ..SweepRunner::nominal()
        };
        (
            runner.rate_sweep(&[40e6, 80e6, 110e6], 10e6).unwrap(),
            runner.frequency_sweep(&[10e6, 40e6, 100e6]).unwrap(),
        )
    };
    let serial = run(1);
    assert_eq!(serial, run(2));
    assert_eq!(serial, run(8));
}

#[test]
fn derived_seeds_do_not_depend_on_scheduling() {
    let seeds_at = |threads: usize| -> Vec<u64> {
        Campaign::new("seed-probe", 0xDEC0DE)
            .jobs(0u64..64)
            .threads(threads)
            .run(|ctx, _| Ok::<_, JobError>(ctx.seed))
            .into_result()
            .unwrap()
    };
    let serial = seeds_at(1);
    assert_eq!(serial, seeds_at(2));
    assert_eq!(serial, seeds_at(8));
    // And they are genuinely distinct per job (SplitMix64 mixing).
    let mut sorted = serial.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), serial.len());
}

/// The tracing subsystem's determinism contract (DESIGN.md §11): a
/// campaign run with a collector installed is bit-identical to the same
/// campaign with tracing disabled. Instrumentation observes; it never
/// perturbs.
#[test]
fn tracing_on_and_off_are_bit_identical() {
    let untraced = yield_campaign(2);
    let session =
        pipeline_adc::trace::Collector::install().expect("no other collector in this binary");
    let traced = yield_campaign(2);
    let trace = session.finish();
    assert!(!trace.is_empty(), "instrumented campaign records spans");
    assert_eq!(untraced, traced, "tracing perturbed campaign results");
    assert_eq!(digest(&untraced), digest(&traced));
}

/// The lane-parallel SoA kernel's determinism contract: at 1, 4, and
/// 8 lanes, with aperture jitter on and off, every lane's record is
/// **bit-identical** to converting that lane's waveform alone through
/// the scalar planned path at the same seed — and the whole laned
/// corpus hashes to the same digest across compilation profiles via
/// `ADC_DETERMINISM_LANES_HASH_FILE` (recorded on first run, compared
/// on later runs; `ci.sh determinism` runs this test in debug and
/// release against one file).
#[test]
fn laned_and_scalar_paths_are_bit_identical() {
    let jitter_off = AdcConfig {
        jitter: pipeline_adc::analog::noise::ApertureJitter::none(),
        ..AdcConfig::nominal_110ms()
    };
    let tone = |t: f64| 0.95 * (2.0 * std::f64::consts::PI * 9.7e6 * t).sin();
    let mut corpus: Vec<String> = Vec::new();
    for (name, config) in [
        ("jitter_on", AdcConfig::nominal_110ms()),
        ("jitter_off", jitter_off),
    ] {
        for lanes in [1usize, 4, 8] {
            let seeds: Vec<u64> = (1..=lanes as u64).map(|s| 100 * s + 7).collect();
            let mut batch = LaneBatch::build(&config, &seeds).expect("batch builds");
            let records = batch.convert_waveform(&tone, 512);
            for (lane, seed) in seeds.iter().enumerate() {
                let mut scalar = PipelineAdc::build(config.clone(), *seed).expect("die builds");
                let alone = scalar.convert_waveform(&tone, 512);
                assert_eq!(
                    records[lane], alone,
                    "{name}: lane {lane}/{lanes} diverged from the scalar path at seed {seed}"
                );
                let codes: Vec<u64> = alone.iter().map(|&c| u64::from(c)).collect();
                corpus.push(format!(
                    "{name}/{lanes}/{lane}:{}",
                    CacheCodec::encode(&codes)
                ));
            }
        }
    }
    let digest = format!("{:016x}", canonical_key("lanes-digest", &corpus));
    let Ok(path) = std::env::var("ADC_DETERMINISM_LANES_HASH_FILE") else {
        return; // no cross-profile anchor requested
    };
    match std::fs::read_to_string(&path) {
        Ok(recorded) if !recorded.trim().is_empty() => assert_eq!(
            recorded.trim(),
            digest,
            "laned digest diverged from the one recorded at {path}"
        ),
        _ => std::fs::write(&path, format!("{digest}\n")).expect("hash file writable"),
    }
}

/// Cross-profile determinism: hashes the 8-die campaign and compares it
/// against `ADC_DETERMINISM_HASH_FILE` when that variable is set —
/// recording the hash on first run, comparing on subsequent runs. The
/// CI script runs this test in debug and release against the same file,
/// turning "release vs debug bit-identity" into an assertion.
#[test]
fn recorded_hash_matches_across_profiles() {
    let digest = format!("{:016x}", digest(&yield_campaign(4)));
    let Ok(path) = std::env::var("ADC_DETERMINISM_HASH_FILE") else {
        return; // no cross-profile anchor requested
    };
    match std::fs::read_to_string(&path) {
        Ok(recorded) if !recorded.trim().is_empty() => assert_eq!(
            recorded.trim(),
            digest,
            "campaign digest diverged from the one recorded at {path}"
        ),
        _ => std::fs::write(&path, format!("{digest}\n")).expect("hash file writable"),
    }
}
