//! End-to-end tests of the streaming digitization service: the TCP
//! boundary must add transport, not nondeterminism — records streamed
//! to concurrent clients are bit-identical to direct in-process
//! measurement at the same seed — and the failure paths (invalid
//! requests, corrupt frames, deadlines, drain) must all surface as
//! typed protocol errors, never hangs or panics.

use std::io::Write;
use std::net::TcpStream;

use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::server::protocol::{self, encode_request, Request};
use pipeline_adc::server::{
    ganged_scenario, Client, ClientError, ConfigOverrides, DigitizeRequest, ErrorCode,
    GangedRequest, PipelinedClient, PipelinedOutcome, Server, ServerConfig, WaveformSpec,
};
use pipeline_adc::testbench::MeasurementSession;

const RECORD: u32 = 2048;
const F_TARGET: f64 = 10e6;

/// The in-process reference: what a direct library user gets for this
/// seed, bit for bit.
fn direct_record(seed: u64) -> (Vec<u16>, f64) {
    direct_record_n(seed, RECORD)
}

/// Same reference at an explicit record length.
fn direct_record_n(seed: u64, n_samples: u32) -> (Vec<u16>, f64) {
    let mut session =
        MeasurementSession::new(AdcConfig::nominal_110ms(), seed).expect("nominal builds");
    session.record_len = n_samples as usize;
    session.capture_tone(F_TARGET)
}

#[test]
fn concurrent_clients_get_bit_identical_records() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // Six concurrent clients, distinct seeds, all in flight at once.
    let seeds: Vec<u64> = (40..46).collect();
    let workers: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let result = client
                    .digitize(&DigitizeRequest::tone(seed, F_TARGET, RECORD))
                    .expect("digitize");
                (seed, result)
            })
        })
        .collect();

    for worker in workers {
        let (seed, served) = worker.join().expect("client thread");
        let (expected, f_in) = direct_record(seed);
        assert_eq!(
            served.samples, expected,
            "seed {seed}: streamed record differs from in-process record"
        );
        assert_eq!(
            served.done.f_in_hz.to_bits(),
            f_in.to_bits(),
            "seed {seed}: snapped stimulus frequency differs"
        );
    }

    // Distinct seeds are distinct dies: the records must not all match.
    let (a, _) = direct_record(seeds[0]);
    let (b, _) = direct_record(seeds[1]);
    assert_ne!(a, b, "different seeds should fabricate different dies");

    let metrics = handle.metrics().snapshot();
    assert_eq!(metrics.digitizes, seeds.len() as u64);
    assert_eq!(metrics.completed, seeds.len() as u64);
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(
        metrics.samples_streamed,
        u64::from(RECORD) * seeds.len() as u64
    );

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn pipelined_clients_stream_bit_identical_records() {
    // Eight clients, each keeping three correlated requests in flight
    // on one connection. Identical tone shapes with distinct seeds are
    // exactly what the reactor coalesces into lane-parallel batches,
    // so this drives the pipelined *and* the coalesced path — and
    // every record must still match the in-process reference bit for
    // bit, whatever order the server finished them in.
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    const CLIENTS: u64 = 8;
    const PER_CLIENT: u64 = 3;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = PipelinedClient::connect(addr).expect("connect");
                let mut by_corr = std::collections::BTreeMap::new();
                for k in 0..PER_CLIENT {
                    let seed = 100 + c * PER_CLIENT + k;
                    let corr = client
                        .submit(&DigitizeRequest::tone(seed, F_TARGET, RECORD))
                        .expect("submit");
                    by_corr.insert(corr, seed);
                }
                let mut results = Vec::new();
                while client.in_flight() > 0 {
                    let (corr, outcome) = client.next_completion().expect("completion");
                    let seed = by_corr.remove(&corr).expect("known corr id");
                    match outcome {
                        PipelinedOutcome::Digitize(result) => results.push((seed, result)),
                        other => panic!("seed {seed}: unexpected outcome {other:?}"),
                    }
                }
                results
            })
        })
        .collect();

    let mut total = 0u64;
    for worker in workers {
        for (seed, served) in worker.join().expect("client thread") {
            let (expected, f_in) = direct_record(seed);
            assert_eq!(
                served.samples, expected,
                "seed {seed}: pipelined record differs from in-process record"
            );
            assert_eq!(
                served.done.f_in_hz.to_bits(),
                f_in.to_bits(),
                "seed {seed}: snapped stimulus frequency differs"
            );
            total += 1;
        }
    }
    assert_eq!(total, CLIENTS * PER_CLIENT);

    let metrics = handle.metrics().snapshot();
    assert_eq!(metrics.digitizes, CLIENTS * PER_CLIENT);
    assert_eq!(metrics.completed, CLIENTS * PER_CLIENT);
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(
        metrics.samples_streamed,
        u64::from(RECORD) * CLIENTS * PER_CLIENT
    );

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn overload_sheds_typed_errors_while_admitted_requests_complete() {
    // One worker, one admission slot, one parked request: a burst of
    // twelve pipelined submissions must shed most of the queue with
    // typed Overloaded frames *immediately* — before the admitted
    // request's record has streamed — while everything that was
    // admitted still completes bit-identically.
    let cfg = ServerConfig {
        threads: 1,
        max_inflight: 1,
        max_inflight_per_conn: 1,
        max_pending_per_conn: 1,
        max_coalesce_lanes: 1,
        ..ServerConfig::default()
    };
    let (handle, join) = Server::spawn("127.0.0.1:0", cfg).expect("bind");
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");

    const BURST: u64 = 12;
    const BIG: u32 = 8192; // ~8 ms of conversion keeps corr 1 in flight
    let mut seeds = std::collections::BTreeMap::new();
    for k in 0..BURST {
        let seed = 300 + k;
        let corr = client
            .submit(&DigitizeRequest::tone(seed, F_TARGET, BIG))
            .expect("submit");
        seeds.insert(corr, seed);
    }

    let mut order = Vec::new();
    let mut served = 0u64;
    let mut shed = 0u64;
    while client.in_flight() > 0 {
        let (corr, outcome) = client.next_completion().expect("completion");
        let seed = seeds[&corr];
        match outcome {
            PipelinedOutcome::Digitize(result) => {
                let (expected, _) = direct_record_n(seed, BIG);
                assert_eq!(
                    result.samples, expected,
                    "seed {seed}: record served under overload differs"
                );
                served += 1;
            }
            PipelinedOutcome::ServerError { code, .. } => {
                assert_eq!(code, ErrorCode::Overloaded, "corr {corr}: wrong error code");
                shed += 1;
            }
            other => panic!("corr {corr}: unexpected outcome {other:?}"),
        }
        order.push(corr);
    }

    assert_eq!(served + shed, BURST);
    assert!(served >= 1, "the admitted head of the burst must complete");
    assert!(shed >= 1, "a 12-deep burst into a 1-slot queue must shed");
    // Out-of-order completion, observed: the shed frames come back
    // while corr 1 is still converting, so corr 1 cannot be first.
    assert_eq!(
        seeds[&order[0]],
        300 + order[0] - 1,
        "corr ids were issued in submit order"
    );
    assert_ne!(
        order[0], 1,
        "a shed response must overtake the in-flight head"
    );
    assert!(
        order.contains(&1),
        "the first-admitted request still completes"
    );

    let metrics = handle.metrics().snapshot();
    assert_eq!(metrics.overloaded, shed);
    assert_eq!(metrics.in_flight, 0);

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn mixed_pipelined_requests_complete_in_any_order_and_all_verify() {
    // One connection, one burst mixing a long digitize, a ganged
    // capture, and short digitizes. Completions may arrive in any
    // order the server finished them; each must verify against its
    // own in-process reference.
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = PipelinedClient::connect(handle.addr()).expect("connect");

    let long_corr = client
        .submit(&DigitizeRequest::tone(77, F_TARGET, 1 << 14))
        .expect("submit long");
    let ganged_req = GangedRequest::tone(23, 2, 20e6, RECORD);
    let ganged_corr = client.submit_ganged(&ganged_req).expect("submit ganged");
    let short_corrs: Vec<u64> = (0..4)
        .map(|k| {
            client
                .submit(&DigitizeRequest::tone(400 + k, F_TARGET, 512))
                .expect("submit short")
        })
        .collect();

    let mut outcomes = std::collections::BTreeMap::new();
    while client.in_flight() > 0 {
        let (corr, outcome) = client.next_completion().expect("completion");
        assert!(
            outcomes.insert(corr, outcome).is_none(),
            "corr {corr} completed twice"
        );
    }
    assert_eq!(outcomes.len(), 6);

    match &outcomes[&long_corr] {
        PipelinedOutcome::Digitize(result) => {
            assert_eq!(result.samples, direct_record_n(77, 1 << 14).0);
        }
        other => panic!("long request: unexpected outcome {other:?}"),
    }
    match &outcomes[&ganged_corr] {
        PipelinedOutcome::Ganged(result) => {
            let reference = ganged_scenario(&ganged_req)
                .capture_tone()
                .expect("in-process capture");
            assert_eq!(result.values.len(), reference.values.len());
            for (i, (a, b)) in result
                .values
                .iter()
                .zip(reference.values.iter())
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "ganged value {i} differs");
            }
        }
        other => panic!("ganged request: unexpected outcome {other:?}"),
    }
    for (k, corr) in short_corrs.iter().enumerate() {
        match &outcomes[corr] {
            PipelinedOutcome::Digitize(result) => {
                assert_eq!(result.samples, direct_record_n(400 + k as u64, 512).0);
            }
            other => panic!("short request {k}: unexpected outcome {other:?}"),
        }
    }

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn ganged_stream_is_bit_identical_to_in_process_capture() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A background-calibrated 2-way array served over the wire must
    // match the published in-process scenario, value for value, bit
    // for bit — the service boundary adds transport, nothing else.
    let request = GangedRequest::tone(23, 2, 20e6, RECORD);
    let served = client.digitize_ganged(&request).expect("ganged digitize");

    let reference = ganged_scenario(&request)
        .capture_tone()
        .expect("in-process capture");
    assert_eq!(served.values.len(), reference.values.len());
    for (i, (a, b)) in served
        .values
        .iter()
        .zip(reference.values.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "value {i}: served {a} differs from in-process {b}"
        );
    }
    assert_eq!(served.done.f_in_hz.to_bits(), reference.f_in_hz.to_bits());
    assert_eq!(served.done.epochs_run, reference.epochs_run);
    assert_eq!(served.done.converged, reference.converged);

    // Invalid ganged requests surface as typed errors on the same
    // connection, which stays usable afterwards.
    let cases = [
        GangedRequest::tone(23, 2, 20e6, 0),
        GangedRequest::tone(23, 2, 20e6, 1000), // not a power of two
        GangedRequest::tone(23, 2, f64::NAN, RECORD),
        GangedRequest::tone(23, 2, -20e6, RECORD),
    ];
    for request in &cases {
        match client.digitize_ganged(request) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidRequest, "request {request:?}")
            }
            other => panic!("expected typed InvalidRequest, got {other:?}"),
        }
    }
    assert_eq!(client.ping(5).expect("ping after errors"), 5);

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn invalid_requests_come_back_as_typed_errors() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Out-of-bounds request fields → InvalidRequest, connection stays up.
    let cases = [
        DigitizeRequest::tone(1, F_TARGET, 0),
        DigitizeRequest::tone(1, F_TARGET, 1000), // not a power of two
        DigitizeRequest::tone(1, -5e6, RECORD),
        DigitizeRequest {
            overrides: ConfigOverrides {
                amplitude_v: Some(f64::NAN),
                ..ConfigOverrides::default()
            },
            ..DigitizeRequest::tone(1, F_TARGET, RECORD)
        },
    ];
    for request in &cases {
        match client.digitize(request) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidRequest, "request {request:?}")
            }
            other => panic!("expected typed InvalidRequest, got {other:?}"),
        }
    }

    // A request that builds-then-fails in the converter maps the typed
    // BuildAdcError onto the wire.
    let bad_rate = DigitizeRequest {
        overrides: ConfigOverrides {
            f_cr_hz: Some(-1.0),
            ..ConfigOverrides::default()
        },
        ..DigitizeRequest::tone(1, F_TARGET, RECORD)
    };
    match client.digitize(&bad_rate) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidRate),
        other => panic!("expected typed InvalidRate, got {other:?}"),
    }

    // The connection survives all of the above.
    assert_eq!(client.ping(99).expect("ping after errors"), 99);

    // A corrupt frame gets a Protocol error and a close — not a hang.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    let mut frame = encode_request(&Request::Ping { token: 1 });
    frame[0] ^= 0xFF; // destroy the magic
    raw.write_all(&frame).expect("write corrupt frame");
    match protocol::read_response(&mut raw, protocol::MAX_PAYLOAD) {
        Ok(pipeline_adc::server::Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::Protocol)
        }
        other => panic!("expected protocol error frame, got {other:?}"),
    }

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn deadlines_surface_as_timed_out() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A 1 ms budget cannot cover a 64k-sample conversion; the worker
    // must notice at a poll point and answer with TimedOut.
    let request = DigitizeRequest {
        deadline_ms: 1,
        ..DigitizeRequest::tone(7, F_TARGET, 1 << 16)
    };
    match client.digitize(&request) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TimedOut),
        other => panic!("expected TimedOut, got {other:?}"),
    }

    // An ample budget on the same connection still succeeds.
    let relaxed = DigitizeRequest {
        deadline_ms: 120_000,
        ..DigitizeRequest::tone(7, F_TARGET, RECORD)
    };
    let served = client.digitize(&relaxed).expect("relaxed deadline");
    assert_eq!(served.samples, direct_record(7).0);

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn shutdown_request_drains_and_stops_the_server() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Do real work first so the drain has something behind it.
    let served = client
        .digitize(&DigitizeRequest::tone(11, F_TARGET, RECORD))
        .expect("digitize before shutdown");
    assert_eq!(served.samples, direct_record(11).0);

    client.shutdown().expect("shutdown acknowledged");
    assert!(
        handle.is_draining(),
        "drain flag set after shutdown request"
    );

    // serve() must return on its own — bounded wait, no external kick.
    join.join().expect("server thread").expect("serve returns");

    // Dc and Ramp waveforms also decode/validate (exercise the
    // non-tone arms end-to-end on a fresh server).
    let (handle2, join2) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client2 = Client::connect(handle2.addr()).expect("connect");
    for waveform in [
        WaveformSpec::Dc { level_v: 0.25 },
        WaveformSpec::Ramp {
            from_v: -0.9,
            to_v: 0.9,
        },
    ] {
        let request = DigitizeRequest {
            waveform,
            n_samples: 1000, // non-tone records need no power of two
            ..DigitizeRequest::tone(3, F_TARGET, RECORD)
        };
        let result = client2.digitize(&request).expect("non-tone digitize");
        assert_eq!(result.samples.len(), 1000);
        assert_eq!(result.done.f_in_hz, 0.0);
    }
    client2.shutdown().expect("second shutdown");
    join2.join().expect("server thread").expect("serve returns");
}
