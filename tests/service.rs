//! End-to-end tests of the streaming digitization service: the TCP
//! boundary must add transport, not nondeterminism — records streamed
//! to concurrent clients are bit-identical to direct in-process
//! measurement at the same seed — and the failure paths (invalid
//! requests, corrupt frames, deadlines, drain) must all surface as
//! typed protocol errors, never hangs or panics.

use std::io::Write;
use std::net::TcpStream;

use pipeline_adc::pipeline::AdcConfig;
use pipeline_adc::server::protocol::{self, encode_request, Request};
use pipeline_adc::server::{
    ganged_scenario, Client, ClientError, ConfigOverrides, DigitizeRequest, ErrorCode,
    GangedRequest, Server, ServerConfig, WaveformSpec,
};
use pipeline_adc::testbench::MeasurementSession;

const RECORD: u32 = 2048;
const F_TARGET: f64 = 10e6;

/// The in-process reference: what a direct library user gets for this
/// seed, bit for bit.
fn direct_record(seed: u64) -> (Vec<u16>, f64) {
    let mut session =
        MeasurementSession::new(AdcConfig::nominal_110ms(), seed).expect("nominal builds");
    session.record_len = RECORD as usize;
    session.capture_tone(F_TARGET)
}

#[test]
fn concurrent_clients_get_bit_identical_records() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // Six concurrent clients, distinct seeds, all in flight at once.
    let seeds: Vec<u64> = (40..46).collect();
    let workers: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let result = client
                    .digitize(&DigitizeRequest::tone(seed, F_TARGET, RECORD))
                    .expect("digitize");
                (seed, result)
            })
        })
        .collect();

    for worker in workers {
        let (seed, served) = worker.join().expect("client thread");
        let (expected, f_in) = direct_record(seed);
        assert_eq!(
            served.samples, expected,
            "seed {seed}: streamed record differs from in-process record"
        );
        assert_eq!(
            served.done.f_in_hz.to_bits(),
            f_in.to_bits(),
            "seed {seed}: snapped stimulus frequency differs"
        );
    }

    // Distinct seeds are distinct dies: the records must not all match.
    let (a, _) = direct_record(seeds[0]);
    let (b, _) = direct_record(seeds[1]);
    assert_ne!(a, b, "different seeds should fabricate different dies");

    let metrics = handle.metrics().snapshot();
    assert_eq!(metrics.digitizes, seeds.len() as u64);
    assert_eq!(metrics.completed, seeds.len() as u64);
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(
        metrics.samples_streamed,
        u64::from(RECORD) * seeds.len() as u64
    );

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn ganged_stream_is_bit_identical_to_in_process_capture() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A background-calibrated 2-way array served over the wire must
    // match the published in-process scenario, value for value, bit
    // for bit — the service boundary adds transport, nothing else.
    let request = GangedRequest::tone(23, 2, 20e6, RECORD);
    let served = client.digitize_ganged(&request).expect("ganged digitize");

    let reference = ganged_scenario(&request)
        .capture_tone()
        .expect("in-process capture");
    assert_eq!(served.values.len(), reference.values.len());
    for (i, (a, b)) in served
        .values
        .iter()
        .zip(reference.values.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "value {i}: served {a} differs from in-process {b}"
        );
    }
    assert_eq!(served.done.f_in_hz.to_bits(), reference.f_in_hz.to_bits());
    assert_eq!(served.done.epochs_run, reference.epochs_run);
    assert_eq!(served.done.converged, reference.converged);

    // Invalid ganged requests surface as typed errors on the same
    // connection, which stays usable afterwards.
    let cases = [
        GangedRequest::tone(23, 2, 20e6, 0),
        GangedRequest::tone(23, 2, 20e6, 1000), // not a power of two
        GangedRequest::tone(23, 2, f64::NAN, RECORD),
        GangedRequest::tone(23, 2, -20e6, RECORD),
    ];
    for request in &cases {
        match client.digitize_ganged(request) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidRequest, "request {request:?}")
            }
            other => panic!("expected typed InvalidRequest, got {other:?}"),
        }
    }
    assert_eq!(client.ping(5).expect("ping after errors"), 5);

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn invalid_requests_come_back_as_typed_errors() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Out-of-bounds request fields → InvalidRequest, connection stays up.
    let cases = [
        DigitizeRequest::tone(1, F_TARGET, 0),
        DigitizeRequest::tone(1, F_TARGET, 1000), // not a power of two
        DigitizeRequest::tone(1, -5e6, RECORD),
        DigitizeRequest {
            overrides: ConfigOverrides {
                amplitude_v: Some(f64::NAN),
                ..ConfigOverrides::default()
            },
            ..DigitizeRequest::tone(1, F_TARGET, RECORD)
        },
    ];
    for request in &cases {
        match client.digitize(request) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::InvalidRequest, "request {request:?}")
            }
            other => panic!("expected typed InvalidRequest, got {other:?}"),
        }
    }

    // A request that builds-then-fails in the converter maps the typed
    // BuildAdcError onto the wire.
    let bad_rate = DigitizeRequest {
        overrides: ConfigOverrides {
            f_cr_hz: Some(-1.0),
            ..ConfigOverrides::default()
        },
        ..DigitizeRequest::tone(1, F_TARGET, RECORD)
    };
    match client.digitize(&bad_rate) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidRate),
        other => panic!("expected typed InvalidRate, got {other:?}"),
    }

    // The connection survives all of the above.
    assert_eq!(client.ping(99).expect("ping after errors"), 99);

    // A corrupt frame gets a Protocol error and a close — not a hang.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    let mut frame = encode_request(&Request::Ping { token: 1 });
    frame[0] ^= 0xFF; // destroy the magic
    raw.write_all(&frame).expect("write corrupt frame");
    match protocol::read_response(&mut raw, protocol::MAX_PAYLOAD) {
        Ok(pipeline_adc::server::Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::Protocol)
        }
        other => panic!("expected protocol error frame, got {other:?}"),
    }

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn deadlines_surface_as_timed_out() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A 1 ms budget cannot cover a 64k-sample conversion; the worker
    // must notice at a poll point and answer with TimedOut.
    let request = DigitizeRequest {
        deadline_ms: 1,
        ..DigitizeRequest::tone(7, F_TARGET, 1 << 16)
    };
    match client.digitize(&request) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TimedOut),
        other => panic!("expected TimedOut, got {other:?}"),
    }

    // An ample budget on the same connection still succeeds.
    let relaxed = DigitizeRequest {
        deadline_ms: 120_000,
        ..DigitizeRequest::tone(7, F_TARGET, RECORD)
    };
    let served = client.digitize(&relaxed).expect("relaxed deadline");
    assert_eq!(served.samples, direct_record(7).0);

    handle.shutdown();
    join.join().expect("server thread").expect("serve returns");
}

#[test]
fn shutdown_request_drains_and_stops_the_server() {
    let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Do real work first so the drain has something behind it.
    let served = client
        .digitize(&DigitizeRequest::tone(11, F_TARGET, RECORD))
        .expect("digitize before shutdown");
    assert_eq!(served.samples, direct_record(11).0);

    client.shutdown().expect("shutdown acknowledged");
    assert!(
        handle.is_draining(),
        "drain flag set after shutdown request"
    );

    // serve() must return on its own — bounded wait, no external kick.
    join.join().expect("server thread").expect("serve returns");

    // Dc and Ramp waveforms also decode/validate (exercise the
    // non-tone arms end-to-end on a fresh server).
    let (handle2, join2) = Server::spawn("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client2 = Client::connect(handle2.addr()).expect("connect");
    for waveform in [
        WaveformSpec::Dc { level_v: 0.25 },
        WaveformSpec::Ramp {
            from_v: -0.9,
            to_v: 0.9,
        },
    ] {
        let request = DigitizeRequest {
            waveform,
            n_samples: 1000, // non-tone records need no power of two
            ..DigitizeRequest::tone(3, F_TARGET, RECORD)
        };
        let result = client2.digitize(&request).expect("non-tone digitize");
        assert_eq!(result.samples.len(), 1000);
        assert_eq!(result.done.f_in_hz, 0.0);
    }
    client2.shutdown().expect("second shutdown");
    join2.join().expect("server thread").expect("serve returns");
}
