//! # adc-calib
//!
//! Background calibration for time-interleaved converter arrays.
//!
//! The foreground alignment in `adc-pipeline` ([`InterleavedAdc::align_channels`])
//! needs the array taken off-line and fed known DC levels, and it is blind
//! to timing skew and bandwidth mismatch — the spur mechanisms that grow
//! with input frequency. This crate closes the loop from *live conversion
//! data* instead:
//!
//! * **offset** — per-channel running means against the grand mean;
//! * **gain** — per-channel AC power against the array average;
//! * **timing skew** — a correlation estimator: each channel's deviation
//!   from the average of its neighbours, correlated with the local slope,
//!   is proportional to that channel's residual sampling-time error.
//!   The estimate drives the interleaver's digital fractional-delay
//!   corrector (cubic-Lagrange interpolation over the channel stream).
//!
//! Convergence is an observable state machine ([`CalState`]):
//! `Adapt` → `Hold` once every residual stays under its tolerance for a
//! configured number of consecutive epochs, back to `Adapt` if a residual
//! blows up (a die drifted), and `Frozen` on explicit request. Every
//! epoch returns an [`EpochReport`] so tests and campaigns can assert on
//! residual trajectories rather than eyeballing spectra.
//!
//! The engine is pure arithmetic over the records it observes — no RNG,
//! no clocks — so a seeded array calibrated by it is bit-reproducible
//! across thread counts and with tracing on or off. Epochs are
//! instrumented with `adc-trace` spans.
//!
//! [`GangedScenario`] packages the whole flow (build mismatched array →
//! align → capture a coherent tone record) behind one descriptor, so the
//! in-process tests, the campaign sweeps, and the server's ganged-digitize
//! mode all run literally the same code path — which is what makes the
//! served records bit-identical to local ones.
//!
//! ```
//! use adc_calib::{Alignment, GangedScenario};
//! use adc_pipeline::interleave::InterleaveMismatch;
//! use adc_pipeline::AdcConfig;
//!
//! # fn main() -> Result<(), adc_calib::GangedError> {
//! let scenario = GangedScenario {
//!     config: AdcConfig::ideal(110e6),
//!     channels: 2,
//!     seed: 7,
//!     mismatch: InterleaveMismatch::typical(),
//!     f_target_hz: 20e6,
//!     n_samples: 1024,
//!     alignment: Alignment::Background {
//!         epochs: 16,
//!         epoch_len: 2048,
//!     },
//! };
//! let capture = scenario.capture_tone()?;
//! assert_eq!(capture.values.len(), 1024);
//! assert!(capture.converged, "background cal settles on this mismatch");
//! # Ok(())
//! # }
//! ```
//!
//! [`InterleavedAdc::align_channels`]: adc_pipeline::interleave::InterleavedAdc::align_channels

pub mod engine;
pub mod scenario;

pub use engine::{BackgroundCalibrator, CalState, CalibConfig, CalibError, EpochReport};
pub use scenario::{Alignment, GangedCapture, GangedError, GangedScenario};
