//! The background calibration engine: estimators, corrections, and the
//! convergence state machine.
//!
//! One **epoch** is one call to [`BackgroundCalibrator::observe`] with a
//! freshly converted (and already-corrected) interleaved record. The
//! engine measures the per-channel residuals still visible in that
//! record, nudges its corrections toward cancelling them, and reports
//! what it saw. [`BackgroundCalibrator::apply_to`] pushes the current
//! corrections into the array; repeating observe→apply is the background
//! loop.
//!
//! ## Estimators
//!
//! With `x[i]` the corrected output and channel `k = i mod M`:
//!
//! * **offset** `o_k = mean_k(x) − mean(x)` — any static per-channel
//!   offset survives averaging while the (zero-mean, channel-agnostic)
//!   signal does not.
//! * **gain** `r_k = rms_k(x − mean_k) / avg_rms` — each channel sees
//!   statistically identical signal power, so AC-power ratios expose
//!   gain mismatch.
//! * **skew** — for each interior sample, the deviation from its
//!   neighbours' average `e[i] = x[i] − (x[i−1]+x[i+1])/2` contains a
//!   term `δ_k·x′(t_i)` when channel `k` samples late by `δ_k`, plus a
//!   curvature term common to all channels. Correlating `e` with the
//!   central-difference slope `s[i] = (x[i+1]−x[i−1])·f_s/2` and
//!   subtracting the cross-channel mean of the correlations removes the
//!   common part; normalising by the mean slope power turns the result
//!   into seconds: `δ̂_k = (c_k − c̄) / mean(s²)`.
//!
//! All three are driven as damped (LMS-style) updates, so estimator
//! noise averages down across epochs instead of being trusted at once.
//! For an M-way array only *relative* skew is observable from the data —
//! a common-mode shift of every sampling instant is just a retimed but
//! perfectly uniform grid — and the mean-subtraction makes the engine
//! correct exactly the observable part.

use adc_pipeline::interleave::InterleavedAdc;

/// Where the calibration loop currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalState {
    /// Corrections are being updated every epoch.
    Adapt,
    /// Residuals stayed under tolerance; corrections are held and the
    /// engine only monitors. Re-enters [`CalState::Adapt`] if a residual
    /// grows past twice its tolerance.
    Hold,
    /// Terminal: corrections pinned by [`BackgroundCalibrator::freeze`].
    Frozen,
}

/// Loop gains and convergence tolerances for the background engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibConfig {
    /// LMS gain for the offset corrections (fraction of the measured
    /// residual cancelled per epoch).
    pub offset_mu: f64,
    /// LMS gain for the gain corrections.
    pub gain_mu: f64,
    /// LMS gain for the fractional-delay corrections.
    pub skew_mu: f64,
    /// Offset residual considered converged, volts.
    pub offset_tol_v: f64,
    /// Gain-ratio residual (|r_k − 1|) considered converged.
    pub gain_tol: f64,
    /// Skew residual considered converged, seconds.
    pub skew_tol_s: f64,
    /// Consecutive quiet epochs before entering [`CalState::Hold`].
    pub hold_after: u32,
}

impl Default for CalibConfig {
    fn default() -> Self {
        Self {
            offset_mu: 0.7,
            gain_mu: 0.7,
            skew_mu: 0.7,
            offset_tol_v: 5e-5,
            gain_tol: 2e-4,
            skew_tol_s: 0.25e-12,
            hold_after: 2,
        }
    }
}

/// What one epoch of observation saw and did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Epoch counter (1 after the first observe).
    pub epoch: u64,
    /// State *after* this epoch's transition.
    pub state: CalState,
    /// Worst per-channel offset residual seen this epoch, volts.
    pub residual_offset_v: f64,
    /// Worst per-channel gain-ratio residual `|r_k − 1|` this epoch.
    pub residual_gain: f64,
    /// Worst per-channel skew residual estimate this epoch, seconds.
    pub residual_skew_s: f64,
    /// Whether corrections were updated this epoch (false in
    /// [`CalState::Hold`] and [`CalState::Frozen`]).
    pub adapted: bool,
}

impl EpochReport {
    /// True when every residual sat under its configured tolerance.
    pub fn quiet(&self, config: &CalibConfig) -> bool {
        self.residual_offset_v <= config.offset_tol_v
            && self.residual_gain <= config.gain_tol
            && self.residual_skew_s <= config.skew_tol_s
    }
}

/// Typed failure of an observe call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibError {
    /// The record is too short to estimate per-channel statistics.
    RecordTooShort {
        /// Samples supplied.
        len: usize,
        /// Minimum samples the engine needs for this channel count.
        need: usize,
    },
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RecordTooShort { len, need } => {
                write!(f, "record of {len} samples too short: need at least {need}")
            }
        }
    }
}

impl std::error::Error for CalibError {}

/// The background calibration engine for one M-way array.
///
/// Owns the digital corrections (offset volts, gain factors,
/// fractional-delay seconds) and the convergence state machine. Pure
/// arithmetic over observed records — deterministic by construction.
#[derive(Debug, Clone)]
pub struct BackgroundCalibrator {
    m: usize,
    f_s_hz: f64,
    config: CalibConfig,
    offset_corr_v: Vec<f64>,
    gain_corr: Vec<f64>,
    delay_corr_s: Vec<f64>,
    epoch: u64,
    quiet_epochs: u32,
    state: CalState,
}

impl BackgroundCalibrator {
    /// A fresh engine for an `m`-channel array sampling at
    /// `aggregate_rate_hz` total, with all corrections neutral.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or the rate is not positive.
    pub fn new(m: usize, aggregate_rate_hz: f64, config: CalibConfig) -> Self {
        assert!(m > 0, "need at least one channel");
        assert!(aggregate_rate_hz > 0.0, "aggregate rate must be positive");
        Self {
            m,
            f_s_hz: aggregate_rate_hz,
            config,
            offset_corr_v: vec![0.0; m],
            gain_corr: vec![1.0; m],
            delay_corr_s: vec![0.0; m],
            epoch: 0,
            quiet_epochs: 0,
            state: CalState::Adapt,
        }
    }

    /// Current state of the convergence machine.
    pub fn state(&self) -> CalState {
        self.state
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current additive offset corrections, volts.
    pub fn offsets_v(&self) -> &[f64] {
        &self.offset_corr_v
    }

    /// Current multiplicative gain corrections.
    pub fn gains(&self) -> &[f64] {
        &self.gain_corr
    }

    /// Current fractional-delay corrections (digital time advances),
    /// seconds.
    pub fn delays_s(&self) -> &[f64] {
        &self.delay_corr_s
    }

    /// Pins the corrections: no further epoch will change them.
    pub fn freeze(&mut self) {
        self.state = CalState::Frozen;
    }

    /// Installs the engine's current corrections into the array.
    ///
    /// # Panics
    ///
    /// Panics if the array's channel count differs from the engine's.
    pub fn apply_to(&self, array: &mut InterleavedAdc) {
        array.set_corrections(&self.offset_corr_v, &self.gain_corr, &self.delay_corr_s);
    }

    /// Observes one corrected interleaved record, measures the residual
    /// mismatch still visible in it, and (in [`CalState::Adapt`]) nudges
    /// the corrections toward cancelling it.
    ///
    /// # Errors
    ///
    /// [`CalibError::RecordTooShort`] when the record cannot support
    /// per-channel statistics (fewer than 8 samples per channel).
    pub fn observe(&mut self, record: &[f64]) -> Result<EpochReport, CalibError> {
        let m = self.m;
        let need = 8 * m;
        if record.len() < need {
            return Err(CalibError::RecordTooShort {
                len: record.len(),
                need,
            });
        }
        let _span = adc_trace::span_with("calib-epoch", self.epoch);

        // Per-channel means and the grand mean → offset residuals.
        let mut means = vec![0.0_f64; m];
        let mut counts = vec![0.0_f64; m];
        for (i, &x) in record.iter().enumerate() {
            means[i % m] += x;
            counts[i % m] += 1.0;
        }
        for (mean, count) in means.iter_mut().zip(&counts) {
            *mean /= count;
        }
        let grand = means.iter().sum::<f64>() / m as f64;
        let offsets: Vec<f64> = means.iter().map(|&mk| mk - grand).collect();

        // Per-channel AC power → gain-ratio residuals.
        let mut power = vec![0.0_f64; m];
        for (i, &x) in record.iter().enumerate() {
            let d = x - means[i % m];
            power[i % m] += d * d;
        }
        let mut rms = vec![0.0_f64; m];
        for k in 0..m {
            rms[k] = (power[k] / counts[k]).sqrt();
        }
        let avg_rms = rms.iter().sum::<f64>() / m as f64;
        let ratios: Vec<f64> = rms
            .iter()
            .map(|&r| if avg_rms > 0.0 { r / avg_rms } else { 1.0 })
            .collect();

        // Skew correlator over mean-subtracted data.
        let mut corr = vec![0.0_f64; m];
        let mut corr_n = vec![0.0_f64; m];
        let mut slope_pow = 0.0_f64;
        let mut slope_n = 0.0_f64;
        let half_fs = 0.5 * self.f_s_hz;
        for i in 1..record.len() - 1 {
            let prev = record[i - 1] - means[(i - 1) % m];
            let here = record[i] - means[i % m];
            let next = record[i + 1] - means[(i + 1) % m];
            let e = here - 0.5 * (prev + next);
            let s = (next - prev) * half_fs;
            corr[i % m] += e * s;
            corr_n[i % m] += 1.0;
            slope_pow += s * s;
            slope_n += 1.0;
        }
        for k in 0..m {
            if corr_n[k] > 0.0 {
                corr[k] /= corr_n[k];
            }
        }
        let corr_mean = corr.iter().sum::<f64>() / m as f64;
        slope_pow /= slope_n;
        let skews: Vec<f64> = corr
            .iter()
            .map(|&c| {
                if slope_pow > 0.0 {
                    (c - corr_mean) / slope_pow
                } else {
                    0.0
                }
            })
            .collect();

        let worst = |v: &[f64]| v.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()));
        let residual_offset_v = worst(&offsets);
        let residual_gain = ratios
            .iter()
            .fold(0.0_f64, |acc, &r| acc.max((r - 1.0).abs()));
        let residual_skew_s = worst(&skews);

        let adapted = self.state == CalState::Adapt;
        if adapted {
            for k in 0..m {
                // The offset correction is applied before the gain
                // multiplier, so refer the post-gain residual back.
                self.offset_corr_v[k] -= self.config.offset_mu * offsets[k] / self.gain_corr[k];
                if ratios[k] > 0.0 {
                    self.gain_corr[k] *=
                        1.0 - self.config.gain_mu + self.config.gain_mu / ratios[k];
                }
                // A channel sampling late by δ needs a digital advance of
                // −δ; the estimate is the *residual* δ, so step against it.
                self.delay_corr_s[k] -= self.config.skew_mu * skews[k];
            }
        }

        self.epoch += 1;
        let mut report = EpochReport {
            epoch: self.epoch,
            state: self.state,
            residual_offset_v,
            residual_gain,
            residual_skew_s,
            adapted,
        };
        match self.state {
            CalState::Adapt => {
                if report.quiet(&self.config) {
                    self.quiet_epochs += 1;
                    if self.quiet_epochs >= self.config.hold_after {
                        self.state = CalState::Hold;
                    }
                } else {
                    self.quiet_epochs = 0;
                }
            }
            CalState::Hold => {
                let blown = residual_offset_v > 2.0 * self.config.offset_tol_v
                    || residual_gain > 2.0 * self.config.gain_tol
                    || residual_skew_s > 2.0 * self.config.skew_tol_s;
                if blown {
                    self.state = CalState::Adapt;
                    self.quiet_epochs = 0;
                }
            }
            CalState::Frozen => {}
        }
        report.state = self.state;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_pipeline::AdcConfig;

    fn tone(f_in: f64) -> impl Fn(f64) -> f64 + Copy {
        move |t: f64| 0.9 * (2.0 * std::f64::consts::PI * f_in * t).sin()
    }

    /// One closed-loop epoch: convert, observe, push corrections back.
    fn run_epochs(
        ilv: &mut InterleavedAdc,
        cal: &mut BackgroundCalibrator,
        f_in: f64,
        epoch_len: usize,
        epochs: usize,
    ) -> Vec<EpochReport> {
        let wave = tone(f_in);
        let mut reports = Vec::new();
        for _ in 0..epochs {
            let record = ilv.convert_waveform(&wave, epoch_len);
            reports.push(cal.observe(&record).expect("record long enough"));
            cal.apply_to(ilv);
        }
        reports
    }

    #[test]
    fn record_too_short_is_a_typed_error() {
        let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
        let err = cal.observe(&[0.0; 15]).unwrap_err();
        assert_eq!(err, CalibError::RecordTooShort { len: 15, need: 16 });
    }

    #[test]
    fn converges_on_injected_offset_gain_and_skew() {
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 4e-3, 1.01);
        ilv.inject_skew(1, 15e-12);
        let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let reports = run_epochs(&mut ilv, &mut cal, f_in, n, 20);
        let last = reports.last().unwrap();
        assert_eq!(last.state, CalState::Hold, "reports: {reports:#?}");
        // The engine's corrections cancel the injections: channel 1's
        // delay correction lands near −15 ps.
        assert!(
            (cal.delays_s()[1] - cal.delays_s()[0] + 15e-12).abs() < 1e-12,
            "delays {:?}",
            cal.delays_s()
        );
    }

    #[test]
    fn converged_array_recovers_matched_sndr() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        // Matched reference.
        let mut matched = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        let reference = analyze_tone(
            &matched.convert_waveform(&tone(f_in), n),
            &ToneAnalysisConfig::coherent(),
        )
        .unwrap();
        // Mismatched array, background-calibrated from live data alone.
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 4e-3, 1.01);
        ilv.inject_skew(1, 15e-12);
        let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
        run_epochs(&mut ilv, &mut cal, f_in, n, 20);
        let healed = analyze_tone(
            &ilv.convert_waveform(&tone(f_in), n),
            &ToneAnalysisConfig::coherent(),
        )
        .unwrap();
        assert!(
            healed.sndr_db > reference.sndr_db - 1.0,
            "healed {} dB vs matched {} dB",
            healed.sndr_db,
            reference.sndr_db
        );
    }

    #[test]
    fn hold_reenters_adapt_when_a_die_drifts() {
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 2e-3, 1.0);
        let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
        let n = 4096;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        let reports = run_epochs(&mut ilv, &mut cal, f_in, n, 12);
        assert_eq!(reports.last().unwrap().state, CalState::Hold);
        // Drift: a fresh 3 mV offset appears on channel 0. The next
        // epochs must notice and re-adapt. inject_mismatch overwrites the
        // digital trim, which is exactly what an analog drift looks like
        // to the loop.
        let healed_offset = cal.offsets_v()[0];
        ilv.inject_mismatch(0, healed_offset + 3e-3, 1.0);
        let wave = tone(f_in);
        let record = ilv.convert_waveform(&wave, n);
        let report = cal.observe(&record).unwrap();
        assert_eq!(report.state, CalState::Adapt, "drift re-arms the loop");
        cal.apply_to(&mut ilv);
        // Note apply_to reinstalls the engine's trims, replacing the
        // "drifted" ones — so from here the loop would re-converge.
    }

    #[test]
    fn frozen_engine_never_changes_corrections() {
        let mut ilv = InterleavedAdc::build(&AdcConfig::ideal(110e6), 2, 220e6, 1).unwrap();
        ilv.inject_mismatch(1, 4e-3, 1.0);
        let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
        let n = 2048;
        let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
        run_epochs(&mut ilv, &mut cal, f_in, n, 3);
        cal.freeze();
        let before = cal.offsets_v().to_vec();
        let wave = tone(f_in);
        let record = ilv.convert_waveform(&wave, n);
        let report = cal.observe(&record).unwrap();
        assert!(!report.adapted);
        assert_eq!(report.state, CalState::Frozen);
        assert_eq!(cal.offsets_v(), before.as_slice());
    }

    #[test]
    fn engine_is_deterministic_across_reruns() {
        let run = || {
            let mut ilv = InterleavedAdc::build_with_mismatch(
                &AdcConfig::nominal_110ms(),
                2,
                220e6,
                7,
                &adc_pipeline::interleave::InterleaveMismatch::typical(),
            )
            .unwrap();
            let mut cal = BackgroundCalibrator::new(2, 220e6, CalibConfig::default());
            let n = 2048;
            let (f_in, _) = adc_spectral::window::coherent_frequency(220e6, n, 20e6);
            run_epochs(&mut ilv, &mut cal, f_in, n, 6);
            (
                cal.offsets_v()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                cal.gains().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                cal.delays_s()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
