//! The ganged-capture scenario: one descriptor, one code path, shared by
//! in-process tests, campaign sweeps, and the server's ganged-digitize
//! mode — which is what makes served records bit-identical to local runs
//! at the same seed.

use adc_pipeline::interleave::{InterleaveMismatch, InterleavedAdc};
use adc_pipeline::{AdcConfig, BuildAdcError};

use crate::engine::{BackgroundCalibrator, CalState, CalibConfig, CalibError};

/// How the array's channels are aligned before the capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alignment {
    /// No alignment at all: the raw mismatch spurs on display.
    Raw,
    /// Foreground DC alignment ([`InterleavedAdc::align_channels`]) —
    /// cures offset and gain, blind to timing and bandwidth.
    Foreground {
        /// Conversions averaged per DC measurement point.
        averages: u32,
    },
    /// Background calibration from live conversion data: the loop runs
    /// until it reaches [`CalState::Hold`] or the epoch budget is spent,
    /// then the record is captured with the converged corrections.
    Background {
        /// Maximum calibration epochs before capturing regardless.
        epochs: u32,
        /// Samples converted per calibration epoch.
        epoch_len: u32,
    },
}

/// A complete ganged-capture description: everything needed to rebuild
/// the same array and record anywhere. Two equal scenarios produce
/// bit-identical [`GangedCapture::values`], whichever process runs them.
#[derive(Debug, Clone, PartialEq)]
pub struct GangedScenario {
    /// Per-channel converter configuration; each channel runs at
    /// `config.f_cr_hz`, so the aggregate rate is `channels ×` that.
    pub config: AdcConfig,
    /// Channel count (M).
    pub channels: u32,
    /// Array fabrication seed (channel `k` is die `seed + k`; skew and
    /// bandwidth draws derive from it too).
    pub seed: u64,
    /// Array-level mismatch magnitudes.
    pub mismatch: InterleaveMismatch,
    /// Requested stimulus frequency; snapped to coherent sampling for
    /// the capture record.
    pub f_target_hz: f64,
    /// Capture record length.
    pub n_samples: u32,
    /// Channel alignment performed before the capture.
    pub alignment: Alignment,
}

/// What a ganged capture produced.
#[derive(Debug, Clone, PartialEq)]
pub struct GangedCapture {
    /// The interleaved, corrected record (reconstructed volts).
    pub values: Vec<f64>,
    /// The coherently snapped stimulus frequency, hertz.
    pub f_in_hz: f64,
    /// Calibration epochs actually run (zero unless
    /// [`Alignment::Background`]).
    pub epochs_run: u32,
    /// Whether the background loop reached [`CalState::Hold`] within its
    /// epoch budget (true for the non-background alignments, which have
    /// nothing to converge).
    pub converged: bool,
}

/// Typed failure of a ganged capture.
#[derive(Debug, Clone, PartialEq)]
pub enum GangedError {
    /// The per-channel converter failed to build.
    Build(BuildAdcError),
    /// The calibration engine rejected an epoch record.
    Calib(CalibError),
    /// The scenario itself is malformed (zero channels or samples,
    /// non-finite frequency).
    InvalidScenario(&'static str),
}

impl std::fmt::Display for GangedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "array build failed: {e}"),
            Self::Calib(e) => write!(f, "background calibration failed: {e}"),
            Self::InvalidScenario(why) => write!(f, "invalid scenario: {why}"),
        }
    }
}

impl std::error::Error for GangedError {}

impl From<BuildAdcError> for GangedError {
    fn from(e: BuildAdcError) -> Self {
        Self::Build(e)
    }
}

impl From<CalibError> for GangedError {
    fn from(e: CalibError) -> Self {
        Self::Calib(e)
    }
}

impl GangedScenario {
    /// Aggregate sample rate of the described array, hertz.
    pub fn aggregate_rate_hz(&self) -> f64 {
        self.config.f_cr_hz * self.channels as f64
    }

    /// Builds the array, aligns it as requested, and captures one
    /// coherent tone record. Deterministic in the scenario alone.
    ///
    /// # Errors
    ///
    /// [`GangedError::InvalidScenario`] for nonsense parameters,
    /// [`GangedError::Build`] if the dies cannot be fabricated,
    /// [`GangedError::Calib`] if a background epoch record is unusable.
    pub fn capture_tone(&self) -> Result<GangedCapture, GangedError> {
        if self.channels == 0 {
            return Err(GangedError::InvalidScenario("zero channels"));
        }
        if self.n_samples == 0 {
            return Err(GangedError::InvalidScenario("zero samples"));
        }
        if !self.f_target_hz.is_finite() || self.f_target_hz <= 0.0 {
            return Err(GangedError::InvalidScenario("stimulus frequency"));
        }
        let _span = adc_trace::span_with("ganged-capture", self.seed);
        let m = self.channels as usize;
        let rate = self.aggregate_rate_hz();
        let mut ilv =
            InterleavedAdc::build_with_mismatch(&self.config, m, rate, self.seed, &self.mismatch)?;
        let amplitude = 0.9 * self.config.v_ref_v;
        let mut epochs_run = 0_u32;
        let mut converged = true;
        match self.alignment {
            Alignment::Raw => {}
            Alignment::Foreground { averages } => {
                let _s = adc_trace::span("ganged-foreground");
                ilv.align_channels(averages as usize);
            }
            Alignment::Background { epochs, epoch_len } => {
                let _s = adc_trace::span("ganged-background");
                converged = false;
                let mut cal = BackgroundCalibrator::new(m, rate, CalibConfig::default());
                let epoch_len = epoch_len as usize;
                let (f_cal, _) =
                    adc_spectral::window::coherent_frequency(rate, epoch_len, self.f_target_hz);
                let wave = move |t: f64| amplitude * (2.0 * std::f64::consts::PI * f_cal * t).sin();
                for _ in 0..epochs {
                    let record = ilv.convert_waveform(&wave, epoch_len);
                    let report = cal.observe(&record)?;
                    cal.apply_to(&mut ilv);
                    epochs_run += 1;
                    if report.state == CalState::Hold {
                        converged = true;
                        break;
                    }
                }
            }
        }
        let n = self.n_samples as usize;
        let (f_in, _) = adc_spectral::window::coherent_frequency(rate, n, self.f_target_hz);
        let wave = move |t: f64| amplitude * (2.0 * std::f64::consts::PI * f_in * t).sin();
        let values = {
            let _s = adc_trace::span("ganged-record");
            ilv.convert_waveform(&wave, n)
        };
        Ok(GangedCapture {
            values,
            f_in_hz: f_in,
            epochs_run,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(alignment: Alignment) -> GangedScenario {
        GangedScenario {
            config: AdcConfig::nominal_110ms(),
            channels: 2,
            seed: 7,
            mismatch: InterleaveMismatch::typical(),
            f_target_hz: 20e6,
            n_samples: 2048,
            alignment,
        }
    }

    #[test]
    fn equal_scenarios_capture_bit_identical_records() {
        let s = scenario(Alignment::Background {
            epochs: 12,
            epoch_len: 2048,
        });
        let a = s.capture_tone().unwrap();
        let b = s.clone().capture_tone().unwrap();
        let bits = |r: &[f64]| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.values), bits(&b.values));
        assert_eq!(a.f_in_hz.to_bits(), b.f_in_hz.to_bits());
        assert_eq!(a.epochs_run, b.epochs_run);
    }

    #[test]
    fn background_beats_raw_on_a_mismatched_array() {
        use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
        let raw = scenario(Alignment::Raw).capture_tone().unwrap();
        let cal = scenario(Alignment::Background {
            epochs: 16,
            epoch_len: 4096,
        })
        .capture_tone()
        .unwrap();
        assert!(cal.converged, "ran {} epochs", cal.epochs_run);
        let sndr = |r: &[f64]| {
            analyze_tone(r, &ToneAnalysisConfig::coherent())
                .unwrap()
                .sndr_db
        };
        assert!(
            sndr(&cal.values) > sndr(&raw.values) + 3.0,
            "background cal should clearly beat raw: {} vs {}",
            sndr(&cal.values),
            sndr(&raw.values)
        );
    }

    #[test]
    fn invalid_scenarios_are_typed_errors() {
        let mut s = scenario(Alignment::Raw);
        s.channels = 0;
        assert!(matches!(
            s.capture_tone(),
            Err(GangedError::InvalidScenario("zero channels"))
        ));
        let mut s = scenario(Alignment::Raw);
        s.n_samples = 0;
        assert!(matches!(
            s.capture_tone(),
            Err(GangedError::InvalidScenario("zero samples"))
        ));
        let mut s = scenario(Alignment::Raw);
        s.f_target_hz = f64::NAN;
        assert!(matches!(
            s.capture_tone(),
            Err(GangedError::InvalidScenario(_))
        ));
    }
}
