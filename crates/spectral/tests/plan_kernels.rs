//! Kernel-level validation of the planned FFT paths.
//!
//! The planned kernels (precomputed bit-reversal swaps, shared twiddle
//! tables, real-input packing) are the spectral hot path since the
//! DSP-kernel rework; these tests pin them against slow reference
//! implementations that share no code with the plan machinery:
//!
//! * the naive O(n²) direct DFT,
//! * the complex FFT applied to a real signal widened to complex,
//! * Parseval's theorem (energy conservation),
//! * the Goertzel single-bin recursion.

use adc_spectral::fft::{fft_in_place, fft_real, fft_real_into};
use adc_spectral::plan::SpectralScratch;
use adc_spectral::{goertzel_bin, Complex64};

/// Deterministic broadband test signal: tone + quadratic-chirp leakage
/// + LCG dither, so every bin carries non-trivial energy.
fn test_signal(n: usize) -> Vec<f64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dither = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let t = i as f64 / n as f64;
            (std::f64::consts::TAU * 17.0 * t).sin()
                + 0.25 * (std::f64::consts::TAU * (3.0 * t + 40.0 * t * t)).cos()
                + 0.01 * dither
        })
        .collect()
}

/// Naive O(n²) direct DFT — the reference the fast kernels answer to.
fn direct_dft(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::new(0.0, 0.0);
            for (i, &x) in signal.iter().enumerate() {
                let angle = -std::f64::consts::TAU * (k as f64) * (i as f64) / n as f64;
                acc += Complex64::new(x * angle.cos(), x * angle.sin());
            }
            acc
        })
        .collect()
}

fn max_abs_error(got: &[Complex64], want: &[Complex64]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| ((g.re - w.re).powi(2) + (g.im - w.im).powi(2)).sqrt())
        .fold(0.0, f64::max)
}

#[test]
fn planned_fft_matches_direct_dft_across_sizes() {
    for n in [8usize, 32, 128, 512, 2048, 8192] {
        let signal = test_signal(n);
        let got = fft_real(&signal).unwrap();
        let want = direct_dft(&signal);
        // Direct-DFT recurrence-free angles are themselves only good to
        // ~n·eps; scale the bound with signal energy and size.
        let scale: f64 = signal.iter().map(|x| x.abs()).sum();
        let tol = 1e-13 * scale * (n as f64).log2();
        assert!(
            max_abs_error(&got, &want) < tol,
            "n={n}: err {} tol {tol}",
            max_abs_error(&got, &want)
        );
    }
}

#[test]
fn real_packed_fft_agrees_with_widened_complex_fft() {
    for n in [16usize, 256, 4096] {
        let signal = test_signal(n);
        let packed = fft_real(&signal).unwrap();
        let mut widened: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        fft_in_place(&mut widened).unwrap();
        let scale: f64 = signal.iter().map(|x| x.abs()).sum();
        let tol = 1e-14 * scale * (n as f64).log2();
        assert!(
            max_abs_error(&packed, &widened) < tol,
            "n={n}: err {}",
            max_abs_error(&packed, &widened)
        );
    }
}

#[test]
fn parseval_energy_is_conserved() {
    for n in [64usize, 1024, 8192] {
        let signal = test_signal(n);
        let spectrum = fft_real(&signal).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spectrum
            .iter()
            .map(|z| (z.re * z.re + z.im * z.im) / n as f64)
            .sum();
        assert!(
            (time_energy - freq_energy).abs() < 1e-9 * time_energy,
            "n={n}: time {time_energy} freq {freq_energy}"
        );
    }
}

#[test]
fn goertzel_agrees_with_the_fft_tone_bin() {
    let n = 4096usize;
    let k = 479usize;
    let signal: Vec<f64> = (0..n)
        .map(|i| (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).sin())
        .collect();
    let spectrum = fft_real(&signal).unwrap();
    for bin in [k, k - 3, 2 * k] {
        let g = goertzel_bin(&signal, bin);
        let f = spectrum[bin];
        let err = ((g.re - f.re).powi(2) + (g.im - f.im).powi(2)).sqrt();
        assert!(err < 1e-7 * n as f64 / 2.0, "bin {bin}: err {err}");
    }
}

#[test]
fn fft_real_into_reuses_buffers_and_matches_the_allocating_api() {
    let mut scratch = SpectralScratch::new();
    let mut spectrum = Vec::new();
    for n in [1024usize, 4096, 1024] {
        let signal = test_signal(n);
        fft_real_into(&signal, &mut scratch, &mut spectrum).unwrap();
        let want = fft_real(&signal).unwrap();
        assert_eq!(spectrum.len(), want.len());
        for (a, b) in spectrum.iter().zip(&want) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n}");
        }
    }
}
