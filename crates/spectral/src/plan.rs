//! FFT execution plans: precomputed bit-reversal and twiddle tables.
//!
//! The table-free transform in [`crate::fft`] regenerated every twiddle
//! by complex recurrence on every call — one extra complex multiply per
//! butterfly and a long dependency chain. A [`FftPlan`] hoists all of
//! that out of the hot loop, FFTW-style but radix-2 only:
//!
//! * the bit-reversal permutation is precomputed as a swap list;
//! * one table of `n/2` forward twiddles `W_n^k = e^{-2πik/n}` serves
//!   every butterfly pass (pass `len` reads it at stride `n/len`) *and*
//!   the real-input untangle step of a length-`n` real transform;
//! * plans are cached per power-of-two length behind a deterministic
//!   [`BTreeMap`] (iteration order and contents depend only on the
//!   lengths requested, never on hashing or timing), so planning cost
//!   is paid once per process per length.
//!
//! Twiddles are evaluated directly (`cis(-2πk/n)`), not by recurrence,
//! which *improves* accuracy over the previous implementation; the
//! kernel-change policy in DESIGN.md §12 covers the resulting
//! sub-`1e-12` numeric shifts.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::complex::Complex64;
use crate::fft::FftError;

/// A reusable radix-2 transform plan for one power-of-two length.
///
/// Obtain plans through [`plan`]; they are immutable and cheaply
/// shareable (`Arc`). Executing a plan performs no allocation.
#[derive(Debug, Clone)]
pub struct FftPlan {
    /// Transform length (a nonzero power of two).
    n: usize,
    /// `(i, j)` pairs with `j > i` swapped by the bit-reversal pass.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles `W_n^k = e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for length `n` (caller guarantees a power of two).
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        assert!(
            n - 1 <= u32::MAX as usize,
            "fft length {n} exceeds plan index range"
        );
        let mut swaps = Vec::new();
        if n > 1 {
            let shift = n.leading_zeros() + 1;
            for i in 0..n {
                let j = i.reverse_bits() >> shift;
                if j > i {
                    swaps.push((i as u32, j as u32));
                }
            }
        }
        let ang = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..n / 2).map(|k| Complex64::cis(ang * k as f64)).collect();
        Self { n, swaps, twiddles }
    }

    /// The transform length this plan executes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans exist only for nonzero lengths.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward twiddle `W_n^k = e^{-2πik/n}` for `k in 0..=n/2`.
    ///
    /// The table stores the first half; `k = n/2` is exactly −1.
    pub(crate) fn twiddle(&self, k: usize) -> Complex64 {
        if k == self.n / 2 {
            Complex64::new(-1.0, 0.0)
        } else {
            self.twiddles[k]
        }
    }

    /// Forward FFT of `data`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::PlanLengthMismatch`] if `data.len()` differs
    /// from the planned length.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check(data.len())?;
        self.execute(data, false);
        Ok(())
    }

    /// Inverse FFT of `data`, in place, normalised by `1/n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::PlanLengthMismatch`] if `data.len()` differs
    /// from the planned length.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check(data.len())?;
        self.execute(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    fn check(&self, data_len: usize) -> Result<(), FftError> {
        if data_len == self.n {
            Ok(())
        } else {
            Err(FftError::PlanLengthMismatch {
                plan: self.n,
                data: data_len,
            })
        }
    }

    /// Bit-reversal pass followed by the table-driven butterflies.
    fn execute(&self, data: &mut [Complex64], inverse: bool) {
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let w = if inverse { tw.conj() } else { tw };
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

/// The process-wide plan cache, keyed by transform length.
///
/// A `BTreeMap` (not a hash map) keeps contents and iteration order a
/// pure function of the lengths requested — the same determinism rule
/// adc-lint enforces across this crate. Poisoning is survivable because
/// plans are immutable once inserted.
static PLAN_CACHE: Mutex<BTreeMap<usize, Arc<FftPlan>>> = Mutex::new(BTreeMap::new());

/// Returns the cached plan for length `n`, building it on first use.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if `n` is zero or not a
/// power of two.
pub fn plan(n: usize) -> Result<Arc<FftPlan>, FftError> {
    if n == 0 || !n.is_power_of_two() {
        return Err(FftError::NonPowerOfTwoLength(n));
    }
    if let Some(cached) = PLAN_CACHE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&n)
    {
        return Ok(Arc::clone(cached));
    }
    // Build outside the lock; first insertion wins on a race.
    let fresh = Arc::new(FftPlan::new(n));
    let mut cache = PLAN_CACHE.lock().unwrap_or_else(PoisonError::into_inner);
    Ok(Arc::clone(cache.entry(n).or_insert(fresh)))
}

/// Reusable scratch buffers for the `_into` spectral APIs.
///
/// One instance per analysis thread amortises every intermediate buffer
/// of [`crate::fft::fft_real_into`], [`crate::fft::power_spectrum_one_sided_into`]
/// and [`crate::metrics::analyze_tone_with`] — a full tone analysis of a
/// warm scratch performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SpectralScratch {
    /// Packed half-length complex buffer for real-input transforms.
    pub(crate) packed: Vec<Complex64>,
    /// Windowed copy of the input record.
    pub(crate) windowed: Vec<f64>,
    /// One-sided power spectrum.
    pub(crate) power: Vec<f64>,
    /// Per-bin ownership tags used by tone analysis.
    pub(crate) owner: Vec<u8>,
    /// Prefix sums over the power spectrum (SFDR window search).
    pub(crate) prefix: Vec<f64>,
}

impl SpectralScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_bad_lengths() {
        assert_eq!(plan(0).unwrap_err(), FftError::NonPowerOfTwoLength(0));
        assert_eq!(plan(12).unwrap_err(), FftError::NonPowerOfTwoLength(12));
        assert!(plan(1).is_ok());
        assert!(plan(1 << 14).is_ok());
    }

    #[test]
    fn plans_are_cached_and_shared() {
        let a = plan(256).unwrap();
        let b = plan(256).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        assert_eq!(a.len(), 256);
        assert!(!a.is_empty());
    }

    #[test]
    fn forward_checks_data_length() {
        let p = plan(16).unwrap();
        let mut wrong = vec![Complex64::ZERO; 8];
        assert_eq!(
            p.forward(&mut wrong).unwrap_err(),
            FftError::PlanLengthMismatch { plan: 16, data: 8 }
        );
    }

    #[test]
    fn nyquist_twiddle_is_exactly_minus_one() {
        let p = plan(8).unwrap();
        let w = p.twiddle(4);
        assert_eq!((w.re, w.im), (-1.0, 0.0));
    }

    #[test]
    fn length_one_plan_is_identity() {
        let p = plan(1).unwrap();
        let mut data = vec![Complex64::new(3.5, -1.25)];
        p.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
        p.inverse(&mut data).unwrap();
        assert_eq!(data[0], Complex64::new(3.5, -1.25));
    }
}
