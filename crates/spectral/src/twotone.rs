//! Two-tone intermodulation analysis.
//!
//! The paper characterises single-tone linearity; the natural extension —
//! and the test every IP-block datasheet also quotes — is two-tone
//! intermodulation: drive the converter with `f1 + f2`, look for products
//! at `f2 − f1`, `f1 + f2` (IMD2) and `2f1 − f2`, `2f2 − f1` (IMD3). The
//! odd-order input-switch nonlinearity that bends Fig. 6's SFDR shows up
//! here as IMD3.

use crate::fft::{power_spectrum_one_sided, FftError};

/// One intermodulation product reading.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImdProduct {
    /// Human-readable identity, e.g. "2f1-f2".
    pub label: String,
    /// The (aliased) bin the product folded to.
    pub bin: usize,
    /// Power relative to one tone, dBc (negative).
    pub dbc: f64,
}

/// Result of a two-tone analysis.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TwoToneAnalysis {
    /// Record length.
    pub n: usize,
    /// Bin of tone 1.
    pub f1_bin: usize,
    /// Bin of tone 2.
    pub f2_bin: usize,
    /// Power of tone 1 (input units squared).
    pub tone1_power: f64,
    /// Power of tone 2.
    pub tone2_power: f64,
    /// Worst second-order product, dBc.
    pub imd2_dbc: f64,
    /// Worst third-order product, dBc.
    pub imd3_dbc: f64,
    /// All individual products.
    pub products: Vec<ImdProduct>,
}

/// Folds a (possibly negative or super-Nyquist) product frequency index
/// into the one-sided spectrum.
fn fold(raw: i64, n: usize) -> usize {
    let n_i = n as i64;
    let mut m = raw.rem_euclid(n_i);
    if m > n_i / 2 {
        m = n_i - m;
    }
    m as usize
}

/// Analyzes a two-tone record given the two (coherent) tone bins.
///
/// # Errors
///
/// Returns [`FftError`] for a non-power-of-two record.
///
/// # Panics
///
/// Panics if the bins coincide, are DC, or exceed Nyquist.
pub fn analyze_two_tone(
    signal: &[f64],
    f1_bin: usize,
    f2_bin: usize,
) -> Result<TwoToneAnalysis, FftError> {
    let n = signal.len();
    let ps = power_spectrum_one_sided(signal)?;
    let nyquist = n / 2;
    assert!(f1_bin != f2_bin, "tones must be distinct");
    assert!(
        f1_bin > 0 && f2_bin > 0 && f1_bin <= nyquist && f2_bin <= nyquist,
        "tone bins out of range"
    );

    let guard = 1usize;
    let tone_power = |bin: usize| -> f64 {
        let lo = bin.saturating_sub(guard);
        let hi = (bin + guard).min(nyquist);
        (lo..=hi).map(|i| ps[i]).sum()
    };
    let tone1_power = tone_power(f1_bin);
    let tone2_power = tone_power(f2_bin);
    let ref_power = tone1_power.max(tone2_power);

    let (a, b) = (f1_bin as i64, f2_bin as i64);
    let candidates: [(&'static str, i64, u8); 6] = [
        ("f2-f1", b - a, 2),
        ("f1+f2", a + b, 2),
        ("2f1-f2", 2 * a - b, 3),
        ("2f2-f1", 2 * b - a, 3),
        ("2f1+f2", 2 * a + b, 3),
        ("2f2+f1", 2 * b + a, 3),
    ];

    let mut products = Vec::new();
    let (mut imd2, mut imd3) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for (label, raw, order) in candidates {
        let bin = fold(raw, n);
        // Skip products that land on a tone (they are indistinguishable).
        if bin.abs_diff(f1_bin) <= guard || bin.abs_diff(f2_bin) <= guard || bin <= guard {
            continue;
        }
        let p = tone_power(bin);
        let dbc = if p > 0.0 && ref_power > 0.0 {
            10.0 * (p / ref_power).log10()
        } else {
            f64::NEG_INFINITY
        };
        if order == 2 {
            imd2 = imd2.max(dbc);
        } else {
            imd3 = imd3.max(dbc);
        }
        products.push(ImdProduct {
            label: label.to_string(),
            bin,
            dbc,
        });
    }

    Ok(TwoToneAnalysis {
        n,
        f1_bin,
        f2_bin,
        tone1_power,
        tone2_power,
        imd2_dbc: imd2,
        imd3_dbc: imd3,
        products,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, k: usize, a: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect()
    }

    fn add(a: &mut [f64], b: &[f64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }

    #[test]
    fn clean_two_tone_has_no_imd() {
        let n = 4096;
        let mut sig = tone(n, 401, 0.45);
        add(&mut sig, &tone(n, 449, 0.45));
        let a = analyze_two_tone(&sig, 401, 449).unwrap();
        assert!(a.imd2_dbc < -200.0, "imd2 {}", a.imd2_dbc);
        assert!(a.imd3_dbc < -200.0, "imd3 {}", a.imd3_dbc);
        assert!((a.tone1_power - 0.45f64.powi(2) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn injected_imd3_is_read_back() {
        let n = 4096;
        let (k1, k2) = (401, 449);
        let mut sig = tone(n, k1, 0.45);
        add(&mut sig, &tone(n, k2, 0.45));
        // Inject 2f1−f2 = 353 at −60 dBc relative to a tone.
        let level = 0.45 * 10f64.powf(-60.0 / 20.0);
        add(&mut sig, &tone(n, 2 * k1 - k2, level));
        let a = analyze_two_tone(&sig, k1, k2).unwrap();
        assert!((a.imd3_dbc + 60.0).abs() < 0.3, "imd3 {}", a.imd3_dbc);
        let p = a.products.iter().find(|p| p.label == "2f1-f2").unwrap();
        assert_eq!(p.bin, 353);
    }

    #[test]
    fn injected_imd2_is_read_back() {
        let n = 4096;
        let (k1, k2) = (401, 449);
        let mut sig = tone(n, k1, 0.45);
        add(&mut sig, &tone(n, k2, 0.45));
        let level = 0.45 * 10f64.powf(-70.0 / 20.0);
        add(&mut sig, &tone(n, k2 - k1, level)); // 48
        let a = analyze_two_tone(&sig, k1, k2).unwrap();
        assert!((a.imd2_dbc + 70.0).abs() < 0.3, "imd2 {}", a.imd2_dbc);
    }

    #[test]
    fn products_fold_across_nyquist() {
        let n = 4096;
        // 2f2+f1 = 2·1800 + 401 = 4001 -> folds to 4096-4001 = 95.
        assert_eq!(fold(2 * 1800 + 401, n), 95);
        assert_eq!(fold(-47, n), 47);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_identical_tones() {
        let sig = tone(1024, 100, 1.0);
        let _ = analyze_two_tone(&sig, 100, 100);
    }
}
