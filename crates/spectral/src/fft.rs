//! Iterative in-place radix-2 FFT.
//!
//! Written from scratch (no DSP crates in the offline dependency set).
//! Decimation-in-time with a bit-reversal permutation followed by
//! `log2(n)` butterfly passes. All transforms execute through the
//! precomputed plans of [`crate::plan`] (direct-evaluated twiddle
//! tables, cached per length), which keeps the accuracy comfortably
//! below the −120 dBc floor needed to measure a 12-bit converter.
//! Real-input transforms pack `n` reals into an `n/2` complex transform
//! and untangle, roughly halving the work per record; the `_into`
//! variants reuse caller buffers so the analysis hot path does not
//! allocate per capture.

use crate::complex::Complex64;
use crate::plan::{plan, SpectralScratch};

/// Errors returned by FFT planning/execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The transform length is not a power of two (or is zero).
    NonPowerOfTwoLength(usize),
    /// Data of one length was handed to a plan built for another.
    PlanLengthMismatch {
        /// Length the plan was built for.
        plan: usize,
        /// Length of the data actually supplied.
        data: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NonPowerOfTwoLength(n) => {
                write!(f, "fft length {n} is not a nonzero power of two")
            }
            FftError::PlanLengthMismatch { plan, data } => {
                write!(f, "fft plan for length {plan} given {data} samples")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Checks that `n` is a usable FFT length.
pub(crate) fn check_len(n: usize) -> Result<(), FftError> {
    if n == 0 || !n.is_power_of_two() {
        Err(FftError::NonPowerOfTwoLength(n))
    } else {
        Ok(())
    }
}

/// Forward FFT, in place.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the slice length is not a
/// nonzero power of two.
///
/// ```
/// use adc_spectral::complex::Complex64;
/// use adc_spectral::fft::fft_in_place;
///
/// # fn main() -> Result<(), adc_spectral::fft::FftError> {
/// let mut x = vec![Complex64::ONE; 8];
/// fft_in_place(&mut x)?;
/// // A DC vector transforms to an impulse at bin 0 of height n.
/// assert!((x[0].re - 8.0).abs() < 1e-12);
/// assert!(x[1].norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    let _trace = adc_trace::span_with("fft", data.len() as u64);
    plan(data.len())?.forward(data)
}

/// Inverse FFT, in place, normalised by `1/n`.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the slice length is not a
/// nonzero power of two.
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    plan(data.len())?.inverse(data)
}

/// Runs the packed real-input transform and hands each untangled bin
/// `X[k]`, `k in 0..=n/2`, to `emit`. `scratch.packed` holds the
/// half-length transform on return.
fn real_untangle<F: FnMut(usize, Complex64)>(
    signal: &[f64],
    scratch: &mut SpectralScratch,
    mut emit: F,
) -> Result<(), FftError> {
    let n = signal.len();
    check_len(n)?;
    if n == 1 {
        emit(0, Complex64::from(signal[0]));
        return Ok(());
    }
    let full = plan(n)?;
    let m = n / 2;
    let packed = &mut scratch.packed;
    packed.clear();
    packed.extend((0..m).map(|i| Complex64::new(signal[2 * i], signal[2 * i + 1])));
    plan(m)?.forward(packed)?;
    // Untangle: with Z the half-length transform of the packed signal
    // (Z[m] ≡ Z[0] by periodicity),
    //   E[k] = (Z[k] + conj(Z[m−k])) / 2        (FFT of even samples)
    //   O[k] = (Z[k] − conj(Z[m−k])) / (2i)     (FFT of odd samples)
    //   X[k] = E[k] + W_n^k · O[k].
    for k in 0..=m {
        let zk = if k == m { packed[0] } else { packed[k] };
        let zmk = if k == 0 { packed[0] } else { packed[m - k] };
        let even = (zk + zmk.conj()).scale(0.5);
        let odd = (zk - zmk.conj()) * Complex64::new(0.0, -0.5);
        emit(k, even + full.twiddle(k) * odd);
    }
    Ok(())
}

/// FFT of a real signal into `out` (cleared and resized to the full
/// `n`-point complex spectrum), reusing `scratch` across calls.
///
/// The upper half of the spectrum is the conjugate mirror of the lower
/// half, reconstructed without a second transform.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn fft_real_into(
    signal: &[f64],
    scratch: &mut SpectralScratch,
    out: &mut Vec<Complex64>,
) -> Result<(), FftError> {
    let n = signal.len();
    check_len(n)?;
    let _trace = adc_trace::span_with("fft", n as u64);
    out.clear();
    out.resize(n, Complex64::ZERO);
    let half = n / 2;
    real_untangle(signal, scratch, |k, x| {
        out[k] = x;
        if k != 0 && k != half {
            out[n - k] = x.conj();
        }
    })
}

/// FFT of a real signal, returning the full complex spectrum.
///
/// Allocation-free alternative: [`fft_real_into`].
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex64>, FftError> {
    let mut scratch = SpectralScratch::new();
    let mut out = Vec::new();
    fft_real_into(signal, &mut scratch, &mut out)?;
    Ok(out)
}

/// One-sided power spectrum into `out` (cleared and refilled), reusing
/// `scratch` across calls; see [`power_spectrum_one_sided`] for the
/// normalisation contract.
///
/// Computes the `n/2 + 1` one-sided bins directly from the packed
/// half-length transform — the full complex spectrum is never
/// materialised.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn power_spectrum_one_sided_into(
    signal: &[f64],
    scratch: &mut SpectralScratch,
    out: &mut Vec<f64>,
) -> Result<(), FftError> {
    let n = signal.len();
    check_len(n)?;
    let _trace = adc_trace::span_with("fft", n as u64);
    out.clear();
    out.reserve(n / 2 + 1);
    let norm = 1.0 / (n as f64 * n as f64);
    let half = n / 2;
    real_untangle(signal, scratch, |k, x| {
        // DC and Nyquist appear once; interior bins fold with their mirror.
        let fold = if k == 0 || k == half { 1.0 } else { 2.0 };
        out.push(fold * x.norm_sqr() * norm);
    })?;
    if n == 1 {
        // Degenerate length: DC and "Nyquist" are the same single bin,
        // reported twice for continuity with the n ≥ 2 layout.
        let dc = out[0];
        out.push(dc);
    }
    Ok(())
}

/// One-sided power spectrum of a real signal, normalised so a full-scale
/// sine of amplitude `A` lands `A²/2` in its bin (coherent sampling,
/// rectangular window).
///
/// Returns `n/2 + 1` bins (DC through Nyquist). Allocation-free
/// alternative: [`power_spectrum_one_sided_into`].
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn power_spectrum_one_sided(signal: &[f64]) -> Result<Vec<f64>, FftError> {
    let mut scratch = SpectralScratch::new();
    let mut out = Vec::new();
    power_spectrum_one_sided_into(signal, &mut scratch, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        assert_eq!(fft_in_place(&mut x), Err(FftError::NonPowerOfTwoLength(12)));
        assert!(fft_real(&[0.0; 3]).is_err());
        assert!(power_spectrum_one_sided(&[0.0; 0]).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 1024;
        let k = 37; // coherent: integer cycles
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&signal).unwrap();
        // Bin k holds n/2 magnitude; all others are numerically zero.
        assert!((spec[k].norm() - n as f64 / 2.0).abs() < 1e-6);
        for (i, z) in spec.iter().enumerate() {
            if i != k && i != n - k {
                assert!(z.norm() < 1e-6, "leak at bin {i}: {}", z.norm());
            }
        }
    }

    #[test]
    fn round_trip_fft_ifft() {
        let n = 256;
        let orig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = orig.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 512;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn power_spectrum_full_scale_sine_is_half() {
        let n = 4096;
        let k = 401;
        let a = 0.75;
        let signal: Vec<f64> = (0..n)
            .map(|i| a * (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let ps = power_spectrum_one_sided(&signal).unwrap();
        assert!((ps[k] - a * a / 2.0).abs() < 1e-9);
        let rest: f64 = ps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != k)
            .map(|(_, p)| p)
            .sum();
        assert!(rest < 1e-12);
    }

    #[test]
    fn power_spectrum_total_matches_signal_power() {
        let n = 1024;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.917).sin() * 0.3 + 0.1)
            .collect();
        let ps = power_spectrum_one_sided(&signal).unwrap();
        let total: f64 = ps.iter().sum();
        let mean_sq: f64 = signal.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((total - mean_sq).abs() / mean_sq < 1e-10);
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), -1.0))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa).unwrap();
        fft_in_place(&mut fb).unwrap();
        fft_in_place(&mut fab).unwrap();
        for i in 0..n {
            let sum = fa[i] + fb[i];
            assert!((sum.re - fab[i].re).abs() < 1e-9);
            assert!((sum.im - fab[i].im).abs() < 1e-9);
        }
    }
}
