//! Iterative in-place radix-2 FFT.
//!
//! Written from scratch (no DSP crates in the offline dependency set).
//! Decimation-in-time with a bit-reversal permutation followed by
//! `log2(n)` butterfly passes; twiddles are generated per pass from a
//! single `cis` evaluation and complex multiplication, which keeps the
//! accuracy comfortably below the −120 dBc floor needed to measure a 12-bit
//! converter.

use crate::complex::Complex64;

/// Errors returned by FFT planning/execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The transform length is not a power of two (or is zero).
    NonPowerOfTwoLength(usize),
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NonPowerOfTwoLength(n) => {
                write!(f, "fft length {n} is not a nonzero power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// Checks that `n` is a usable FFT length.
fn check_len(n: usize) -> Result<(), FftError> {
    if n == 0 || !n.is_power_of_two() {
        Err(FftError::NonPowerOfTwoLength(n))
    } else {
        Ok(())
    }
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Core butterfly passes; `sign` is −1 for forward, +1 for inverse.
fn transform(data: &mut [Complex64], sign: f64) {
    let n = data.len();
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT, in place.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the slice length is not a
/// nonzero power of two.
///
/// ```
/// use adc_spectral::complex::Complex64;
/// use adc_spectral::fft::fft_in_place;
///
/// # fn main() -> Result<(), adc_spectral::fft::FftError> {
/// let mut x = vec![Complex64::ONE; 8];
/// fft_in_place(&mut x)?;
/// // A DC vector transforms to an impulse at bin 0 of height n.
/// assert!((x[0].re - 8.0).abs() < 1e-12);
/// assert!(x[1].norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    check_len(data.len())?;
    let _trace = adc_trace::span_with("fft", data.len() as u64);
    transform(data, -1.0);
    Ok(())
}

/// Inverse FFT, in place, normalised by `1/n`.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the slice length is not a
/// nonzero power of two.
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), FftError> {
    check_len(data.len())?;
    transform(data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
    Ok(())
}

/// FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex64>, FftError> {
    check_len(signal.len())?;
    let _trace = adc_trace::span_with("fft", signal.len() as u64);
    let mut data: Vec<Complex64> = signal.iter().map(|&x| Complex64::from(x)).collect();
    transform(&mut data, -1.0);
    Ok(data)
}

/// One-sided power spectrum of a real signal, normalised so a full-scale
/// sine of amplitude `A` lands `A²/2` in its bin (coherent sampling,
/// rectangular window).
///
/// Returns `n/2 + 1` bins (DC through Nyquist).
///
/// # Errors
///
/// Returns [`FftError::NonPowerOfTwoLength`] if the input length is not a
/// nonzero power of two.
pub fn power_spectrum_one_sided(signal: &[f64]) -> Result<Vec<f64>, FftError> {
    let n = signal.len();
    let spec = fft_real(signal)?;
    let norm = 1.0 / (n as f64 * n as f64);
    let mut out = Vec::with_capacity(n / 2 + 1);
    // DC and Nyquist appear once; interior bins fold with their mirror.
    out.push(spec[0].norm_sqr() * norm);
    for bin in spec.iter().take(n / 2).skip(1) {
        out.push(2.0 * bin.norm_sqr() * norm);
    }
    out.push(spec[n / 2].norm_sqr() * norm);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        assert_eq!(fft_in_place(&mut x), Err(FftError::NonPowerOfTwoLength(12)));
        assert!(fft_real(&[0.0; 3]).is_err());
        assert!(power_spectrum_one_sided(&[0.0; 0]).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 1024;
        let k = 37; // coherent: integer cycles
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&signal).unwrap();
        // Bin k holds n/2 magnitude; all others are numerically zero.
        assert!((spec[k].norm() - n as f64 / 2.0).abs() < 1e-6);
        for (i, z) in spec.iter().enumerate() {
            if i != k && i != n - k {
                assert!(z.norm() < 1e-6, "leak at bin {i}: {}", z.norm());
            }
        }
    }

    #[test]
    fn round_trip_fft_ifft() {
        let n = 256;
        let orig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = orig.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 512;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn power_spectrum_full_scale_sine_is_half() {
        let n = 4096;
        let k = 401;
        let a = 0.75;
        let signal: Vec<f64> = (0..n)
            .map(|i| a * (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let ps = power_spectrum_one_sided(&signal).unwrap();
        assert!((ps[k] - a * a / 2.0).abs() < 1e-9);
        let rest: f64 = ps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != k)
            .map(|(_, p)| p)
            .sum();
        assert!(rest < 1e-12);
    }

    #[test]
    fn power_spectrum_total_matches_signal_power() {
        let n = 1024;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.917).sin() * 0.3 + 0.1)
            .collect();
        let ps = power_spectrum_one_sided(&signal).unwrap();
        let total: f64 = ps.iter().sum();
        let mean_sq: f64 = signal.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((total - mean_sq).abs() / mean_sq < 1e-10);
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), -1.0))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_in_place(&mut fa).unwrap();
        fft_in_place(&mut fb).unwrap();
        fft_in_place(&mut fab).unwrap();
        for i in 0..n {
            let sum = fa[i] + fb[i];
            assert!((sum.re - fab[i].re).abs() < 1e-9);
            assert!((sum.im - fab[i].im).abs() < 1e-9);
        }
    }
}
