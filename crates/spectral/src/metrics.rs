//! Single-tone dynamic metrics: SNR, SNDR, SFDR, THD, ENOB.
//!
//! This is the software half of the paper's measurement bench: the authors
//! drove the ADC with a filtered RF sine and post-processed the captured
//! codes into SNR/SNDR/SFDR (their Figs. 5 and 6, Table I). The analysis
//! here follows IEEE Std 1241 practice:
//!
//! * the record is windowed (rectangular for coherent records);
//! * the fundamental is the spectral peak (or a caller-supplied bin);
//! * tone power sums the main lobe; harmonics fold across Nyquist;
//! * SNR excludes harmonic bins from the noise, SNDR includes everything
//!   except DC and the fundamental, SFDR is fundamental-to-worst-spur;
//! * ENOB = (SNDR − 1.76)/6.02.
//!
//! Because both the tone-lobe sum and the residual noise sum scale with
//! `Σw²`, the ratios are window-unbiased without explicit ENBW correction.

use crate::fft::{power_spectrum_one_sided_into, FftError};
use crate::plan::SpectralScratch;
use crate::window::Window;

/// Bin-ownership tags used while classifying the spectrum. Stored as
/// `u8` so the map lives in a reusable [`SpectralScratch`] buffer.
const OWNER_FREE: u8 = 0;
const OWNER_DC: u8 = 1;
const OWNER_FUNDAMENTAL: u8 = 2;
const OWNER_HARMONIC: u8 = 3;

/// Configuration for [`analyze_tone`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ToneAnalysisConfig {
    /// Window applied before the FFT.
    pub window: Window,
    /// Number of harmonics (2nd..=this order) classified as distortion.
    pub harmonic_count: usize,
    /// Force the fundamental to a known bin instead of peak-searching.
    pub fundamental_bin: Option<usize>,
    /// Full-scale amplitude for dBFS reporting (peak volts of a full-scale
    /// sine). When `None`, `signal_dbfs` is reported as 0.
    pub full_scale_peak: Option<f64>,
}

impl ToneAnalysisConfig {
    /// Coherent-capture defaults: rectangular window, 10 harmonics.
    pub fn coherent() -> Self {
        Self {
            window: Window::Rectangular,
            harmonic_count: 10,
            fundamental_bin: None,
            full_scale_peak: None,
        }
    }

    /// Sets the full-scale reference for dBFS reporting.
    pub fn with_full_scale(mut self, peak_v: f64) -> Self {
        self.full_scale_peak = Some(peak_v);
        self
    }

    /// Sets a known fundamental bin (skips peak search).
    pub fn with_fundamental_bin(mut self, bin: usize) -> Self {
        self.fundamental_bin = Some(bin);
        self
    }
}

impl Default for ToneAnalysisConfig {
    fn default() -> Self {
        Self::coherent()
    }
}

/// One measured harmonic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HarmonicReading {
    /// Harmonic order (2 = HD2, ...).
    pub order: usize,
    /// The (aliased) bin the harmonic folded to.
    pub bin: usize,
    /// Power relative to the fundamental, dBc (negative).
    pub dbc: f64,
}

/// Result of a single-tone analysis.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SingleToneAnalysis {
    /// Record length.
    pub n: usize,
    /// Bin index of the fundamental.
    pub fundamental_bin: usize,
    /// Fundamental tone power (same units as input², e.g. V²).
    pub signal_power: f64,
    /// Noise power (everything except DC, fundamental, harmonics).
    pub noise_power: f64,
    /// Total harmonic distortion power.
    pub distortion_power: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Signal-to-noise-and-distortion ratio, dB.
    pub sndr_db: f64,
    /// Spurious-free dynamic range, dB (fundamental to worst spur).
    pub sfdr_db: f64,
    /// Total harmonic distortion, dB (negative; distortion / signal).
    pub thd_db: f64,
    /// Effective number of bits, from SNDR.
    pub enob: f64,
    /// Fundamental amplitude relative to full scale, dB (0 if no full
    /// scale was configured).
    pub signal_dbfs: f64,
    /// Bin of the worst spur.
    pub worst_spur_bin: usize,
    /// Individual harmonic readings (order 2..).
    pub harmonics: Vec<HarmonicReading>,
}

/// Folds harmonic bin `h·k` of an `n`-point record across Nyquist.
fn fold_bin(raw: usize, n: usize) -> usize {
    let m = raw % n;
    if m > n / 2 {
        n - m
    } else {
        m
    }
}

/// Analyzes a single-tone record.
///
/// The input is the reconstructed analog value of each code (or the raw
/// codes as `f64` — all metrics are ratiometric except `signal_dbfs`).
///
/// # Errors
///
/// Returns [`FftError`] if the record length is not a nonzero power of
/// two.
///
/// # Panics
///
/// Panics if a forced `fundamental_bin` is DC/out of range.
///
/// ```
/// use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
/// # fn main() -> Result<(), adc_spectral::fft::FftError> {
/// // A pure sine measures (numerically) noise-free.
/// let n = 4096;
/// let signal: Vec<f64> = (0..n)
///     .map(|i| (2.0 * std::f64::consts::PI * 479.0 * i as f64 / n as f64).sin())
///     .collect();
/// let a = analyze_tone(&signal, &ToneAnalysisConfig::coherent())?;
/// assert_eq!(a.fundamental_bin, 479);
/// assert!(a.snr_db > 250.0);
/// # Ok(())
/// # }
/// ```
pub fn analyze_tone(
    signal: &[f64],
    cfg: &ToneAnalysisConfig,
) -> Result<SingleToneAnalysis, FftError> {
    let mut scratch = SpectralScratch::new();
    analyze_tone_with(signal, cfg, &mut scratch)
}

/// [`analyze_tone`] with caller-supplied scratch buffers.
///
/// A warm `scratch` makes the whole analysis — windowing, the packed
/// real-input FFT, the power spectrum, the bin-ownership map and the
/// SFDR prefix sums — allocation-free (except the per-result
/// `harmonics` vector in the returned analysis).
///
/// # Errors
///
/// Returns [`FftError`] if the record length is not a nonzero power of
/// two.
///
/// # Panics
///
/// Panics if a forced `fundamental_bin` is DC/out of range.
pub fn analyze_tone_with(
    signal: &[f64],
    cfg: &ToneAnalysisConfig,
    scratch: &mut SpectralScratch,
) -> Result<SingleToneAnalysis, FftError> {
    let _trace = adc_trace::span_with("analyze_tone", signal.len() as u64);
    let n = signal.len();
    // Rectangular records (every coherent capture) skip the windowed
    // copy entirely; tapered windows reuse the scratch buffer.
    let mut windowed_buf = std::mem::take(&mut scratch.windowed);
    let windowed: &[f64] = if cfg.window == Window::Rectangular {
        signal
    } else {
        let _trace_window = adc_trace::span("window");
        cfg.window.apply_into(signal, &mut windowed_buf);
        &windowed_buf
    };
    let mut ps = std::mem::take(&mut scratch.power);
    let spectrum_result = power_spectrum_one_sided_into(windowed, scratch, &mut ps);
    scratch.windowed = windowed_buf;
    if let Err(e) = spectrum_result {
        scratch.power = ps;
        return Err(e);
    }
    let half = cfg.window.tone_half_width_bins();
    let nyquist = n / 2;

    // DC region: bin 0 plus the window's leakage skirt.
    let dc_end = half; // bins 0..=dc_end are DC territory

    let fundamental_bin = match cfg.fundamental_bin {
        Some(b) => {
            assert!(
                b > dc_end && b <= nyquist,
                "forced fundamental bin {b} out of range ({dc_end}, {nyquist}]"
            );
            b
        }
        None => {
            let mut best = dc_end + 1;
            for i in (dc_end + 1)..=nyquist {
                if ps[i] > ps[best] {
                    best = i;
                }
            }
            best
        }
    };

    // Ownership map: which bins belong to DC / fundamental / harmonics.
    let mut owner = std::mem::take(&mut scratch.owner);
    owner.clear();
    owner.resize(nyquist + 1, OWNER_FREE);
    for slot in owner.iter_mut().take(dc_end + 1) {
        *slot = OWNER_DC;
    }
    let lo = fundamental_bin.saturating_sub(half);
    let hi = (fundamental_bin + half).min(nyquist);
    for slot in owner.iter_mut().take(hi + 1).skip(lo) {
        *slot = OWNER_FUNDAMENTAL;
    }

    let mut harmonics = Vec::with_capacity(cfg.harmonic_count.saturating_sub(1));
    let mut distortion_power = 0.0;
    for order in 2..=cfg.harmonic_count.max(1) {
        let bin = fold_bin(order * fundamental_bin, n);
        let lo = bin.saturating_sub(half);
        let hi = (bin + half).min(nyquist);
        let mut p = 0.0;
        for i in lo..=hi {
            if owner[i] == OWNER_FREE {
                owner[i] = OWNER_HARMONIC;
                p += ps[i];
            }
        }
        distortion_power += p;
        harmonics.push(HarmonicReading {
            order,
            bin,
            dbc: f64::NAN, // filled once signal power is known
        });
    }

    let signal_power: f64 = (lo..=hi).map(|i| ps[i]).sum();
    let noise_power: f64 = owner
        .iter()
        .zip(ps.iter())
        .filter(|(o, _)| **o == OWNER_FREE)
        .map(|(_, p)| *p)
        .sum();

    // Fill dBc readings per harmonic.
    let mut harmonics_out = Vec::with_capacity(harmonics.len());
    for h in harmonics {
        let bin = h.bin;
        let lo = bin.saturating_sub(half);
        let hi = (bin + half).min(nyquist);
        let p: f64 = (lo..=hi)
            .filter(|&i| {
                // Count only bins credited to harmonics (avoid double
                // counting fundamental overlap).
                owner[i] == OWNER_HARMONIC
            })
            .map(|i| ps[i])
            .sum();
        harmonics_out.push(HarmonicReading {
            dbc: ratio_db(p, signal_power),
            ..h
        });
    }

    // SFDR: worst tone-width spur anywhere outside DC and fundamental.
    // Prefix sums make each candidate window O(1).
    let mut prefix = std::mem::take(&mut scratch.prefix);
    prefix.clear();
    prefix.resize(nyquist + 2, 0.0);
    for i in 0..=nyquist {
        prefix[i + 1] = prefix[i] + ps[i];
    }
    let (mut worst_power, mut worst_bin) = (0.0_f64, dc_end + 1);
    for center in (dc_end + 1)..=nyquist {
        let lo = center.saturating_sub(half);
        let hi = (center + half).min(nyquist);
        // Skip windows that touch the fundamental's main lobe.
        if (lo..=hi).any(|i| owner[i] == OWNER_FUNDAMENTAL) {
            continue;
        }
        let window_sum = prefix[hi + 1] - prefix[lo];
        if window_sum > worst_power {
            worst_power = window_sum;
            // Report the strongest bin inside the worst window, not the
            // window centre, so single-bin spurs are located exactly.
            worst_bin = (lo..=hi)
                .max_by(|&a, &b| ps[a].total_cmp(&ps[b]))
                .unwrap_or(center);
        }
    }

    let sndr_den = noise_power + distortion_power;
    let snr_db = ratio_db(signal_power, noise_power);
    let sndr_db = ratio_db(signal_power, sndr_den);
    let sfdr_db = ratio_db(signal_power, worst_power);
    let thd_db = ratio_db(distortion_power, signal_power);
    let enob = (sndr_db - 1.76) / 6.02;
    let signal_dbfs = match cfg.full_scale_peak {
        Some(fs) if fs > 0.0 => ratio_db(signal_power, fs * fs / 2.0),
        _ => 0.0,
    };

    scratch.power = ps;
    scratch.owner = owner;
    scratch.prefix = prefix;

    Ok(SingleToneAnalysis {
        n,
        fundamental_bin,
        signal_power,
        noise_power,
        distortion_power,
        snr_db,
        sndr_db,
        sfdr_db,
        thd_db,
        enob,
        signal_dbfs,
        worst_spur_bin: worst_bin,
        harmonics: harmonics_out,
    })
}

/// `10·log10(a/b)` with graceful handling of zero denominators.
fn ratio_db(a: f64, b: f64) -> f64 {
    if a <= 0.0 {
        f64::NEG_INFINITY
    } else if b <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (a / b).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(n: usize, k: usize, a: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn pure_tone_has_huge_snr() {
        let a = analyze_tone(&sine(4096, 479, 1.0), &ToneAnalysisConfig::coherent()).unwrap();
        assert_eq!(a.fundamental_bin, 479);
        assert!(a.snr_db > 200.0, "snr {}", a.snr_db);
        assert!(a.sfdr_db > 200.0);
    }

    #[test]
    fn known_noise_gives_known_snr() {
        // Tone plus white noise of known power.
        let n = 8192;
        let k = 777;
        let mut sig = sine(n, k, 1.0);
        // Deterministic pseudo-noise with uniform distribution:
        let mut state = 0x12345678u64;
        let mut noise_power = 0.0;
        for s in sig.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let nval = u * 0.02; // uniform, sigma = 0.02/sqrt(12)
            noise_power += nval * nval;
            *s += nval;
        }
        noise_power /= n as f64;
        let expected_snr = 10.0 * ((0.5) / noise_power).log10();
        let a = analyze_tone(&sig, &ToneAnalysisConfig::coherent()).unwrap();
        assert!(
            (a.snr_db - expected_snr).abs() < 0.5,
            "snr {} vs expected {expected_snr}",
            a.snr_db
        );
    }

    #[test]
    fn harmonic_is_classified_as_distortion() {
        let n = 4096;
        let k = 401;
        let mut sig = sine(n, k, 1.0);
        let h3 = sine(n, 3 * k, 0.001); // −60 dBc HD3
        for (s, h) in sig.iter_mut().zip(&h3) {
            *s += h;
        }
        let a = analyze_tone(&sig, &ToneAnalysisConfig::coherent()).unwrap();
        assert!((a.thd_db + 60.0).abs() < 0.2, "thd {}", a.thd_db);
        assert!((a.sfdr_db - 60.0).abs() < 0.2, "sfdr {}", a.sfdr_db);
        // SNR must NOT be degraded by the harmonic.
        assert!(a.snr_db > 150.0, "snr {}", a.snr_db);
        // SNDR ≈ THD-limited.
        assert!((a.sndr_db - 60.0).abs() < 0.2);
        let hd3 = a.harmonics.iter().find(|h| h.order == 3).unwrap();
        assert!((hd3.dbc + 60.0).abs() < 0.2);
    }

    #[test]
    fn harmonics_fold_across_nyquist() {
        let n = 4096;
        let k = 1601; // 3k = 4803 -> folds to 4803-4096=707
        assert_eq!(fold_bin(3 * k, n), 707);
        let mut sig = sine(n, k, 1.0);
        let h3: Vec<f64> = (0..n)
            .map(|i| 0.01 * (2.0 * PI * (3 * k) as f64 * i as f64 / n as f64).sin())
            .collect();
        for (s, h) in sig.iter_mut().zip(&h3) {
            *s += h;
        }
        let a = analyze_tone(&sig, &ToneAnalysisConfig::coherent()).unwrap();
        let hd3 = a.harmonics.iter().find(|h| h.order == 3).unwrap();
        assert_eq!(hd3.bin, 707);
        assert!((hd3.dbc + 40.0).abs() < 0.3, "hd3 {}", hd3.dbc);
    }

    #[test]
    fn non_harmonic_spur_limits_sfdr_but_not_thd() {
        let n = 4096;
        let k = 401;
        let spur_bin = 650; // not a harmonic of 401
        let mut sig = sine(n, k, 1.0);
        let spur = sine(n, spur_bin, 0.003); // −50.5 dBc
        for (s, h) in sig.iter_mut().zip(&spur) {
            *s += h;
        }
        let a = analyze_tone(&sig, &ToneAnalysisConfig::coherent()).unwrap();
        assert!((a.sfdr_db - 50.46).abs() < 0.3, "sfdr {}", a.sfdr_db);
        assert_eq!(a.worst_spur_bin, spur_bin);
        // The spur is "noise" for SNR purposes (IEEE 1241), so SNR drops...
        assert!((a.snr_db - 50.46).abs() < 0.5);
        // ...but THD stays clean.
        assert!(a.thd_db < -150.0);
    }

    #[test]
    fn enob_matches_sndr() {
        let n = 4096;
        let mut sig = sine(n, 401, 1.0);
        let mut state = 7u64;
        for s in sig.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            *s += u * 1e-3;
        }
        let a = analyze_tone(&sig, &ToneAnalysisConfig::coherent()).unwrap();
        assert!((a.enob - (a.sndr_db - 1.76) / 6.02).abs() < 1e-12);
    }

    #[test]
    fn dbfs_reporting() {
        let n = 4096;
        let sig = sine(n, 401, 0.5); // −6 dBFS for FS peak = 1.0
        let cfg = ToneAnalysisConfig::coherent().with_full_scale(1.0);
        let a = analyze_tone(&sig, &cfg).unwrap();
        assert!(
            (a.signal_dbfs + 6.02).abs() < 0.05,
            "dbfs {}",
            a.signal_dbfs
        );
    }

    #[test]
    fn forced_fundamental_bin_is_respected() {
        let n = 4096;
        // Two tones; force analysis onto the smaller one.
        let mut sig = sine(n, 401, 1.0);
        let t2 = sine(n, 901, 0.5);
        for (s, h) in sig.iter_mut().zip(&t2) {
            *s += h;
        }
        let cfg = ToneAnalysisConfig::coherent().with_fundamental_bin(901);
        let a = analyze_tone(&sig, &cfg).unwrap();
        assert_eq!(a.fundamental_bin, 901);
        assert!((a.signal_power - 0.125).abs() < 1e-6);
    }

    #[test]
    fn windowed_noncoherent_tone_still_measures() {
        // A non-coherent tone through Blackman-Harris: SNR limited only by
        // leakage, which BH4 pushes below -90 dB.
        let n = 4096;
        let f = 400.31; // non-integer bin
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / n as f64).sin())
            .collect();
        let cfg = ToneAnalysisConfig {
            window: Window::BlackmanHarris4,
            ..ToneAnalysisConfig::coherent()
        };
        let a = analyze_tone(&sig, &cfg).unwrap();
        assert_eq!(a.fundamental_bin, 400);
        assert!(a.sndr_db > 65.0, "sndr {}", a.sndr_db);
    }

    #[test]
    fn rejects_bad_length() {
        assert!(analyze_tone(&[0.0; 100], &ToneAnalysisConfig::coherent()).is_err());
    }
}
