//! Averaged spectra and noise-floor estimation.
//!
//! A single periodogram's noise bins have ~100 % variance (chi-squared
//! with 2 degrees of freedom); the Welch method — averaging windowed,
//! overlapping segments — trades frequency resolution for variance, which
//! is how a bench instrument draws the smooth noise floors seen in
//! published ADC spectra. Also computes the noise spectral density (NSD)
//! in dBFS/Hz, the figure SoC integrators use to budget a receive chain.

use crate::fft::{power_spectrum_one_sided, FftError};
use crate::window::Window;

/// An averaged one-sided power spectrum.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AveragedSpectrum {
    /// Power per bin (input units squared), `segment_len/2 + 1` bins.
    pub power: Vec<f64>,
    /// Segment length used.
    pub segment_len: usize,
    /// Number of averaged segments.
    pub segments: usize,
    /// Window applied per segment.
    pub window: Window,
}

impl AveragedSpectrum {
    /// Welch-averaged spectrum: segments of `segment_len` with 50 %
    /// overlap, each windowed and transformed, magnitudes averaged.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if `segment_len` is not a nonzero power of
    /// two.
    ///
    /// # Panics
    ///
    /// Panics if the signal is shorter than one segment.
    pub fn welch(signal: &[f64], segment_len: usize, window: Window) -> Result<Self, FftError> {
        assert!(
            signal.len() >= segment_len,
            "signal ({}) shorter than segment ({segment_len})",
            signal.len()
        );
        let hop = segment_len / 2;
        let mut power = vec![0.0; segment_len / 2 + 1];
        let mut segments = 0usize;
        let mut start = 0usize;
        while start + segment_len <= signal.len() {
            let seg = window.apply(&signal[start..start + segment_len]);
            let ps = power_spectrum_one_sided(&seg)?;
            for (acc, p) in power.iter_mut().zip(&ps) {
                *acc += p;
            }
            segments += 1;
            start += hop.max(1);
        }
        for p in power.iter_mut() {
            *p /= segments as f64;
        }
        Ok(Self {
            power,
            segment_len,
            segments,
            window,
        })
    }

    /// Bin spacing in hertz for a given sample rate.
    pub fn bin_width_hz(&self, fs_hz: f64) -> f64 {
        fs_hz / self.segment_len as f64
    }

    /// Median-based noise floor estimate per bin (robust to tones), in
    /// input units squared per bin.
    pub fn noise_floor_per_bin(&self) -> f64 {
        let mut sorted: Vec<f64> = self.power[1..].to_vec();
        sorted.sort_by(f64::total_cmp);
        // Each averaged bin is Gamma(k, θ)-distributed (k = segments);
        // its median underestimates its mean by ≈ k/(k − 1/3), the
        // Wilson–Hilferty approximation (ratio 1.5 for k = 1, → 1 as
        // averaging deepens).
        let median = sorted[sorted.len() / 2];
        let k = self.segments as f64;
        median * k / (k - 1.0 / 3.0)
    }

    /// Noise spectral density in dBFS/Hz, given the full-scale sine
    /// amplitude and sample rate.
    ///
    /// `NSD = 10·log10(noise_per_bin / (A²/2) / bin_width)`.
    pub fn nsd_dbfs_per_hz(&self, full_scale_peak: f64, fs_hz: f64) -> f64 {
        assert!(full_scale_peak > 0.0 && fs_hz > 0.0);
        let fs_power = full_scale_peak * full_scale_peak / 2.0;
        let per_hz =
            self.noise_floor_per_bin() / self.bin_width_hz(fs_hz) / self.window.enbw_bins();
        10.0 * (per_hz / fs_power).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn white_noise(n: usize, sigma: f64, seed: u64) -> Vec<f64> {
        // Deterministic uniform noise scaled to the target sigma.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                u * sigma * (12f64).sqrt()
            })
            .collect()
    }

    #[test]
    fn averaging_reduces_variance() {
        let sig = white_noise(1 << 16, 1e-3, 42);
        let single = AveragedSpectrum::welch(&sig[..1024], 1024, Window::Hann).unwrap();
        let averaged = AveragedSpectrum::welch(&sig, 1024, Window::Hann).unwrap();
        assert!(averaged.segments > 60);
        let var = |s: &AveragedSpectrum| {
            let bins = &s.power[1..s.power.len() - 1];
            let mean = bins.iter().sum::<f64>() / bins.len() as f64;
            bins.iter().map(|p| (p / mean - 1.0).powi(2)).sum::<f64>() / bins.len() as f64
        };
        assert!(var(&averaged) < var(&single) / 10.0);
    }

    #[test]
    fn total_noise_power_is_preserved() {
        let sigma = 2e-3;
        let sig = white_noise(1 << 15, sigma, 7);
        let sp = AveragedSpectrum::welch(&sig, 2048, Window::Rectangular).unwrap();
        let total: f64 = sp.power.iter().sum();
        assert!(
            (total - sigma * sigma).abs() / (sigma * sigma) < 0.05,
            "total {total} vs {}",
            sigma * sigma
        );
    }

    #[test]
    fn median_floor_is_robust_to_a_tone() {
        let sigma = 1e-3;
        let mut sig = white_noise(1 << 15, sigma, 9);
        // Add a huge tone: the median floor must barely move.
        for (i, s) in sig.iter_mut().enumerate() {
            *s += 0.9 * (2.0 * std::f64::consts::PI * 0.0937 * i as f64).sin();
        }
        let sp = AveragedSpectrum::welch(&sig, 2048, Window::Hann).unwrap();
        let expected_per_bin = sigma * sigma / 1024.0 * sp.window.enbw_bins();
        let floor = sp.noise_floor_per_bin();
        assert!(
            floor < 4.0 * expected_per_bin && floor > expected_per_bin / 4.0,
            "floor {floor} vs expected {expected_per_bin}"
        );
    }

    #[test]
    fn nsd_matches_hand_calculation() {
        // White noise sigma over fs/2 bandwidth: NSD = sigma²/(fs/2)
        // relative to A²/2.
        let sigma = 1e-3;
        let fs = 110e6;
        let sig = white_noise(1 << 16, sigma, 11);
        let sp = AveragedSpectrum::welch(&sig, 2048, Window::Rectangular).unwrap();
        let nsd = sp.nsd_dbfs_per_hz(1.0, fs);
        let expected = 10.0 * ((sigma * sigma / (fs / 2.0)) / 0.5).log10();
        assert!((nsd - expected).abs() < 1.5, "nsd {nsd} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "shorter than segment")]
    fn rejects_short_signals() {
        let _ = AveragedSpectrum::welch(&[0.0; 100], 1024, Window::Hann);
    }
}
