//! Interleaving spur forensics: predict *where* an M-way time-interleaved
//! converter's mismatch spurs land, and attribute measured spectral power
//! to the right mismatch family.
//!
//! An M-way array modulates every per-channel error at the channel rate
//! `f_s/M`, so the error families land at known places:
//!
//! * **offset family** — static per-channel offsets are a signal-independent
//!   periodic pattern: tones at `k·f_s/M`, `k = 1‥M−1` (for M = 2, a single
//!   tone at `f_s/2`);
//! * **image family** — gain, timing-skew, and bandwidth mismatch all
//!   *multiply* the input, producing images at `k·f_s/M ± f_in`. Gain
//!   images are flat over frequency; timing/bandwidth images grow with
//!   `f_in` — but they share bins, which is why attribution is by family,
//!   not by mechanism.
//!
//! Knowing the bins turns "eyeball the spectrum" into assertions:
//! a test can inject offset-only mismatch and require that *exactly* the
//! offset family lights up, or run background calibration and pin the
//! dB suppression of each family. [`spur_families`] predicts the bins;
//! [`attribute_spurs`] measures a one-sided power spectrum at them;
//! [`attribute_record`] does both straight from a time-domain record.

use crate::fft::{power_spectrum_one_sided, FftError};
use crate::window::alias_bin;

/// Floor applied below the carrier when a family bin holds exactly zero
/// power, keeping reports finite (−300 dBc is far below any physical
/// floor in these models).
const DBC_FLOOR: f64 = -300.0;

/// Typed failure of a spur-forensics call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterleaveForensicsError {
    /// Fewer than two channels: there is no interleaving to attribute.
    ChannelCount {
        /// The channel count supplied.
        m: usize,
    },
    /// The record length is not divisible by the channel count, so the
    /// channel-rate tones do not land on bins.
    NotDivisible {
        /// Record length.
        n: usize,
        /// Channel count.
        m: usize,
    },
    /// The fundamental bin is DC, Nyquist, or out of range — tone
    /// analysis needs a proper in-band carrier.
    FundamentalOutOfRange {
        /// The offending bin.
        bin: usize,
        /// Record length the bin must sit strictly inside (exclusive of
        /// 0 and n/2).
        n: usize,
    },
    /// The spectrum could not be computed from the record.
    Fft(FftError),
}

impl std::fmt::Display for InterleaveForensicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ChannelCount { m } => write!(f, "{m} channels: nothing interleaved"),
            Self::NotDivisible { n, m } => {
                write!(f, "record length {n} not divisible by {m} channels")
            }
            Self::FundamentalOutOfRange { bin, n } => {
                write!(
                    f,
                    "fundamental bin {bin} not strictly inside (0, {})",
                    n / 2
                )
            }
            Self::Fft(e) => write!(f, "spectrum failed: {e}"),
        }
    }
}

impl std::error::Error for InterleaveForensicsError {}

impl From<FftError> for InterleaveForensicsError {
    fn from(e: FftError) -> Self {
        Self::Fft(e)
    }
}

/// The predicted one-sided bin locations of an M-way array's mismatch
/// spurs, for a given record length and carrier bin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpurFamilies {
    /// Channel count the prediction is for.
    pub m: usize,
    /// Record length the bins index into (one-sided spectrum has
    /// `n/2 + 1` bins).
    pub n: usize,
    /// Carrier bin the image family is anchored on.
    pub fundamental_bin: usize,
    /// Offset-family bins: `k·n/M` folded one-sided, deduplicated,
    /// ascending.
    pub offset_bins: Vec<usize>,
    /// Image-family bins: `k·n/M ± fundamental` folded one-sided,
    /// deduplicated, ascending — excluding the carrier itself and any
    /// bin already claimed by the offset family.
    pub image_bins: Vec<usize>,
}

/// Predicts the spur bins of an `m`-way array for an `n`-point record
/// with the carrier at `fundamental_bin`.
///
/// # Errors
///
/// See [`InterleaveForensicsError`]; `n` must be divisible by `m`, `m`
/// at least 2, and the fundamental strictly between DC and Nyquist.
pub fn spur_families(
    n: usize,
    m: usize,
    fundamental_bin: usize,
) -> Result<SpurFamilies, InterleaveForensicsError> {
    if m < 2 {
        return Err(InterleaveForensicsError::ChannelCount { m });
    }
    if n == 0 || !n.is_multiple_of(m) {
        return Err(InterleaveForensicsError::NotDivisible { n, m });
    }
    if fundamental_bin == 0 || fundamental_bin >= n / 2 {
        return Err(InterleaveForensicsError::FundamentalOutOfRange {
            bin: fundamental_bin,
            n,
        });
    }
    let mut offset_bins = Vec::new();
    let mut image_bins = Vec::new();
    for k in 1..m {
        let carrier = k * (n / m);
        let folded = alias_bin(carrier, n);
        if folded != 0 {
            offset_bins.push(folded);
        }
        image_bins.push(alias_bin(carrier + fundamental_bin, n));
        // `carrier − fundamental` via the fold of the sum with n − bin
        // (alias_bin works on a cycle count, which is mod-n anyway).
        image_bins.push(alias_bin(carrier + n - fundamental_bin, n));
    }
    offset_bins.sort_unstable();
    offset_bins.dedup();
    image_bins.sort_unstable();
    image_bins.dedup();
    image_bins.retain(|&b| b != fundamental_bin && b != 0 && !offset_bins.contains(&b));
    Ok(SpurFamilies {
        m,
        n,
        fundamental_bin,
        offset_bins,
        image_bins,
    })
}

/// Measured spur power at the predicted families, relative to the
/// carrier.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleaveSpurReport {
    /// The bin prediction this report measured.
    pub families: SpurFamilies,
    /// Carrier power (spectrum units).
    pub carrier_power: f64,
    /// Worst offset-family spur relative to the carrier, dBc (negative
    /// when below the carrier; floored at −300 dBc).
    pub offset_worst_dbc: f64,
    /// Bin holding the worst offset-family spur.
    pub offset_worst_bin: usize,
    /// Worst image-family spur relative to the carrier, dBc.
    pub image_worst_dbc: f64,
    /// Bin holding the worst image-family spur.
    pub image_worst_bin: usize,
}

impl InterleaveSpurReport {
    /// The dB margin between the offset family and the image family
    /// (positive when the offset family is worse).
    pub fn offset_minus_image_db(&self) -> f64 {
        self.offset_worst_dbc - self.image_worst_dbc
    }
}

fn family_worst(spectrum: &[f64], bins: &[usize], carrier_power: f64) -> (f64, usize) {
    let mut worst_dbc = DBC_FLOOR;
    let mut worst_bin = bins.first().copied().unwrap_or(0);
    for &bin in bins {
        let p = spectrum[bin];
        let dbc = if p > 0.0 && carrier_power > 0.0 {
            (10.0 * (p / carrier_power).log10()).max(DBC_FLOOR)
        } else {
            DBC_FLOOR
        };
        if dbc > worst_dbc {
            worst_dbc = dbc;
            worst_bin = bin;
        }
    }
    (worst_dbc, worst_bin)
}

/// Measures a one-sided power spectrum (`n/2 + 1` bins for an `n`-point
/// record) at the predicted spur families of an `m`-way array.
///
/// # Errors
///
/// Same validation as [`spur_families`], with `n` inferred from the
/// spectrum length.
pub fn attribute_spurs(
    spectrum: &[f64],
    m: usize,
    fundamental_bin: usize,
) -> Result<InterleaveSpurReport, InterleaveForensicsError> {
    if spectrum.len() < 2 {
        return Err(InterleaveForensicsError::NotDivisible {
            n: spectrum.len(),
            m,
        });
    }
    let n = 2 * (spectrum.len() - 1);
    let families = spur_families(n, m, fundamental_bin)?;
    let carrier_power = spectrum[fundamental_bin];
    let (offset_worst_dbc, offset_worst_bin) =
        family_worst(spectrum, &families.offset_bins, carrier_power);
    let (image_worst_dbc, image_worst_bin) =
        family_worst(spectrum, &families.image_bins, carrier_power);
    Ok(InterleaveSpurReport {
        families,
        carrier_power,
        offset_worst_dbc,
        offset_worst_bin,
        image_worst_dbc,
        image_worst_bin,
    })
}

/// Spur attribution straight from a time-domain record: computes the
/// one-sided power spectrum, takes the strongest in-band bin as the
/// carrier, and measures the families.
///
/// # Errors
///
/// FFT errors (non-power-of-two records) plus the [`spur_families`]
/// validation.
pub fn attribute_record(
    record: &[f64],
    m: usize,
) -> Result<InterleaveSpurReport, InterleaveForensicsError> {
    let spectrum = power_spectrum_one_sided(record)?;
    let mut fundamental_bin = 1;
    let mut best = f64::MIN;
    for (bin, &p) in spectrum.iter().enumerate().skip(1) {
        if bin < record.len() / 2 && p > best {
            best = p;
            fundamental_bin = bin;
        }
    }
    attribute_spurs(&spectrum, m, fundamental_bin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_families_are_the_textbook_bins() {
        let f = spur_families(4096, 2, 371).unwrap();
        assert_eq!(f.offset_bins, vec![2048]);
        // 2048 + 371 folds onto 2048 − 371: one image bin.
        assert_eq!(f.image_bins, vec![2048 - 371]);
    }

    #[test]
    fn four_way_families_fold_and_dedup() {
        let f = spur_families(4096, 4, 100).unwrap();
        // k·n/4 for k = 1..3 → 1024, 2048, 3072 (folds to 1024).
        assert_eq!(f.offset_bins, vec![1024, 2048]);
        // 1024±100, 2048±100, 3072±100 folded → {924, 1124, 1948}.
        assert_eq!(f.image_bins, vec![924, 1124, 1948]);
    }

    #[test]
    fn validation_is_typed() {
        assert!(matches!(
            spur_families(4096, 1, 100),
            Err(InterleaveForensicsError::ChannelCount { m: 1 })
        ));
        assert!(matches!(
            spur_families(4095, 2, 100),
            Err(InterleaveForensicsError::NotDivisible { n: 4095, m: 2 })
        ));
        assert!(matches!(
            spur_families(4096, 2, 0),
            Err(InterleaveForensicsError::FundamentalOutOfRange { .. })
        ));
        assert!(matches!(
            spur_families(4096, 2, 2048),
            Err(InterleaveForensicsError::FundamentalOutOfRange { .. })
        ));
    }

    #[test]
    fn synthetic_offset_and_image_tones_attribute_to_their_families() {
        let n = 4096;
        let bin = 371;
        let w = 2.0 * std::f64::consts::PI / n as f64;
        // Carrier + a 1e-3 offset tone at fs/2 + a 1e-4 image at fs/2−fin.
        let record: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (w * bin as f64 * t).sin()
                    + 1e-3 * (std::f64::consts::PI * t).cos()
                    + 1e-4 * (w * (n / 2 - bin) as f64 * t).sin()
            })
            .collect();
        let report = attribute_record(&record, 2).unwrap();
        assert_eq!(report.families.fundamental_bin, bin);
        assert_eq!(report.offset_worst_bin, n / 2);
        assert_eq!(report.image_worst_bin, n / 2 - bin);
        // Offset tone: amplitude 1e-3 against carrier 1 → −60 dBc; but a
        // real (cosine) tone at Nyquist puts all its power in one bin
        // while the carrier splits over two sides → +3 dB: −57 dBc.
        assert!(
            (report.offset_worst_dbc + 57.0).abs() < 0.5,
            "offset {} dBc",
            report.offset_worst_dbc
        );
        // Image: amplitude 1e-4 → −80 dBc, same split on both sides.
        assert!(
            (report.image_worst_dbc + 80.0).abs() < 0.5,
            "image {} dBc",
            report.image_worst_dbc
        );
        assert!(report.offset_minus_image_db() > 20.0);
    }

    #[test]
    fn clean_record_reports_floored_families() {
        let n = 1024;
        let w = 2.0 * std::f64::consts::PI * 171.0 / n as f64;
        let record: Vec<f64> = (0..n).map(|i| (w * i as f64).sin()).collect();
        let report = attribute_record(&record, 2).unwrap();
        // A pure coherent tone leaves only numerical dust in the
        // family bins.
        assert!(report.offset_worst_dbc < -250.0);
        assert!(report.image_worst_dbc < -250.0);
    }
}
