//! A minimal complex number type for the FFT.
//!
//! The approved offline dependency set has no `num-complex`, so the crate
//! carries its own small, allocation-free complex type with exactly the
//! operations the spectral code needs.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a complex number from polar form.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase), radians in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn multiplication_matches_hand_calc() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        let p = Complex64::new(1.0, 2.0) * Complex64::new(3.0, 4.0);
        assert_eq!(p, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(2.0, -7.0);
        assert_eq!(z.conj(), Complex64::new(2.0, 7.0));
        // z * conj(z) = |z|²
        let m = z * z.conj();
        assert!((m.re - z.norm_sqr()).abs() < 1e-12);
        assert!(m.im.abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex64::cis(2.0 * PI * k as f64 / 16.0);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(0.25, 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
        c *= b;
        assert_eq!(c, a * b);
    }
}
