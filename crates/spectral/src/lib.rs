//! # adc-spectral
//!
//! Spectral analysis and data-converter metrology, written from scratch:
//! the software half of the measurement bench used to characterise the
//! DATE 2004 "97 mW 110 MS/s 12b Pipeline ADC".
//!
//! * [`fft`] — iterative radix-2 FFT/IFFT and one-sided power spectra;
//! * [`plan`] — cached FFT execution plans (precomputed bit-reversal
//!   and twiddle tables) and the [`SpectralScratch`] buffer set behind
//!   the allocation-free `_into` APIs;
//! * [`window`] — rectangular/Hann/Blackman/Blackman–Harris windows and
//!   coherent-frequency selection;
//! * [`metrics`] — IEEE-1241-style single-tone SNR/SNDR/SFDR/THD/ENOB;
//! * [`interleave`] — time-interleaving spur forensics: predicted
//!   offset/image bin families and measured attribution;
//! * [`linearity`] — sine-wave code-density INL/DNL extraction;
//! * [`sinefit`] — IEEE-1057 three/four-parameter sine fits;
//! * [`complex`] — the minimal complex type underpinning the FFT.
//!
//! ```
//! use adc_spectral::metrics::{analyze_tone, ToneAnalysisConfig};
//! use adc_spectral::window::coherent_frequency;
//!
//! # fn main() -> Result<(), adc_spectral::fft::FftError> {
//! // Pick a coherent tone near 10 MHz for an 8192-point capture at
//! // 110 MS/s, then measure it.
//! let n = 8192;
//! let (f, bin) = coherent_frequency(110e6, n, 10e6);
//! let record: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * f / 110e6 * i as f64).sin())
//!     .collect();
//! let analysis = analyze_tone(&record, &ToneAnalysisConfig::coherent())?;
//! assert_eq!(analysis.fundamental_bin, bin);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod fft;
pub mod goertzel;
pub mod interleave;
pub mod linearity;
pub mod metrics;
pub mod plan;
pub mod sinefit;
pub mod spectrum;
pub mod twotone;
pub mod window;

pub use complex::Complex64;
pub use fft::{
    fft_in_place, fft_real, fft_real_into, ifft_in_place, power_spectrum_one_sided,
    power_spectrum_one_sided_into, FftError,
};
pub use goertzel::{goertzel_bin, goertzel_power, tone_screen};
pub use interleave::{
    attribute_record, attribute_spurs, spur_families, InterleaveForensicsError,
    InterleaveSpurReport, SpurFamilies,
};
pub use linearity::{
    predict_tone_from_inl, ramp_histogram, sine_histogram, LinearityError, LinearityResult,
};
pub use metrics::{analyze_tone, HarmonicReading, SingleToneAnalysis, ToneAnalysisConfig};
pub use plan::{plan, FftPlan, SpectralScratch};
pub use sinefit::{fit_known_frequency, fit_refine_frequency, SineFit, SineFitError};
pub use spectrum::AveragedSpectrum;
pub use twotone::{analyze_two_tone, ImdProduct, TwoToneAnalysis};
pub use window::{alias_bin, coherent_frequency, coherent_frequency_clear, Window};
