//! Window functions for spectral analysis.
//!
//! The paper's dynamic measurements use band-pass-filtered RF sources and —
//! as is universal in ADC characterisation — coherent sampling, so the
//! workhorse window is [`Window::Rectangular`]. The tapered windows are
//! provided for non-coherent records (e.g. analysing a signal whose
//! frequency is not an exact bin), together with the two constants needed
//! to keep the metrics calibrated: the coherent (amplitude) gain and the
//! equivalent noise bandwidth in bins.

/// Supported window shapes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Window {
    /// No taper. Use with coherent sampling.
    #[default]
    Rectangular,
    /// Hann (raised cosine).
    Hann,
    /// Blackman (3-term).
    Blackman,
    /// 4-term Blackman–Harris (−92 dB sidelobes) — the usual choice for
    /// high-resolution converter spectra when coherence cannot be
    /// guaranteed.
    BlackmanHarris4,
}

impl Window {
    /// The window coefficients for an `n`-point record.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn coefficients(&self, n: usize) -> Vec<f64> {
        assert!(n > 0, "window length must be nonzero");
        let step = 2.0 * std::f64::consts::PI / n as f64;
        (0..n)
            .map(|i| self.coefficient_at(step * i as f64))
            .collect()
    }

    /// One window coefficient at phase `x = 2πi/n`.
    fn coefficient_at(&self, x: f64) -> f64 {
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            Window::BlackmanHarris4 => {
                0.358_75 - 0.488_29 * x.cos() + 0.141_28 * (2.0 * x).cos()
                    - 0.011_68 * (3.0 * x).cos()
            }
        }
    }

    /// Coherent (amplitude) gain: the mean of the coefficients.
    pub fn coherent_gain(&self) -> f64 {
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5,
            Window::Blackman => 0.42,
            Window::BlackmanHarris4 => 0.358_75,
        }
    }

    /// Equivalent noise bandwidth in bins.
    pub fn enbw_bins(&self) -> f64 {
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 1.5,
            Window::Blackman => 1.726_763,
            Window::BlackmanHarris4 => 2.004_353,
        }
    }

    /// Half-width (in bins) of the main lobe for tone-power summation:
    /// how many bins on each side of the peak belong to the tone.
    pub fn tone_half_width_bins(&self) -> usize {
        match self {
            Window::Rectangular => 1,
            Window::Hann => 3,
            Window::Blackman => 4,
            Window::BlackmanHarris4 => 5,
        }
    }

    /// Applies the window to a signal, returning the tapered copy.
    pub fn apply(&self, signal: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.apply_into(signal, &mut out);
        out
    }

    /// Applies the window into `out` (cleared and refilled), computing
    /// coefficients on the fly — no intermediate coefficient vector.
    pub fn apply_into(&self, signal: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(signal.len());
        if *self == Window::Rectangular {
            out.extend_from_slice(signal);
            return;
        }
        let step = 2.0 * std::f64::consts::PI / signal.len() as f64;
        out.extend(
            signal
                .iter()
                .enumerate()
                .map(|(i, x)| x * self.coefficient_at(step * i as f64)),
        );
    }
}

/// Picks a coherent tone frequency near `f_target_hz` for an `n`-point
/// record at sample rate `fs_hz`.
///
/// Returns `(f_coherent_hz, cycles)` where `cycles` is odd (and therefore
/// coprime with the power-of-two record length), guaranteeing every code
/// is exercised and the tone sits exactly on a bin. Targets beyond
/// Nyquist are allowed — the tone is then deliberately undersampled (the
/// paper's Fig. 6 sweeps the input to 150 MHz at 110 MS/s) and appears at
/// its alias bin.
///
/// # Panics
///
/// Panics if `n` is not a nonzero power of two or `fs_hz` is not positive.
///
/// ```
/// use adc_spectral::window::coherent_frequency;
/// let (f, m) = coherent_frequency(110e6, 8192, 10e6);
/// assert_eq!(m % 2, 1);
/// assert!((f - 10e6).abs() < 110e6 / 8192.0);
/// ```
pub fn coherent_frequency(fs_hz: f64, n: usize, f_target_hz: f64) -> (f64, usize) {
    assert!(n > 0 && n.is_power_of_two(), "record length must be 2^k");
    assert!(fs_hz > 0.0, "sample rate must be positive");
    let ideal = f_target_hz / fs_hz * n as f64;
    let mut m = ideal.round() as i64;
    if m % 2 == 0 {
        // Move to the nearer odd neighbour.
        m += if ideal - m as f64 >= 0.0 { 1 } else { -1 };
    }
    let m = m.max(1) as usize;
    (m as f64 * fs_hz / n as f64, m)
}

/// The bin an `m`-cycle (possibly undersampled) coherent tone appears at
/// in an `n`-point one-sided spectrum.
pub fn alias_bin(cycles: usize, n: usize) -> usize {
    let m = cycles % n;
    if m > n / 2 {
        n - m
    } else {
        m
    }
}

/// Like [`coherent_frequency`], but guarantees the tone's *alias* lands at
/// least `min_alias_bin` bins away from DC and Nyquist, nudging the cycle
/// count in ±2 steps if necessary.
///
/// Use this for sweeps where the target frequency may fall near a multiple
/// of the sample rate (e.g. measuring a 10 MHz tone at a 5 MS/s or
/// 20 MS/s conversion rate, as the paper's Fig. 5 does): without the
/// nudge the alias would collide with the DC or Nyquist exclusion region
/// and the analysis would see no tone at all.
///
/// # Panics
///
/// Panics on the same inputs as [`coherent_frequency`], or if no suitable
/// cycle count exists (`min_alias_bin` too large for `n`).
pub fn coherent_frequency_clear(
    fs_hz: f64,
    n: usize,
    f_target_hz: f64,
    min_alias_bin: usize,
) -> (f64, usize) {
    let (_, m0) = coherent_frequency(fs_hz, n, f_target_hz);
    assert!(
        min_alias_bin < n / 2,
        "min_alias_bin {min_alias_bin} leaves no usable bins for n = {n}"
    );
    let ok = |m: usize| {
        let b = alias_bin(m, n);
        b >= min_alias_bin && b <= n / 2 - min_alias_bin
    };
    for k in 0..n {
        let up = m0 + 2 * k;
        if ok(up) {
            return (up as f64 * fs_hz / n as f64, up);
        }
        if m0 > 2 * k {
            let down = m0 - 2 * k;
            if down >= 1 && ok(down) {
                return (down as f64 * fs_hz / n as f64, down);
            }
        }
    }
    unreachable!("a clear alias bin always exists for min_alias_bin < n/2");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(32)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn coherent_gain_matches_mean() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Blackman,
            Window::BlackmanHarris4,
        ] {
            let n = 65536;
            let mean: f64 = w.coefficients(n).iter().sum::<f64>() / n as f64;
            assert!(
                (mean - w.coherent_gain()).abs() < 1e-4,
                "{w:?}: mean {mean} vs {}",
                w.coherent_gain()
            );
        }
    }

    #[test]
    fn enbw_matches_definition() {
        // ENBW = n · Σw² / (Σw)²
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Blackman,
            Window::BlackmanHarris4,
        ] {
            let n = 65536;
            let c = w.coefficients(n);
            let sum: f64 = c.iter().sum();
            let sum2: f64 = c.iter().map(|x| x * x).sum();
            let enbw = n as f64 * sum2 / (sum * sum);
            assert!(
                (enbw - w.enbw_bins()).abs() < 1e-3,
                "{w:?}: {enbw} vs {}",
                w.enbw_bins()
            );
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = Window::Hann.coefficients(64);
        assert!(c[0].abs() < 1e-12);
        assert!((c[32] - 1.0).abs() < 1e-12); // peak at centre
    }

    #[test]
    fn apply_preserves_length() {
        let sig = vec![1.0; 128];
        for w in [Window::Rectangular, Window::BlackmanHarris4] {
            assert_eq!(w.apply(&sig).len(), 128);
        }
    }

    #[test]
    fn coherent_frequency_returns_odd_bin() {
        for &target in &[1e6, 10e6, 40e6, 54.9e6] {
            let (f, m) = coherent_frequency(110e6, 8192, target);
            assert_eq!(m % 2, 1, "m={m} not odd for target {target}");
            assert!((f - m as f64 * 110e6 / 8192.0).abs() < 1e-6);
            // Within one bin of the target.
            assert!((f - target).abs() <= 2.0 * 110e6 / 8192.0);
        }
    }

    #[test]
    fn coherent_frequency_supports_undersampling() {
        // 150 MHz at 110 MS/s: m ≈ 150/110·8192 ≈ 11171, odd, alias at
        // a bin below Nyquist.
        let (f, m) = coherent_frequency(110e6, 8192, 150e6);
        assert_eq!(m % 2, 1);
        assert!((f - 150e6).abs() < 2.0 * 110e6 / 8192.0);
        let bin = alias_bin(m, 8192);
        assert!(bin > 0 && bin < 4096, "alias bin {bin}");
    }

    #[test]
    fn alias_bin_folds_correctly() {
        assert_eq!(alias_bin(100, 1024), 100);
        assert_eq!(alias_bin(924, 1024), 100);
        assert_eq!(alias_bin(1124, 1024), 100);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn coherent_frequency_rejects_non_power_of_two() {
        let _ = coherent_frequency(100e6, 1000, 10e6);
    }
}

#[cfg(test)]
mod clear_tests {
    use super::*;

    #[test]
    fn clear_frequency_avoids_dc_alias() {
        // 10 MHz at 5 MS/s: plain coherent choice aliases to bin 1; the
        // clear variant moves it out of the exclusion region.
        let n = 8192;
        let (_, m) = coherent_frequency_clear(5e6, n, 10e6, 8);
        let b = alias_bin(m, n);
        assert!(b >= 8 && b <= n / 2 - 8, "bin {b}");
        assert_eq!(m % 2, 1);
    }

    #[test]
    fn clear_frequency_is_noop_when_already_clear() {
        let n = 8192;
        let (f0, m0) = coherent_frequency(110e6, n, 10e6);
        let (f1, m1) = coherent_frequency_clear(110e6, n, 10e6, 8);
        assert_eq!(m0, m1);
        assert_eq!(f0, f1);
    }

    #[test]
    fn clear_frequency_avoids_nyquist_alias() {
        // 10 MHz at 20 MS/s: alias sits exactly at Nyquist without the
        // nudge.
        let n = 8192;
        let (_, m) = coherent_frequency_clear(20e6, n, 10e6, 8);
        let b = alias_bin(m, n);
        assert!(b <= n / 2 - 8, "bin {b}");
    }
}
