//! Least-squares sine fitting (IEEE Std 1057 three- and four-parameter
//! fits).
//!
//! The FFT path in [`crate::metrics`] needs coherent sampling; the sine-fit
//! path works on any record. Fitting `A·cos(ωt) + B·sin(ωt) + C` and
//! examining the residual gives an independent SINAD estimate, used by the
//! test-suite to cross-check the FFT metrics and by the testbench when a
//! sweep point cannot be made coherent.

/// Result of a sine fit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SineFit {
    /// Fitted amplitude (peak).
    pub amplitude: f64,
    /// Fitted phase, radians.
    pub phase_rad: f64,
    /// Fitted DC offset.
    pub offset: f64,
    /// Fitted frequency, cycles per sample.
    pub freq_cycles_per_sample: f64,
    /// RMS of the fit residual.
    pub residual_rms: f64,
    /// Signal-to-noise-and-distortion implied by the residual, dB.
    pub sinad_db: f64,
}

/// Errors from sine fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SineFitError {
    /// Too few samples to fit the requested model.
    TooFewSamples(usize),
    /// The normal equations were singular (e.g. frequency 0 or Nyquist).
    Singular,
}

impl std::fmt::Display for SineFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SineFitError::TooFewSamples(n) => {
                write!(f, "need more samples than parameters, got {n}")
            }
            SineFitError::Singular => write!(f, "sine-fit normal equations are singular"),
        }
    }
}

impl std::error::Error for SineFitError {}

/// Solves a symmetric 3×3 linear system via Cramer's rule.
fn solve3(m: [[f64; 3]; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let det = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(&m);
    if d.abs() < 1e-300 {
        return None;
    }
    let mut out = [0.0; 3];
    for (col, slot) in out.iter_mut().enumerate() {
        let mut mc = m;
        for row in 0..3 {
            mc[row][col] = b[row];
        }
        *slot = det(&mc) / d;
    }
    Some(out)
}

/// Three-parameter fit at a known frequency (cycles per sample).
///
/// # Errors
///
/// Returns an error if fewer than 4 samples are supplied or the system is
/// singular.
pub fn fit_known_frequency(
    samples: &[f64],
    freq_cycles_per_sample: f64,
) -> Result<SineFit, SineFitError> {
    let n = samples.len();
    if n < 4 {
        return Err(SineFitError::TooFewSamples(n));
    }
    let w = 2.0 * std::f64::consts::PI * freq_cycles_per_sample;
    // Normal equations for [A (cos), B (sin), C].
    let (mut scc, mut sss, mut ssc, mut sc, mut ss) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut syc, mut sys, mut sy) = (0.0, 0.0, 0.0);
    for (i, &y) in samples.iter().enumerate() {
        let (s, c) = (w * i as f64).sin_cos();
        scc += c * c;
        sss += s * s;
        ssc += s * c;
        sc += c;
        ss += s;
        syc += y * c;
        sys += y * s;
        sy += y;
    }
    let m = [[scc, ssc, sc], [ssc, sss, ss], [sc, ss, n as f64]];
    let [a, b, c] = solve3(m, [syc, sys, sy]).ok_or(SineFitError::Singular)?;

    let mut resid2 = 0.0;
    for (i, &y) in samples.iter().enumerate() {
        let (s, co) = (w * i as f64).sin_cos();
        let e = y - (a * co + b * s + c);
        resid2 += e * e;
    }
    let residual_rms = (resid2 / n as f64).sqrt();
    let amplitude = (a * a + b * b).sqrt();
    let sinad_db = if residual_rms > 0.0 {
        20.0 * (amplitude / std::f64::consts::SQRT_2 / residual_rms).log10()
    } else {
        f64::INFINITY
    };
    Ok(SineFit {
        amplitude,
        phase_rad: a.atan2(b),
        offset: c,
        freq_cycles_per_sample,
        residual_rms,
        sinad_db,
    })
}

/// Four-parameter fit: refines the frequency by Gauss–Newton iteration
/// around `freq_guess_cycles_per_sample`.
///
/// # Errors
///
/// Propagates [`fit_known_frequency`] errors.
pub fn fit_refine_frequency(
    samples: &[f64],
    freq_guess_cycles_per_sample: f64,
    iterations: usize,
) -> Result<SineFit, SineFitError> {
    let mut f = freq_guess_cycles_per_sample;
    let mut best = fit_known_frequency(samples, f)?;
    // Golden-section-style local refinement on residual RMS: robust and
    // simple, needs no analytic Jacobian.
    let mut step = freq_guess_cycles_per_sample * 1e-3 + 1e-9;
    for _ in 0..iterations {
        let mut improved = false;
        for cand in [f - step, f + step] {
            if cand <= 0.0 || cand >= 0.5 {
                continue;
            }
            let fit = fit_known_frequency(samples, cand)?;
            if fit.residual_rms < best.residual_rms {
                best = fit;
                f = cand;
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn make(n: usize, f: f64, a: f64, phase: f64, dc: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * PI * f * i as f64 + phase).sin() + dc)
            .collect()
    }

    #[test]
    fn recovers_exact_parameters() {
        let s = make(4096, 0.0517, 0.8, 0.3, 0.05);
        let fit = fit_known_frequency(&s, 0.0517).unwrap();
        assert!((fit.amplitude - 0.8).abs() < 1e-9, "a {}", fit.amplitude);
        assert!((fit.offset - 0.05).abs() < 1e-9);
        assert!(fit.residual_rms < 1e-9);
        assert!(fit.sinad_db > 150.0);
    }

    #[test]
    fn residual_reflects_added_noise() {
        let mut s = make(8192, 0.0317, 1.0, 0.0, 0.0);
        let mut state = 3u64;
        let mut npow = 0.0;
        for y in s.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let nv = u * 0.01;
            npow += nv * nv;
            *y += nv;
        }
        let sigma = (npow / 8192.0).sqrt();
        let fit = fit_known_frequency(&s, 0.0317).unwrap();
        assert!((fit.residual_rms - sigma).abs() / sigma < 0.05);
        let expected_sinad = 20.0 * ((1.0 / 2f64.sqrt()) / sigma).log10();
        assert!((fit.sinad_db - expected_sinad).abs() < 0.5);
    }

    #[test]
    fn frequency_refinement_converges() {
        let true_f = 0.04321;
        let s = make(4096, true_f, 1.0, 0.7, 0.0);
        // Start 0.5% off.
        let fit = fit_refine_frequency(&s, true_f * 1.005, 60).unwrap();
        assert!(
            (fit.freq_cycles_per_sample - true_f).abs() < 2e-6,
            "f {}",
            fit.freq_cycles_per_sample
        );
        assert!(fit.sinad_db > 60.0, "sinad {}", fit.sinad_db);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        assert_eq!(
            fit_known_frequency(&[1.0, 2.0], 0.1),
            Err(SineFitError::TooFewSamples(2))
        );
    }

    #[test]
    fn zero_frequency_is_singular() {
        let s = make(64, 0.05, 1.0, 0.0, 0.0);
        assert_eq!(fit_known_frequency(&s, 0.0), Err(SineFitError::Singular));
    }
}
