//! Static linearity extraction: code-density (histogram) INL/DNL.
//!
//! Table I of the paper quotes DNL = ±1.2 LSB and INL = −1.5/+1 LSB.
//! Those numbers come from the standard sine-wave histogram test: drive the
//! converter with a spectrally pure sine that slightly overdrives both
//! rails, histogram the output codes, and invert the arcsine amplitude
//! distribution to recover the actual code transition levels.
//!
//! Given the cumulative histogram fraction `F(c)` of codes at or below `c`,
//! the transition level between `c` and `c+1` sits at
//! `T(c) = −cos(π·F(c))` in units of the sine amplitude. DNL and INL then
//! follow from the recovered transition levels, with the average LSB taken
//! over the interior codes so rail clipping does not bias the scale.

/// Result of a linearity test.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearityResult {
    /// DNL per code transition, LSB. Length = `code_count − 2` (interior
    /// transitions only; index 0 is the DNL of code 1).
    pub dnl_lsb: Vec<f64>,
    /// INL per code, LSB, endpoint-corrected. Same length as `dnl_lsb`.
    pub inl_lsb: Vec<f64>,
    /// Most positive DNL, LSB.
    pub dnl_max: f64,
    /// Most negative DNL, LSB.
    pub dnl_min: f64,
    /// Most positive INL, LSB.
    pub inl_max: f64,
    /// Most negative INL, LSB.
    pub inl_min: f64,
    /// Codes that never occurred in the record (excluding the rails).
    pub missing_codes: Vec<u32>,
}

impl LinearityResult {
    /// `true` when every interior code was exercised.
    pub fn no_missing_codes(&self) -> bool {
        self.missing_codes.is_empty()
    }
}

/// Errors from the histogram test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearityError {
    /// Fewer than 2 codes in the transfer curve.
    TooFewCodes(u32),
    /// The record was empty.
    EmptyRecord,
    /// The sine did not reach both rails (the histogram test requires
    /// slight overdrive so the end bins are populated).
    InsufficientOverdrive,
}

impl std::fmt::Display for LinearityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearityError::TooFewCodes(n) => write!(f, "need at least 2 codes, got {n}"),
            LinearityError::EmptyRecord => write!(f, "empty code record"),
            LinearityError::InsufficientOverdrive => {
                write!(f, "sine histogram requires both rail codes to be populated")
            }
        }
    }
}

impl std::error::Error for LinearityError {}

/// Runs the sine-wave histogram test over a code record.
///
/// * `codes` — captured output codes;
/// * `code_count` — number of codes in the transfer curve (4096 for 12
///   bits).
///
/// # Errors
///
/// Returns an error if the record is empty, the converter has fewer than
/// two codes, or the record never reaches the rail codes (no overdrive).
///
/// ```
/// use adc_spectral::linearity::sine_histogram;
/// # fn main() -> Result<(), adc_spectral::linearity::LinearityError> {
/// // An ideal 4-bit quantizer measured with an overdriven sine:
/// let n = 1 << 18;
/// let codes: Vec<u32> = (0..n)
///     .map(|i| {
///         let v = 1.02 * (2.0 * std::f64::consts::PI * 1013.0 * i as f64 / n as f64).sin();
///         (((v + 1.0) / 2.0 * 16.0).floor() as i64).clamp(0, 15) as u32
///     })
///     .collect();
/// let lin = sine_histogram(&codes, 16)?;
/// assert!(lin.dnl_max.abs() < 0.05);
/// assert!(lin.inl_max.abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn sine_histogram(codes: &[u32], code_count: u32) -> Result<LinearityResult, LinearityError> {
    if code_count < 2 {
        return Err(LinearityError::TooFewCodes(code_count));
    }
    if codes.is_empty() {
        return Err(LinearityError::EmptyRecord);
    }
    let nc = code_count as usize;
    let mut hist = vec![0u64; nc];
    for &c in codes {
        let idx = (c as usize).min(nc - 1);
        hist[idx] += 1;
    }
    if hist[0] == 0 || hist[nc - 1] == 0 {
        return Err(LinearityError::InsufficientOverdrive);
    }

    let total = codes.len() as f64;
    // Transition levels from the inverse arcsine CDF.
    // transition[c] = level between code c and c+1, c in 0..nc-1.
    let mut cum = 0u64;
    let mut transitions = Vec::with_capacity(nc - 1);
    for &h in hist.iter().take(nc - 1) {
        cum += h;
        let f = cum as f64 / total;
        transitions.push(-(std::f64::consts::PI * f).cos());
    }

    // Average LSB over interior transitions.
    let span = transitions[nc - 2] - transitions[0];
    let lsb = span / (nc - 2) as f64;
    if lsb.is_nan() || lsb <= 0.0 {
        return Err(LinearityError::InsufficientOverdrive);
    }

    // DNL of code c (width of code c, c in 1..nc-1).
    let mut dnl = Vec::with_capacity(nc - 2);
    for c in 1..nc - 1 {
        dnl.push((transitions[c] - transitions[c - 1]) / lsb - 1.0);
    }
    // INL at each interior transition, endpoint-fit (the endpoint line is
    // implicit in the average-LSB normalisation).
    let mut inl = Vec::with_capacity(nc - 2);
    let mut acc = 0.0;
    for &d in &dnl {
        acc += d;
        inl.push(acc);
    }

    let missing_codes = hist[1..nc - 1]
        .iter()
        .enumerate()
        .filter(|(_, &h)| h == 0)
        .map(|(i, _)| (i + 1) as u32)
        .collect();

    let fold = |v: &Vec<f64>, f: fn(f64, f64) -> f64, init: f64| -> f64 {
        v.iter().copied().fold(init, f)
    };
    Ok(LinearityResult {
        dnl_max: fold(&dnl, f64::max, f64::NEG_INFINITY),
        dnl_min: fold(&dnl, f64::min, f64::INFINITY),
        inl_max: fold(&inl, f64::max, f64::NEG_INFINITY),
        inl_min: fold(&inl, f64::min, f64::INFINITY),
        dnl_lsb: dnl,
        inl_lsb: inl,
        missing_codes,
    })
}

/// Runs the *ramp* (uniform-PDF) histogram test over a code record.
///
/// With a slow linear ramp that slightly overdrives both rails, every
/// code should be hit in proportion to its width, so the transition
/// levels are simply the cumulative histogram — no arcsine inversion.
/// Used to cross-check the sine test (their DNL estimates must agree)
/// and preferred when a precision ramp generator is available.
///
/// # Errors
///
/// Same conditions as [`sine_histogram`].
pub fn ramp_histogram(codes: &[u32], code_count: u32) -> Result<LinearityResult, LinearityError> {
    if code_count < 2 {
        return Err(LinearityError::TooFewCodes(code_count));
    }
    if codes.is_empty() {
        return Err(LinearityError::EmptyRecord);
    }
    let nc = code_count as usize;
    let mut hist = vec![0u64; nc];
    for &c in codes {
        hist[(c as usize).min(nc - 1)] += 1;
    }
    if hist[0] == 0 || hist[nc - 1] == 0 {
        return Err(LinearityError::InsufficientOverdrive);
    }
    let total = codes.len() as f64;
    // Uniform PDF: transition level ∝ cumulative count.
    let mut cum = 0u64;
    let mut transitions = Vec::with_capacity(nc - 1);
    for &h in hist.iter().take(nc - 1) {
        cum += h;
        transitions.push(cum as f64 / total);
    }
    let span = transitions[nc - 2] - transitions[0];
    let lsb = span / (nc - 2) as f64;
    if lsb.is_nan() || lsb <= 0.0 {
        return Err(LinearityError::InsufficientOverdrive);
    }
    let mut dnl = Vec::with_capacity(nc - 2);
    for c in 1..nc - 1 {
        dnl.push((transitions[c] - transitions[c - 1]) / lsb - 1.0);
    }
    let mut inl = Vec::with_capacity(nc - 2);
    let mut acc = 0.0;
    for &d in &dnl {
        acc += d;
        inl.push(acc);
    }
    let missing_codes = hist[1..nc - 1]
        .iter()
        .enumerate()
        .filter(|(_, &h)| h == 0)
        .map(|(i, _)| (i + 1) as u32)
        .collect();
    let fold = |v: &Vec<f64>, f: fn(f64, f64) -> f64, init: f64| -> f64 {
        v.iter().copied().fold(init, f)
    };
    Ok(LinearityResult {
        dnl_max: fold(&dnl, f64::max, f64::NEG_INFINITY),
        dnl_min: fold(&dnl, f64::min, f64::INFINITY),
        inl_max: fold(&inl, f64::max, f64::NEG_INFINITY),
        inl_min: fold(&inl, f64::min, f64::INFINITY),
        dnl_lsb: dnl,
        inl_lsb: inl,
        missing_codes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Quantizes an overdriven sine through a transfer curve given by
    /// explicit transition levels (in [-1, 1] amplitude units).
    fn run_through(transitions: &[f64], samples: usize, overdrive: f64) -> Vec<u32> {
        (0..samples)
            .map(|i| {
                // Dense, incommensurate phase sweep covers the PDF.
                let v = overdrive * (2.0 * PI * 0.317_233_091 * i as f64).sin();
                let mut code = 0u32;
                for &t in transitions {
                    if v > t {
                        code += 1;
                    }
                }
                code
            })
            .collect()
    }

    fn ideal_transitions(nc: usize) -> Vec<f64> {
        // nc-1 transitions spread uniformly in (-1, 1).
        (1..nc).map(|c| -1.0 + 2.0 * c as f64 / nc as f64).collect()
    }

    #[test]
    fn ideal_converter_measures_flat() {
        let nc = 64;
        let codes = run_through(&ideal_transitions(nc), 400_000, 1.05);
        let lin = sine_histogram(&codes, nc as u32).unwrap();
        assert!(lin.dnl_max.abs() < 0.05, "dnl_max {}", lin.dnl_max);
        assert!(lin.dnl_min.abs() < 0.05, "dnl_min {}", lin.dnl_min);
        assert!(lin.inl_max.abs() < 0.08, "inl_max {}", lin.inl_max);
        assert!(lin.no_missing_codes());
    }

    #[test]
    fn widened_code_shows_positive_dnl() {
        let nc = 64;
        let mut t = ideal_transitions(nc);
        // Widen code 20 by moving its upper transition up half an LSB.
        let lsb = 2.0 / nc as f64;
        t[20] += 0.5 * lsb;
        let codes = run_through(&t, 400_000, 1.05);
        let lin = sine_histogram(&codes, nc as u32).unwrap();
        // DNL vector index: code c at index c-1.
        assert!(
            (lin.dnl_lsb[19] - 0.5).abs() < 0.1,
            "dnl {}",
            lin.dnl_lsb[19]
        );
        assert!((lin.dnl_lsb[20] + 0.5).abs() < 0.1);
    }

    #[test]
    fn missing_code_is_detected() {
        let nc = 32;
        let mut t = ideal_transitions(nc);
        // Collapse code 10: make its transitions coincide.
        t[10] = t[9];
        let codes = run_through(&t, 200_000, 1.05);
        let lin = sine_histogram(&codes, nc as u32).unwrap();
        assert!(lin.missing_codes.contains(&10));
        assert!(lin.dnl_min < -0.95);
    }

    #[test]
    fn inl_integrates_dnl() {
        let nc = 32;
        let mut t = ideal_transitions(nc);
        let lsb = 2.0 / nc as f64;
        // A bow: shift a band of transitions.
        for tr in t.iter_mut().take(24).skip(8) {
            *tr += 0.3 * lsb;
        }
        let codes = run_through(&t, 300_000, 1.05);
        let lin = sine_histogram(&codes, nc as u32).unwrap();
        let sum: f64 = lin.dnl_lsb.iter().sum();
        assert!((lin.inl_lsb.last().unwrap() - sum).abs() < 1e-9);
        assert!(lin.inl_max > 0.2);
    }

    #[test]
    fn rejects_empty_and_tiny() {
        assert_eq!(sine_histogram(&[], 16), Err(LinearityError::EmptyRecord));
        assert_eq!(
            sine_histogram(&[0, 1], 1),
            Err(LinearityError::TooFewCodes(1))
        );
    }

    #[test]
    fn rejects_underdriven_sine() {
        let nc = 64;
        let codes = run_through(&ideal_transitions(nc), 100_000, 0.8);
        assert_eq!(
            sine_histogram(&codes, nc as u32),
            Err(LinearityError::InsufficientOverdrive)
        );
    }

    /// Quantizes a slow overdriven ramp through explicit transitions.
    fn ramp_through(transitions: &[f64], samples: usize, overdrive: f64) -> Vec<u32> {
        (0..samples)
            .map(|i| {
                let v = -overdrive + 2.0 * overdrive * i as f64 / (samples - 1) as f64;
                let mut code = 0u32;
                for &t in transitions {
                    if v > t {
                        code += 1;
                    }
                }
                code
            })
            .collect()
    }

    #[test]
    fn ramp_test_measures_ideal_converter_flat() {
        let nc = 64;
        let codes = ramp_through(&ideal_transitions(nc), 400_000, 1.05);
        let lin = ramp_histogram(&codes, nc as u32).unwrap();
        assert!(lin.dnl_max.abs() < 0.02, "dnl {}", lin.dnl_max);
        assert!(lin.inl_max.abs() < 0.05, "inl {}", lin.inl_max);
    }

    #[test]
    fn ramp_and_sine_tests_agree_on_a_widened_code() {
        let nc = 64;
        let mut t = ideal_transitions(nc);
        let lsb = 2.0 / nc as f64;
        t[20] += 0.4 * lsb;
        let sine_codes = run_through(&t, 500_000, 1.05);
        let ramp_codes = ramp_through(&t, 500_000, 1.05);
        let sine = sine_histogram(&sine_codes, nc as u32).unwrap();
        let ramp = ramp_histogram(&ramp_codes, nc as u32).unwrap();
        assert!(
            (sine.dnl_lsb[19] - ramp.dnl_lsb[19]).abs() < 0.1,
            "sine {} vs ramp {}",
            sine.dnl_lsb[19],
            ramp.dnl_lsb[19]
        );
    }

    #[test]
    fn ramp_rejects_underdrive_too() {
        let nc = 32;
        let codes = ramp_through(&ideal_transitions(nc), 100_000, 0.5);
        assert_eq!(
            ramp_histogram(&codes, nc as u32),
            Err(LinearityError::InsufficientOverdrive)
        );
    }

    #[test]
    fn out_of_range_codes_clamp_to_top() {
        // Codes above code_count-1 count toward the top rail rather than
        // panicking (a converter bug should surface as data, not a crash).
        let mut codes = run_through(&ideal_transitions(16), 100_000, 1.05);
        codes[0] = 99;
        let lin = sine_histogram(&codes, 16);
        assert!(lin.is_ok());
    }
}

/// Predicts the distortion spectrum implied by a measured INL curve.
///
/// Synthesizes an `n`-point coherent sine of relative amplitude
/// `amplitude_rel` (1.0 = full scale), passes it through the static
/// transfer described by the INL (ideal quantizer + per-code INL error),
/// and analyzes the result — linking the *static* Table I rows to the
/// *dynamic* THD/SFDR ones. Quantization noise is included; thermal
/// noise and dynamic (frequency-dependent) distortion are not, so the
/// prediction is the low-input-frequency static floor.
///
/// `inl_lsb` is indexed like [`LinearityResult::inl_lsb`] (interior
/// codes, starting at code 1).
///
/// # Errors
///
/// Returns an FFT error for a non-power-of-two `n`.
///
/// # Panics
///
/// Panics if `code_count < 4` or the INL vector is longer than the code
/// range.
pub fn predict_tone_from_inl(
    inl_lsb: &[f64],
    code_count: u32,
    amplitude_rel: f64,
    n: usize,
) -> Result<crate::metrics::SingleToneAnalysis, crate::fft::FftError> {
    assert!(code_count >= 4, "need a real transfer curve");
    assert!(
        inl_lsb.len() <= code_count as usize - 2,
        "INL vector longer than the interior code range"
    );
    let nc = code_count as f64;
    let lsb = 2.0 / nc; // full scale normalised to ±1
                        // Coherent odd bin near n/23 for a generic low-frequency tone.
    let cycles = {
        let mut m = (n / 23) | 1;
        if m == 0 {
            m = 1;
        }
        m
    };
    let record: Vec<f64> = (0..n)
        .map(|i| {
            let v = amplitude_rel
                * (2.0 * std::f64::consts::PI * cycles as f64 * i as f64 / n as f64).sin();
            // Ideal midtread quantization to a code...
            let code = ((v + 1.0) / lsb).floor().clamp(0.0, nc - 1.0);
            // ...reconstruction, plus the INL error of that code.
            let ideal_v = (code + 0.5) * lsb - 1.0;
            let idx = code as usize;
            let inl = if idx >= 1 && idx - 1 < inl_lsb.len() {
                inl_lsb[idx - 1]
            } else {
                0.0
            };
            ideal_v + inl * lsb
        })
        .collect();
    crate::metrics::analyze_tone(&record, &crate::metrics::ToneAnalysisConfig::coherent())
}

#[cfg(test)]
mod predict_tests {
    use super::*;

    #[test]
    fn flat_inl_predicts_quantization_limited_sndr() {
        let inl = vec![0.0; 4094];
        let a = predict_tone_from_inl(&inl, 4096, 0.999, 8192).unwrap();
        // Pure 12-bit quantization: ~74 dB SNDR.
        assert!((a.sndr_db - 74.0).abs() < 1.5, "sndr {}", a.sndr_db);
        assert!(a.thd_db < -80.0, "thd {}", a.thd_db);
    }

    #[test]
    fn cubic_inl_bow_predicts_hd3() {
        // INL(code) = 2·x³ LSB with x = normalized position: an odd bow
        // producing third-harmonic distortion.
        let nc = 4096usize;
        let inl: Vec<f64> = (1..nc - 1)
            .map(|c| {
                let x = (c as f64 - nc as f64 / 2.0) / (nc as f64 / 2.0);
                2.0 * x * x * x
            })
            .collect();
        let a = predict_tone_from_inl(&inl, 4096, 0.999, 8192).unwrap();
        let hd3 = a.harmonics.iter().find(|h| h.order == 3).expect("hd3");
        // Error amplitude: 2 LSB · 1/4 coefficient of sin³ → HD3 ≈
        // 20·log10(0.5·LSB / FS-amplitude)… just require HD3 dominant and
        // in the right decade.
        assert!(hd3.dbc > -80.0 && hd3.dbc < -60.0, "hd3 {}", hd3.dbc);
        let hd2 = a.harmonics.iter().find(|h| h.order == 2).expect("hd2");
        assert!(hd2.dbc < hd3.dbc - 10.0, "even term should be absent");
    }

    #[test]
    fn quadratic_inl_bow_predicts_hd2() {
        let nc = 4096usize;
        let inl: Vec<f64> = (1..nc - 1)
            .map(|c| {
                let x = (c as f64 - nc as f64 / 2.0) / (nc as f64 / 2.0);
                1.5 * (1.0 - x * x) - 0.75
            })
            .collect();
        let a = predict_tone_from_inl(&inl, 4096, 0.999, 8192).unwrap();
        let hd2 = a.harmonics.iter().find(|h| h.order == 2).expect("hd2");
        let hd3 = a.harmonics.iter().find(|h| h.order == 3).expect("hd3");
        assert!(
            hd2.dbc > hd3.dbc + 10.0,
            "hd2 {} vs hd3 {}",
            hd2.dbc,
            hd3.dbc
        );
    }
}
