//! Goertzel single-bin DFT.
//!
//! When only a handful of bins matter — a production tester checking the
//! fundamental and the first few harmonics, or a built-in self-test
//! engine on chip — the Goertzel recursion computes one DFT bin in O(n)
//! multiply-adds with O(1) state, no FFT buffer. Results are identical
//! (to rounding) to the corresponding [`crate::fft`] bin.

use crate::complex::Complex64;

/// Computes DFT bin `k` of `signal` by the Goertzel recursion.
///
/// Matches `fft_real(signal)[k]` for any length (power-of-two not
/// required).
///
/// # Panics
///
/// Panics for an empty signal or `k >= signal.len()`.
pub fn goertzel_bin(signal: &[f64], k: usize) -> Complex64 {
    let n = signal.len();
    assert!(n > 0, "empty signal");
    assert!(k < n, "bin {k} out of range for length {n}");
    let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0_f64, 0.0_f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // Final correction to the e^{-j2πkn/N} DFT convention (matching
    // [`crate::fft::fft_real`]), verified bin-by-bin against the FFT in
    // the tests.
    let real = s1 * w.cos() - s2;
    let imag = s1 * w.sin();
    Complex64::new(real, imag)
}

/// Power of bin `k`, normalised like
/// [`crate::fft::power_spectrum_one_sided`] (a full-scale sine of
/// amplitude A reads A²/2 in its bin).
///
/// # Panics
///
/// Same conditions as [`goertzel_bin`].
pub fn goertzel_power(signal: &[f64], k: usize) -> f64 {
    let n = signal.len() as f64;
    let z = goertzel_bin(signal, k);
    let fold = if k == 0 || 2 * k == signal.len() {
        1.0
    } else {
        2.0
    };
    fold * z.norm_sqr() / (n * n)
}

/// Quick tone-power screen: the fundamental at `k` and harmonics
/// `2k..=h_max·k` (folded), returned as `(fundamental_power,
/// harmonic_powers)`.
///
/// # Panics
///
/// Panics for `k == 0` or an empty signal.
pub fn tone_screen(signal: &[f64], k: usize, h_max: usize) -> (f64, Vec<f64>) {
    assert!(k > 0, "fundamental cannot be DC");
    let n = signal.len();
    let fold = |raw: usize| {
        let m = raw % n;
        if m > n / 2 {
            n - m
        } else {
            m
        }
    };
    let fundamental = goertzel_power(signal, k);
    let harmonics = (2..=h_max.max(1))
        .map(|h| goertzel_power(signal, fold(h * k)))
        .collect();
    (fundamental, harmonics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;
    use std::f64::consts::PI;

    fn tone(n: usize, k: usize, a: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * PI * k as f64 * i as f64 / n as f64 + phase).sin())
            .collect()
    }

    #[test]
    fn matches_fft_bins() {
        let n = 1024;
        let sig: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.1).sin() + 0.3 * (i as f64 * 0.57).cos())
            .collect();
        let spec = fft_real(&sig).unwrap();
        for &k in &[0usize, 1, 17, 100, 511, 512] {
            let g = goertzel_bin(&sig, k);
            assert!(
                (g.re - spec[k].re).abs() < 1e-8 && (g.im - spec[k].im).abs() < 1e-8,
                "bin {k}: {g:?} vs {:?}",
                spec[k]
            );
        }
    }

    #[test]
    fn works_for_non_power_of_two_lengths() {
        let n = 1000; // FFT would reject this
        let sig = tone(n, 37, 0.8, 0.3);
        let p = goertzel_power(&sig, 37);
        assert!((p - 0.8 * 0.8 / 2.0).abs() < 1e-9, "p {p}");
    }

    #[test]
    fn power_normalisation_matches_power_spectrum() {
        let n = 512;
        let sig = tone(n, 41, 0.5, 1.1);
        let ps = crate::fft::power_spectrum_one_sided(&sig).unwrap();
        assert!((goertzel_power(&sig, 41) - ps[41]).abs() < 1e-12);
        // DC and Nyquist fold factors.
        let dc: Vec<f64> = vec![0.25; n];
        assert!((goertzel_power(&dc, 0) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn tone_screen_reads_injected_harmonics() {
        let n = 4096;
        let mut sig = tone(n, 401, 1.0, 0.0);
        let h3 = tone(n, 3 * 401, 0.001, 0.0);
        for (s, h) in sig.iter_mut().zip(&h3) {
            *s += h;
        }
        let (fund, harm) = tone_screen(&sig, 401, 5);
        assert!((fund - 0.5).abs() < 1e-6);
        // harm[0] = HD2 (clean), harm[1] = HD3 (injected at -60 dBc).
        assert!(harm[0] < 1e-12);
        let hd3_dbc = 10.0 * (harm[1] / fund).log10();
        assert!((hd3_dbc + 60.0).abs() < 0.1, "hd3 {hd3_dbc}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bin() {
        let _ = goertzel_bin(&[1.0, 2.0], 5);
    }
}
