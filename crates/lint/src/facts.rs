//! Per-function facts feeding the interprocedural passes: panicking
//! constructs, nondeterminism sources, blocking channel operations,
//! dynamic-call sites, and lock-guard acquisition spans.
//!
//! Facts are collected once per function (same textual heuristics as
//! the per-file rules, so the two layers never disagree on what counts
//! as a panic or a wall-clock read) and *discharged at the source* by
//! allow pragmas: a fact whose line carries a matching
//! `adc-lint: allow(..)` never enters propagation, and the consumed
//! allow is reported back so the engine can mark it used.

use crate::config;
use crate::graph::{FileData, Graph, RecvClass, Res};
use crate::lexer::TokenKind;
use crate::rules::NON_INDEX_KEYWORDS;

/// Identity of a lock as seen from inside one function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum LockId {
    /// A workspace-global lock: `Owner.field` or a static's name.
    Concrete(String),
    /// The enclosing function's k-th parameter (resolved per call
    /// site by the lock pass).
    Param(usize),
}

/// What a guard span acquired.
#[derive(Debug, Clone)]
pub(crate) enum AcqKind {
    /// A direct `.lock()`/`.read()`/`.write()` on a known lock.
    Std(Vec<LockId>),
    /// A call to a guard-returning workspace fn — the held set is the
    /// callee's transitive acquisitions (site index into the caller's
    /// call-site list).
    CallEscape(usize),
}

/// One guard-holding span inside a function body (token indices).
#[derive(Debug, Clone)]
pub(crate) struct Acq {
    /// What was acquired.
    pub kind: AcqKind,
    /// Token index where the guard becomes live.
    pub start: usize,
    /// Token index where the guard drops (inclusive).
    pub end: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// All facts for one function symbol.
#[derive(Debug, Clone, Default)]
pub(crate) struct FnFacts {
    /// Undischarged panicking constructs: `(line, description)`.
    pub panic_sites: Vec<(u32, String)>,
    /// Undischarged nondeterminism sources: `(line, description)`.
    pub taint_sites: Vec<(u32, String)>,
    /// Lines of dynamic (fn-value) call sites.
    pub dynamic_sites: Vec<u32>,
    /// Blocking channel ops: `(site token, line, op name)`.
    pub chan_ops: Vec<(usize, u32, String)>,
    /// Guard acquisition spans.
    pub acqs: Vec<Acq>,
}

/// An allow pragma's `(rule, target line)` per file, as the engine
/// resolved it.
pub(crate) type FileAllows = Vec<(String, u32)>;

/// A consumed allow: `(file index, target line, rule)`.
pub(crate) type Consumed = (usize, u32, String);

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Collects facts for every symbol in the graph. `allows[file]` holds
/// that file's pragma targets; discharged facts consume them.
pub(crate) fn collect(
    graph: &Graph,
    files: &[FileData<'_>],
    allows: &[FileAllows],
) -> (Vec<FnFacts>, Vec<Consumed>) {
    let mut out = Vec::with_capacity(graph.syms.len());
    let mut consumed: Vec<Consumed> = Vec::new();
    for (k, sym) in graph.syms.iter().enumerate() {
        let mut facts = FnFacts::default();
        let Some(fd) = files.get(sym.file) else {
            out.push(facts);
            continue;
        };
        let file_allows = allows.get(sym.file).map(Vec::as_slice).unwrap_or(&[]);
        let discharge = |line: u32, rules: &[&str], consumed: &mut Vec<Consumed>| -> bool {
            let mut hit = false;
            for (rule, target) in file_allows {
                if *target == line && rules.contains(&rule.as_str()) {
                    consumed.push((sym.file, *target, rule.clone()));
                    hit = true;
                }
            }
            hit
        };

        let Some((open, close)) = sym.item.body else {
            out.push(facts);
            continue;
        };
        // Nested fns own their token ranges.
        let nested: Vec<(usize, usize)> = graph
            .syms
            .iter()
            .filter(|s| {
                s.file == sym.file
                    && s.item.sig_start > open
                    && s.item.body.is_some_and(|(_, c)| c < close)
                    && s.item.sig_start != sym.item.sig_start
            })
            .filter_map(|s| s.item.body.map(|(_, c)| (s.item.sig_start, c)))
            .collect();
        let skip = |i: usize| nested.iter().any(|&(a, b)| i >= a && i <= b) || fd.maps.in_attr(i);

        let toks = fd.tokens;
        let whole_file_root = config::in_panic_free_scope(fd.rel_path);
        let env_exempt = config::is_env_exempt(fd.rel_path);
        for i in open + 1..close {
            if skip(i) {
                continue;
            }
            let Some(tok) = toks.get(i) else { break };
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            let next = toks.get(i + 1);

            // Panicking constructs — same shapes as the textual
            // `no-panic` rule. Whole-file panic roots are owned by the
            // textual rule; recording them here would double-report.
            if !whole_file_root {
                // A `.expect(..)` that resolved to a *workspace* method
                // is not `Option::expect` — the callee's own body
                // carries its facts; flagging the call would be a
                // false positive on any method that shares the name.
                let resolved_here = |paren: usize| {
                    graph.sites.get(k).is_some_and(|sites| {
                        sites
                            .iter()
                            .any(|s| s.tok == paren && !s.callees.is_empty())
                    })
                };
                let what: Option<String> = if tok.kind == TokenKind::Ident
                    && matches!(tok.text, "unwrap" | "expect" | "unwrap_err" | "expect_err")
                    && prev.is_some_and(|p| p.text == ".")
                    && next.is_some_and(|n| n.text == "(")
                    && !resolved_here(i + 1)
                {
                    Some(format!("`.{}()`", tok.text))
                } else if tok.kind == TokenKind::Ident
                    && PANIC_MACROS.contains(&tok.text)
                    && next.is_some_and(|n| n.text == "!")
                {
                    Some(format!("`{}!`", tok.text))
                } else if tok.text == "[" {
                    let indexes = match prev {
                        Some(p) if p.kind == TokenKind::Ident => {
                            !NON_INDEX_KEYWORDS.contains(&p.text)
                        }
                        Some(p) => matches!(p.text, ")" | "]" | "?"),
                        None => false,
                    };
                    indexes.then(|| "slice indexing".to_string())
                } else {
                    None
                };
                if let Some(what) = what {
                    if !discharge(tok.line, &["panic-reach"], &mut consumed) {
                        facts.panic_sites.push((tok.line, what));
                    }
                }
            }

            // Nondeterminism sources — same shapes as the per-file
            // determinism rules.
            let taint: Option<(&str, String)> = if tok.kind == TokenKind::Ident
                && matches!(tok.text, "Instant" | "SystemTime")
                && next.is_some_and(|n| n.text == "::")
                && toks.get(i + 2).is_some_and(|n| n.text == "now")
            {
                Some(("no-wallclock", format!("`{}::now()`", tok.text)))
            } else if tok.text == "thread"
                && next.is_some_and(|n| n.text == "::")
                && toks.get(i + 2).is_some_and(|n| n.text == "current")
            {
                Some(("no-thread-id", "`thread::current()`".to_string()))
            } else if tok.kind == TokenKind::Ident
                && matches!(tok.text, "HashMap" | "HashSet" | "RandomState")
            {
                Some(("no-hash-collections", format!("`{}`", tok.text)))
            } else if !env_exempt
                && tok.text == "env"
                && next.is_some_and(|n| n.text == "::")
                && toks
                    .get(i + 2)
                    .is_some_and(|n| matches!(n.text, "var" | "var_os" | "vars" | "vars_os"))
            {
                Some((
                    "no-env-read",
                    format!("`env::{}`", toks.get(i + 2).map_or("var", |t| t.text)),
                ))
            } else {
                None
            };
            if let Some((base, desc)) = taint {
                if !discharge(tok.line, &[base, "determinism-taint"], &mut consumed) {
                    facts.taint_sites.push((tok.line, desc));
                }
            }
        }

        // Call-site-derived facts: dynamic calls, channel ops, guard
        // acquisitions.
        let sites = graph.sites.get(k).map(Vec::as_slice).unwrap_or(&[]);
        for (sidx, site) in sites.iter().enumerate() {
            if site.is_ref {
                continue;
            }
            if site.res == Res::Dynamic {
                facts.dynamic_sites.push(site.line);
                continue;
            }
            // Blocking channel ops: `.send(..)`/`.recv()` that is not
            // a workspace method on a typed receiver. An untyped
            // receiver keeps both interpretations (conservative).
            if matches!(site.name.as_str(), "send" | "recv" | "recv_timeout")
                && (site.res == Res::External || site.recv == RecvClass::Unknown)
                && !discharge(site.line, &["lock-across-send"], &mut consumed)
            {
                facts
                    .chan_ops
                    .push((site.tok, site.line, site.name.clone()));
            }
            // Guard acquisitions.
            let std_ids: Option<Vec<LockId>> =
                if matches!(site.name.as_str(), "lock" | "read" | "write")
                    && site.args.is_empty()
                    && site.res == Res::External
                {
                    match &site.recv {
                        RecvClass::LockField(owner, field) => {
                            Some(vec![LockId::Concrete(format!("{owner}.{field}"))])
                        }
                        RecvClass::LockStatic(name) => Some(vec![LockId::Concrete(name.clone())]),
                        RecvClass::LockLocal(name) => {
                            Some(vec![LockId::Concrete(format!("{}::{name}", sym.qname))])
                        }
                        RecvClass::LockParam(kth) => Some(vec![LockId::Param(*kth)]),
                        _ => None,
                    }
                } else {
                    None
                };
            let escapes = site
                .callees
                .iter()
                .any(|&c| graph.syms.get(c).is_some_and(|s| s.item.returns_guard));
            let kind = match std_ids {
                Some(ids) => Some(AcqKind::Std(ids)),
                None if escapes => Some(AcqKind::CallEscape(sidx)),
                None => None,
            };
            if let Some(kind) = kind {
                let end = span_end(fd, (open, close), site.tok);
                facts.acqs.push(Acq {
                    kind,
                    start: site.tok,
                    end,
                    line: site.line,
                });
            }
        }
        out.push(facts);
    }
    (out, consumed)
}

/// Where the guard produced by the acquisition at `tok` drops.
///
/// The binding statement decides: `let g = ..` lives to the enclosing
/// brace close (shortened by an explicit `drop(g)`), `let _ = ..` and
/// plain expression statements are temporaries dropped at the next
/// `;`/`{`, and `match`/`for`/`if let`/`while let` scrutinees live to
/// the end of the following block. All approximations err long — a
/// longer span can only add lock-order edges, never hide one.
fn span_end(fd: &FileData<'_>, body: (usize, usize), tok: usize) -> usize {
    let toks = fd.tokens;
    let (body_open, body_close) = body;
    // Find the statement start: walk back to the nearest `;`/`{`/`}`
    // at reverse bracket depth 0, or an unmatched opener.
    let mut i = tok;
    let mut depth = 0i64;
    let stmt_start = loop {
        if i <= body_open {
            break body_open + 1;
        }
        i -= 1;
        match toks.get(i).map_or("", |t| t.text) {
            ")" | "]" | "}" if depth >= 0 => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth < 0 {
                    break i + 1;
                }
            }
            ";" if depth == 0 => break i + 1,
            _ => {}
        }
    };
    let t0 = toks.get(stmt_start).map_or("", |t| t.text);
    let t1 = toks.get(stmt_start + 1).map_or("", |t| t.text);

    let enclosing_brace_close = || -> usize {
        let mut best: Option<(usize, usize)> = None;
        for o in body_open..tok {
            let c = fd.maps.brace.get(o).copied().unwrap_or(crate::items::NONE);
            if c == crate::items::NONE || toks.get(o).map_or("", |t| t.text) != "{" {
                continue;
            }
            if o < tok && tok < c && best.is_none_or(|(bo, bc)| c - o < bc - bo) {
                best = Some((o, c));
            }
        }
        best.map_or(body_close, |(_, c)| c)
    };
    let next_block_close = || -> usize {
        let mut depth = 0i64;
        let mut j = tok;
        while j < body_close {
            match toks.get(j).map_or("", |t| t.text) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    return fd
                        .maps
                        .brace
                        .get(j)
                        .copied()
                        .filter(|&c| c != crate::items::NONE)
                        .unwrap_or(body_close);
                }
                _ => {}
            }
            j += 1;
        }
        body_close
    };
    let next_terminator = || -> usize {
        let mut depth = 0i64;
        let mut j = tok;
        while j < body_close {
            match toks.get(j).map_or("", |t| t.text) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" | "{" if depth <= 0 => return j,
                _ => {}
            }
            j += 1;
        }
        body_close
    };

    // A chain that continues past the guard consumes it as a
    // temporary: `let own = q.lock().expect("..").pop_front();` binds
    // the popped value, and the guard drops at the `;`. Only the
    // guard-preserving adapters `.unwrap()`/`.expect(..)` keep the
    // let-bound classification.
    let chained_past_guard = || -> bool {
        let mut j = fd
            .maps
            .paren
            .get(tok)
            .copied()
            .unwrap_or(crate::items::NONE);
        loop {
            if j == crate::items::NONE || j + 1 >= toks.len() {
                return false;
            }
            if toks.get(j + 1).map_or("", |t| t.text) != "." {
                return false;
            }
            let name = toks.get(j + 2).map_or("", |t| t.text);
            if !matches!(name, "unwrap" | "expect") || toks.get(j + 3).map_or("", |t| t.text) != "("
            {
                return true;
            }
            j = fd
                .maps
                .paren
                .get(j + 3)
                .copied()
                .unwrap_or(crate::items::NONE);
        }
    };

    if t0 == "let" {
        if chained_past_guard() {
            return next_terminator();
        }
        // Binding name: last lower-case ident in the pattern before
        // `=` (skipping `mut`); `_` alone is a temporary.
        let eq = (stmt_start..tok)
            .find(|&j| toks.get(j).is_some_and(|t| t.text == "="))
            .unwrap_or(tok);
        let name = (stmt_start + 1..eq)
            .filter_map(|j| toks.get(j))
            .rfind(|t| {
                t.kind == TokenKind::Ident
                    && t.text != "mut"
                    && t.text
                        .starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
            })
            .map(|t| t.text);
        match name {
            None | Some("_") => return next_terminator(),
            Some(n) => {
                let close = enclosing_brace_close();
                // `drop(n)` releases early.
                let mut j = tok;
                while j + 3 <= close {
                    if toks.get(j).is_some_and(|t| t.text == "drop")
                        && toks.get(j + 1).is_some_and(|t| t.text == "(")
                        && toks.get(j + 2).is_some_and(|t| t.text == n)
                        && toks.get(j + 3).is_some_and(|t| t.text == ")")
                    {
                        return j;
                    }
                    j += 1;
                }
                return close;
            }
        }
    }
    if (t0 == "if" || t0 == "while") && t1 == "let" {
        return next_block_close();
    }
    if t0 == "match" || t0 == "for" {
        return next_block_close();
    }
    next_terminator()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileData};
    use crate::items::{parse_file, token_maps};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn facts_for(src: &str, path: &str, fn_name: &str) -> FnFacts {
        let lexed = lex(src);
        let maps = token_maps(&lexed.tokens);
        let spans = test_spans(&lexed.tokens);
        let items = parse_file(path, &lexed.tokens, &maps, &spans);
        let fd = FileData {
            rel_path: path,
            tokens: &lexed.tokens,
            maps: &maps,
            items: &items,
        };
        let files = [fd];
        let graph = build(&files);
        let (facts, _) = collect(&graph, &files, &[Vec::new()]);
        let idx = graph
            .syms
            .iter()
            .position(|s| s.item.name == fn_name)
            .unwrap_or_else(|| panic!("no fn {fn_name}"));
        facts.get(idx).cloned().unwrap_or_default()
    }

    #[test]
    fn panic_and_taint_facts_are_per_function() {
        let f = facts_for(
            "pub fn bad(v: &[u8]) -> u8 { v[0] }\n\
             pub fn worse(o: Option<u8>) -> u8 { o.unwrap() }\n\
             pub fn timed() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            "crates/server/src/h.rs",
            "bad",
        );
        assert_eq!(f.panic_sites.len(), 1);
        assert!(f.panic_sites[0].1.contains("indexing"));
        let f2 = facts_for(
            "pub fn worse(o: Option<u8>) -> u8 { o.unwrap() }\n",
            "crates/server/src/h.rs",
            "worse",
        );
        assert_eq!(f2.panic_sites.len(), 1);
        let f3 = facts_for(
            "pub fn timed() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            "crates/server/src/h.rs",
            "timed",
        );
        assert_eq!(f3.taint_sites.len(), 1);
        assert!(f3.taint_sites[0].1.contains("Instant"));
    }

    #[test]
    fn let_bound_guards_live_to_brace_close_and_drop_shortens() {
        let src = "pub struct S { m: Mutex<u32> }\n\
             impl S {\n\
             pub fn held(&self) {\n    let g = self.m.lock();\n    work();\n}\n\
             pub fn dropped(&self) {\n    let g = self.m.lock();\n    drop(g);\n    work();\n}\n\
             pub fn temp(&self) {\n    self.m.lock();\n    work();\n}\n\
             }\npub fn work() {}\n";
        let held = facts_for(src, "crates/runtime/src/s.rs", "held");
        assert_eq!(held.acqs.len(), 1);
        let dropped = facts_for(src, "crates/runtime/src/s.rs", "dropped");
        let temp = facts_for(src, "crates/runtime/src/s.rs", "temp");
        assert_eq!(dropped.acqs.len(), 1);
        assert!(
            dropped.acqs[0].end < held.acqs[0].end
                || dropped.acqs[0].end - dropped.acqs[0].start
                    < held.acqs[0].end - held.acqs[0].start,
            "drop(g) must shorten the span"
        );
        assert!(
            temp.acqs[0].end - temp.acqs[0].start < held.acqs[0].end - held.acqs[0].start,
            "temporary guard must be shorter than let-bound"
        );
        match &held.acqs[0].kind {
            AcqKind::Std(ids) => {
                assert_eq!(ids, &vec![LockId::Concrete("S.m".to_string())]);
            }
            other => panic!("expected Std acquisition, got {other:?}"),
        }
    }

    #[test]
    fn guard_consumed_by_a_chain_is_a_temporary() {
        // Mirrors the work-stealing idiom in runtime::pool: the let
        // binds the popped element, not the guard, so the guard must
        // not be treated as held for the rest of the block.
        let src = "pub struct S { m: Mutex<Vec<u32>> }\n\
             impl S {\n\
             pub fn chained(&self) {\n    let own = self.m.lock().expect(\"q\").pop();\n    work();\n}\n\
             pub fn held(&self) {\n    let g = self.m.lock().expect(\"q\");\n    work();\n}\n\
             }\npub fn work() {}\n";
        let chained = facts_for(src, "crates/runtime/src/s.rs", "chained");
        let held = facts_for(src, "crates/runtime/src/s.rs", "held");
        assert_eq!(chained.acqs.len(), 1);
        assert_eq!(held.acqs.len(), 1);
        assert!(
            chained.acqs[0].end - chained.acqs[0].start < held.acqs[0].end - held.acqs[0].start,
            "chain-consumed guard must drop at the statement end"
        );
    }

    #[test]
    fn channel_ops_and_dynamic_sites_are_recorded() {
        let f = facts_for(
            "pub fn pump(tx: &Sender<u32>, f: &dyn Fn() -> u32) {\n    tx.send(f());\n}\n",
            "crates/runtime/src/c.rs",
            "pump",
        );
        assert_eq!(f.chan_ops.len(), 1);
        assert_eq!(f.chan_ops[0].2, "send");
        assert_eq!(f.dynamic_sites.len(), 1);
    }

    #[test]
    fn whole_file_panic_roots_leave_facts_to_the_textual_rule() {
        let f = facts_for(
            "pub fn decode(v: &[u8]) -> u8 { v[0] }\n",
            "crates/server/src/protocol.rs",
            "decode",
        );
        assert!(f.panic_sites.is_empty());
    }
}
