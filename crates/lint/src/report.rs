//! Diagnostics and the machine-readable report.
//!
//! A [`Diagnostic`] is one rule violation at one `file:line`. A
//! [`Report`] aggregates a whole scan and renders two ways: the
//! compiler-style human listing (`file:line: [rule] message`) and a
//! JSON document for tooling. The JSON codec is symmetric —
//! [`Report::to_json`] / [`Report::from_json`] round-trip exactly,
//! which the fixture tests assert — so CI artifacts can be parsed back
//! without an external JSON dependency.

use std::fmt::Write as _;

/// One rule violation (or pragma problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`no-panic`, `float-eq`, ... or the meta rules
    /// `unused-allow` / `bad-pragma`).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Compiler-style one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of scanning a workspace (or a single virtual file).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All diagnostics, ordered by file then line.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `true` when the scan produced no diagnostics of any kind.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human listing: one line per diagnostic plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}", d.render());
        }
        let _ = writeln!(
            out,
            "adc-lint: {} file(s) scanned, {} diagnostic(s)",
            self.files_scanned,
            self.diagnostics.len()
        );
        out
    }

    /// Serializes the report as a stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(&d.rule),
                json_string(&d.file),
                d.line,
                json_string(&d.message)
            );
        }
        if self.diagnostics.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem. The
    /// parser accepts the subset of JSON the emitter produces (objects,
    /// arrays, strings, integers, booleans) in any key order.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
        .parse_document()?;
        let JsonValue::Object(fields) = value else {
            return Err("top level is not an object".into());
        };
        let mut report = Report::default();
        let mut clean: Option<bool> = None;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("version", JsonValue::Number(1)) => {}
                ("version", JsonValue::Number(v)) => {
                    return Err(format!("unsupported report version {v}"));
                }
                ("files_scanned", JsonValue::Number(n)) => report.files_scanned = n as usize,
                ("clean", JsonValue::Bool(b)) => clean = Some(b),
                ("diagnostics", JsonValue::Array(items)) => {
                    for item in items {
                        report.diagnostics.push(diagnostic_from(item)?);
                    }
                }
                (other, _) => return Err(format!("unexpected key {other:?}")),
            }
        }
        if clean.is_some_and(|c| c != report.is_clean()) {
            return Err("`clean` flag contradicts the diagnostics list".into());
        }
        Ok(report)
    }
}

fn diagnostic_from(value: JsonValue) -> Result<Diagnostic, String> {
    let JsonValue::Object(fields) = value else {
        return Err("diagnostic is not an object".into());
    };
    let mut d = Diagnostic {
        rule: String::new(),
        file: String::new(),
        line: 0,
        message: String::new(),
    };
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("rule", JsonValue::Str(s)) => d.rule = s,
            ("file", JsonValue::Str(s)) => d.file = s,
            ("line", JsonValue::Number(n)) => d.line = n as u32,
            ("message", JsonValue::Str(s)) => d.message = s,
            (other, _) => return Err(format!("unexpected diagnostic key {other:?}")),
        }
    }
    if d.rule.is_empty() || d.file.is_empty() {
        return Err("diagnostic missing rule or file".into());
    }
    Ok(d)
}

/// Escapes and quotes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (the emitter's subset: no floats, no null)
// ---------------------------------------------------------------------------

enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    Str(String),
    Number(u64),
    Bool(bool),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn parse_document(mut self) -> Result<JsonValue, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(value)
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\r' | b'\n') {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::Str(self.parse_string()?)),
            b't' | b'f' => self.parse_bool(),
            c if c.is_ascii_digit() => self.parse_number(),
            c => Err(format!("unexpected byte {c:?} at offset {}", self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                c => return Err(format!("unexpected byte {c:?} in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => return Err(format!("unexpected byte {c:?} in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated string".into()),
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("bad \\u escape")?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(self.bytes.get(self.pos..).unwrap_or(&[]))
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| "bad number".into())
    }

    fn parse_bool(&mut self) -> Result<JsonValue, String> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(b"true") {
            self.pos += 4;
            Ok(JsonValue::Bool(true))
        } else if rest.starts_with(b"false") {
            self.pos += 5;
            Ok(JsonValue::Bool(false))
        } else {
            Err("bad literal".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            diagnostics: vec![
                Diagnostic {
                    rule: "no-panic".into(),
                    file: "crates/server/src/protocol.rs".into(),
                    line: 42,
                    message: "`.unwrap()` in a panic-free file".into(),
                },
                Diagnostic {
                    rule: "float-eq".into(),
                    file: "crates/analog/src/mos.rs".into(),
                    line: 7,
                    message: "float compared with `==` — quote \"and\\backslash\"".into(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = Report::default();
        assert!(report.is_clean());
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,2", "{\"version\": 2}", "{\"x\": nope}"] {
            assert!(Report::from_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn human_rendering_is_compiler_style() {
        let text = sample().render_human();
        assert!(text.contains("crates/server/src/protocol.rs:42: [no-panic]"));
        assert!(text.contains("3 file(s) scanned, 2 diagnostic(s)"));
    }
}
