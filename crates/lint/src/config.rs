//! Rule scoping: which workspace paths each invariant binds.
//!
//! Paths are workspace-relative with `/` separators. The scopes mirror
//! the claims the repo actually makes: determinism is a property of
//! the simulation and campaign crates (the server and bench layers may
//! time things — latency histograms *are* wall-clock), while
//! panic-freedom binds exactly the code whose docs promise totality.
//!
//! Every entry here is verified against the scanned workspace by the
//! `config-drift` meta-diagnostic: a root directory with no scanned
//! files, a root file that does not exist, or a root symbol that names
//! no function is a deny-mode error — stale entries must not silently
//! check nothing.

/// Crates whose results must be a pure function of config and seed —
/// any `src/` file under these roots is in determinism scope.
pub const DETERMINISM_ROOTS: &[&str] = &[
    "crates/runtime/src",
    "crates/pipeline/src",
    "crates/spectral/src",
    "crates/testbench/src",
    "crates/bias/src",
    "crates/analog/src",
    "crates/digital/src",
    // Background calibration feeds corrections back into conversion:
    // any nondeterminism here (wall-clock adaptation, hash-order state)
    // would silently fork served ganged records from in-process runs.
    "crates/calib/src",
    // The tracing subsystem instruments the crates above, so it binds
    // the same rules: its one wall-clock site (the collector epoch) is
    // pragma-annotated, and span ids/lane numbering use no thread ids.
    "crates/trace/src",
    // The cluster executor promises bit-identical results regardless
    // of schedule, host count, or host loss; wall-clock reads, hash
    // iteration order, or thread-id dependence in its scheduling
    // would all be routes for the schedule to leak into results.
    // Timeouts go through `thread::sleep` / `Condvar::wait_timeout` /
    // socket read timeouts, which never feed values back into data.
    "crates/cluster/src",
];

/// Individual files in determinism scope inside crates that are
/// otherwise exempt. The server crate as a whole may time things —
/// latency histograms *are* wall-clock — but the reactor decides
/// dispatch order, request coalescing, and admission shedding, and
/// every one of those decisions must be a function of arrival order
/// and config, never of wall-clock reads, thread identity, or hash
/// iteration order.
pub const DETERMINISM_FILES: &[&str] = &["crates/server/src/reactor.rs"];

/// A panic-freedom root: either a whole file (every function in it is
/// a root and the textual `no-panic` rule also binds the file), or one
/// named function given as `path::symbol` (the transitive pass alone
/// covers it, diagnosing as `panic-reach`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicRoot {
    /// Workspace-relative file path.
    pub path: &'static str,
    /// `None` = every function in `path`; `Some(name)` = that one
    /// function (free fn or method — matched by name within the file).
    pub symbol: Option<&'static str>,
}

/// Functions whose documented contract is "total, never panics" — the
/// transitive panic-reachability pass denies any path from these to a
/// panicking construct anywhere in the workspace. This replaces the
/// old `PANIC_FREE_FILES` textual list: the whole-file entries keep
/// the exact per-file `no-panic` rule as before, and the call graph
/// extends the guarantee through every helper they reach.
pub const PANIC_ROOTS: &[PanicRoot] = &[
    // Protocol decode runs on untrusted bytes from the wire.
    PanicRoot {
        path: "crates/server/src/protocol.rs",
        symbol: None,
    },
    // The result cache parses on-disk state that may be from an older
    // epoch, truncated, or corrupt.
    PanicRoot {
        path: "crates/runtime/src/cache.rs",
        symbol: None,
    },
    // The analyzer meets its own bar: the surfaces documented as total
    // over arbitrary input (lexing any byte soup, parsing any JSON
    // report) are panic-free transitively. The pass internals run only
    // on workspace source that compiles, so they are not rooted — a
    // panic there is a CI failure, not a prod decode crash.
    PanicRoot {
        path: "crates/lint/src/lexer.rs",
        symbol: Some("lex"),
    },
    PanicRoot {
        path: "crates/lint/src/report.rs",
        symbol: Some("from_json"),
    },
    PanicRoot {
        path: "crates/lint/src/pragma.rs",
        symbol: Some("parse_allows"),
    },
    // The reactor's frame-ingest path runs on untrusted wire bytes
    // before any request is admitted; a panic here takes down every
    // pipelined connection on the reactor thread, not just the sender.
    PanicRoot {
        path: "crates/server/src/reactor.rs",
        symbol: Some("ingest"),
    },
];

/// The one place allowed to read process environment variables.
pub const ENV_EXEMPT_FILES: &[&str] = &["crates/bench/src/cli.rs"];

/// Crates the lock-order pass reports on (the graph itself is built
/// workspace-wide so cross-crate nesting is seen; diagnostics bind the
/// crates that actually share locks across threads).
pub const LOCK_SCOPES: &[&str] = &[
    "crates/runtime/src",
    "crates/server/src",
    "crates/trace/src",
    "crates/cluster/src",
];

/// `true` when `rel_path` falls under a determinism-scoped crate or
/// is one of the individually scoped [`DETERMINISM_FILES`].
pub fn in_determinism_scope(rel_path: &str) -> bool {
    under_any(rel_path, DETERMINISM_ROOTS) || DETERMINISM_FILES.contains(&rel_path)
}

/// `true` when the whole of `rel_path` must be panic-free (whole-file
/// panic roots — the textual `no-panic` rule binds these exactly as
/// the old `PANIC_FREE_FILES` list did).
pub fn in_panic_free_scope(rel_path: &str) -> bool {
    PANIC_ROOTS
        .iter()
        .any(|r| r.symbol.is_none() && r.path == rel_path)
}

/// `true` when `rel_path` may read environment variables.
pub fn is_env_exempt(rel_path: &str) -> bool {
    ENV_EXEMPT_FILES.contains(&rel_path)
}

/// `true` when `rel_path` is in lock-order reporting scope.
pub fn in_lock_scope(rel_path: &str) -> bool {
    under_any(rel_path, LOCK_SCOPES)
}

fn under_any(rel_path: &str, roots: &[&str]) -> bool {
    roots.iter().any(|root| {
        rel_path
            .strip_prefix(root)
            .is_some_and(|r| r.starts_with('/'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_scope_is_prefix_per_directory() {
        assert!(in_determinism_scope("crates/runtime/src/pool.rs"));
        assert!(in_determinism_scope("crates/spectral/src/fft.rs"));
        // The planned-FFT machinery (plan cache, scratch buffers) is
        // hot-path *and* determinism-scoped: its global plan cache must
        // stay ordered (BTreeMap) and free of wall-clock or thread-id
        // dependence.
        assert!(in_determinism_scope("crates/spectral/src/plan.rs"));
        assert!(in_determinism_scope("crates/trace/src/collector.rs"));
        // The calibration engine and the interleaved array it corrects
        // are both load-bearing for ganged bit-identity.
        assert!(in_determinism_scope("crates/calib/src/engine.rs"));
        assert!(in_determinism_scope("crates/pipeline/src/interleave.rs"));
        // The cluster scheduler's promise is schedule-independence:
        // its sources sit in determinism scope so no wall-clock or
        // hash-order dependence can creep into work distribution.
        assert!(in_determinism_scope("crates/cluster/src/executor.rs"));
        // The reactor is file-scoped: its dispatch, coalescing, and
        // shedding decisions must not depend on clocks or hash order,
        // while the rest of the server crate stays exempt (latency
        // metrics are wall-clock by design).
        assert!(in_determinism_scope("crates/server/src/reactor.rs"));
        assert!(!in_determinism_scope("crates/server/src/server.rs"));
        assert!(!in_determinism_scope("crates/bench/src/cli.rs"));
        // No false prefix matches on sibling names.
        assert!(!in_determinism_scope("crates/runtime/src2/x.rs"));
    }

    #[test]
    fn panic_free_and_env_scopes_are_exact_files() {
        assert!(in_panic_free_scope("crates/server/src/protocol.rs"));
        assert!(in_panic_free_scope("crates/runtime/src/cache.rs"));
        assert!(!in_panic_free_scope("crates/server/src/server.rs"));
        // Symbol-level roots do not put their whole file in textual
        // panic-free scope — only the named function, transitively.
        assert!(!in_panic_free_scope("crates/lint/src/lexer.rs"));
        assert!(!in_panic_free_scope("crates/server/src/reactor.rs"));
        assert!(is_env_exempt("crates/bench/src/cli.rs"));
        assert!(!is_env_exempt("crates/bench/src/lib.rs"));
    }

    #[test]
    fn lock_scope_covers_the_threaded_crates() {
        assert!(in_lock_scope("crates/runtime/src/pool.rs"));
        assert!(in_lock_scope("crates/server/src/jobs.rs"));
        assert!(in_lock_scope("crates/trace/src/collector.rs"));
        assert!(in_lock_scope("crates/cluster/src/executor.rs"));
        assert!(!in_lock_scope("crates/pipeline/src/converter.rs"));
    }
}
