//! Rule scoping: which workspace paths each invariant binds.
//!
//! Paths are workspace-relative with `/` separators. The scopes mirror
//! the claims the repo actually makes: determinism is a property of
//! the simulation and campaign crates (the server and bench layers may
//! time things — latency histograms *are* wall-clock), while
//! panic-freedom binds exactly the files whose docs promise totality.

/// Crates whose results must be a pure function of config and seed —
/// any `src/` file under these roots is in determinism scope.
pub const DETERMINISM_ROOTS: &[&str] = &[
    "crates/runtime/src",
    "crates/pipeline/src",
    "crates/spectral/src",
    "crates/testbench/src",
    "crates/bias/src",
    "crates/analog/src",
    "crates/digital/src",
    // Background calibration feeds corrections back into conversion:
    // any nondeterminism here (wall-clock adaptation, hash-order state)
    // would silently fork served ganged records from in-process runs.
    "crates/calib/src",
    // The tracing subsystem instruments the crates above, so it binds
    // the same rules: its one wall-clock site (the collector epoch) is
    // pragma-annotated, and span ids/lane numbering use no thread ids.
    "crates/trace/src",
    // The cluster executor promises bit-identical results regardless
    // of schedule, host count, or host loss; wall-clock reads, hash
    // iteration order, or thread-id dependence in its scheduling
    // would all be routes for the schedule to leak into results.
    // Timeouts go through `thread::sleep` / `Condvar::wait_timeout` /
    // socket read timeouts, which never feed values back into data.
    "crates/cluster/src",
];

/// Files whose documented contract is "total, never panics".
pub const PANIC_FREE_FILES: &[&str] = &[
    "crates/server/src/protocol.rs",
    "crates/runtime/src/cache.rs",
];

/// The one place allowed to read process environment variables.
pub const ENV_EXEMPT_FILES: &[&str] = &["crates/bench/src/cli.rs"];

/// `true` when `rel_path` falls under a determinism-scoped crate.
pub fn in_determinism_scope(rel_path: &str) -> bool {
    DETERMINISM_ROOTS.iter().any(|root| {
        rel_path
            .strip_prefix(root)
            .is_some_and(|r| r.starts_with('/'))
    })
}

/// `true` when `rel_path` must be panic-free.
pub fn in_panic_free_scope(rel_path: &str) -> bool {
    PANIC_FREE_FILES.contains(&rel_path)
}

/// `true` when `rel_path` may read environment variables.
pub fn is_env_exempt(rel_path: &str) -> bool {
    ENV_EXEMPT_FILES.contains(&rel_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_scope_is_prefix_per_directory() {
        assert!(in_determinism_scope("crates/runtime/src/pool.rs"));
        assert!(in_determinism_scope("crates/spectral/src/fft.rs"));
        // The planned-FFT machinery (plan cache, scratch buffers) is
        // hot-path *and* determinism-scoped: its global plan cache must
        // stay ordered (BTreeMap) and free of wall-clock or thread-id
        // dependence.
        assert!(in_determinism_scope("crates/spectral/src/plan.rs"));
        assert!(in_determinism_scope("crates/trace/src/collector.rs"));
        // The calibration engine and the interleaved array it corrects
        // are both load-bearing for ganged bit-identity.
        assert!(in_determinism_scope("crates/calib/src/engine.rs"));
        assert!(in_determinism_scope("crates/pipeline/src/interleave.rs"));
        // The cluster scheduler's promise is schedule-independence:
        // its sources sit in determinism scope so no wall-clock or
        // hash-order dependence can creep into work distribution.
        assert!(in_determinism_scope("crates/cluster/src/executor.rs"));
        assert!(!in_determinism_scope("crates/server/src/server.rs"));
        assert!(!in_determinism_scope("crates/bench/src/cli.rs"));
        // No false prefix matches on sibling names.
        assert!(!in_determinism_scope("crates/runtime/src2/x.rs"));
    }

    #[test]
    fn panic_free_and_env_scopes_are_exact_files() {
        assert!(in_panic_free_scope("crates/server/src/protocol.rs"));
        assert!(in_panic_free_scope("crates/runtime/src/cache.rs"));
        assert!(!in_panic_free_scope("crates/server/src/server.rs"));
        assert!(is_env_exempt("crates/bench/src/cli.rs"));
        assert!(!is_env_exempt("crates/bench/src/lib.rs"));
    }
}
