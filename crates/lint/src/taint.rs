//! Determinism-taint propagation.
//!
//! A function is *tainted* when it contains an undischarged
//! nondeterminism source (wall-clock read, thread id, hash-order
//! collection, env read) or calls a tainted function. Sources inside
//! the determinism-scoped crates are already per-file errors; this
//! pass catches *laundering* — a determinism-scoped caller reaching a
//! source hidden in a helper crate outside the scope. One diagnostic
//! fires per scope-boundary call site, carrying the witness chain down
//! to the source.

use std::collections::{BTreeMap, VecDeque};

use crate::config;
use crate::facts::FnFacts;
use crate::graph::{FileData, Graph};
use crate::report::Diagnostic;

/// Runs the pass; returns raw (pre-suppression) diagnostics.
pub(crate) fn run(graph: &Graph, files: &[FileData<'_>], facts: &[FnFacts]) -> Vec<Diagnostic> {
    // next_hop[f] = callee on f's path to a source (None at sources).
    let mut next_hop: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for (idx, f) in facts.iter().enumerate() {
        if !f.taint_sites.is_empty() {
            next_hop.insert(idx, None);
            queue.push_back(idx);
        }
    }
    // Reverse edges.
    let mut callers: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (caller, sites) in graph.sites.iter().enumerate() {
        for site in sites {
            for &callee in &site.callees {
                callers.entry(callee).or_default().push(caller);
            }
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &caller in callers.get(&cur).map(Vec::as_slice).unwrap_or(&[]) {
            if next_hop.contains_key(&caller) {
                continue;
            }
            next_hop.insert(caller, Some(cur));
            queue.push_back(caller);
        }
    }

    let mut out = Vec::new();
    for (caller_idx, sites) in graph.sites.iter().enumerate() {
        let Some(caller) = graph.syms.get(caller_idx) else {
            continue;
        };
        let Some(caller_fd) = files.get(caller.file) else {
            continue;
        };
        if !config::in_determinism_scope(caller_fd.rel_path) {
            continue;
        }
        for site in sites {
            for &callee_idx in &site.callees {
                if !next_hop.contains_key(&callee_idx) {
                    continue;
                }
                let Some(callee) = graph.syms.get(callee_idx) else {
                    continue;
                };
                let callee_path = files
                    .get(callee.file)
                    .map(|f| f.rel_path)
                    .unwrap_or_default();
                // In-scope callees are covered by the per-file source
                // rules; the boundary is where laundering happens.
                if config::in_determinism_scope(callee_path) {
                    continue;
                }
                let (chain, src) = trace(graph, files, facts, &next_hop, callee_idx);
                out.push(Diagnostic {
                    rule: "determinism-taint".to_string(),
                    file: caller_fd.rel_path.to_string(),
                    line: site.line,
                    message: format!(
                        "determinism-scoped code calls `{}`, which reaches {src} \
                         (via {chain}); results would stop being a pure function of \
                         config and seed",
                        callee.qname
                    ),
                });
            }
        }
    }
    out
}

/// Witness chain from `start` down to its source, plus the source
/// description.
fn trace(
    graph: &Graph,
    files: &[FileData<'_>],
    facts: &[FnFacts],
    next_hop: &BTreeMap<usize, Option<usize>>,
    start: usize,
) -> (String, String) {
    let mut chain = Vec::new();
    let mut cur = start;
    let mut guard = 0;
    loop {
        chain.push(
            graph
                .syms
                .get(cur)
                .map(|s| s.qname.clone())
                .unwrap_or_default(),
        );
        match next_hop.get(&cur) {
            Some(Some(next)) if guard < 32 => {
                cur = *next;
                guard += 1;
            }
            _ => break,
        }
    }
    let src = facts
        .get(cur)
        .and_then(|f| f.taint_sites.first())
        .map(|(line, desc)| {
            let path = graph
                .syms
                .get(cur)
                .and_then(|s| files.get(s.file))
                .map(|f| f.rel_path)
                .unwrap_or_default();
            format!("{desc} at {path}:{line}")
        })
        .unwrap_or_else(|| "a nondeterminism source".to_string());
    (chain.join(" -> "), src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts;
    use crate::graph::{build, FileData};
    use crate::items::{parse_file, token_maps};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = sources.iter().map(|(_, s)| lex(s)).collect();
        let maps: Vec<_> = lexed.iter().map(|l| token_maps(&l.tokens)).collect();
        let spans: Vec<_> = lexed.iter().map(|l| test_spans(&l.tokens)).collect();
        let items: Vec<_> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&spans)
            .map(|((((p, _), l), m), sp)| parse_file(p, &l.tokens, m, sp))
            .collect();
        let data: Vec<FileData<'_>> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&items)
            .map(|((((p, _), l), m), it)| FileData {
                rel_path: p,
                tokens: &l.tokens,
                maps: m,
                items: it,
            })
            .collect();
        let graph = build(&data);
        let allows = vec![Vec::new(); data.len()];
        let (fx, _) = facts::collect(&graph, &data, &allows);
        run(&graph, &data, &fx)
    }

    #[test]
    fn laundered_wallclock_fires_at_the_scope_boundary() {
        let diags = run_on(&[
            (
                "crates/runtime/src/job.rs",
                "use adc_server::util::stamp;\npub fn seed_jobs() -> u64 { stamp() }\n",
            ),
            (
                "crates/server/src/util.rs",
                "pub fn stamp() -> u64 { ticks() }\n\
                 pub fn ticks() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "determinism-taint");
        assert_eq!(diags[0].file, "crates/runtime/src/job.rs");
        assert!(diags[0].message.contains("Instant::now"));
        assert!(diags[0].message.contains("server::util::ticks"));
    }

    #[test]
    fn in_scope_sources_are_left_to_the_per_file_rule() {
        let diags = run_on(&[(
            "crates/runtime/src/job.rs",
            "pub fn seed() -> u64 { helper() }\n\
             pub fn helper() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        )]);
        // Both fns are in scope: the textual no-wallclock rule owns the
        // source; no boundary diagnostic.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn untainted_out_of_scope_helpers_are_fine() {
        let diags = run_on(&[
            (
                "crates/runtime/src/job.rs",
                "use adc_server::util::pure;\npub fn seed_jobs() -> u64 { pure(7) }\n",
            ),
            (
                "crates/server/src/util.rs",
                "pub fn pure(x: u64) -> u64 { x * 3 }\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
