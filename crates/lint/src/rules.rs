//! The rule catalogue: each rule encodes one invariant the workspace
//! claims to hold.
//!
//! | rule | invariant | scope |
//! |---|---|---|
//! | `no-wallclock` | no `Instant::now` / `SystemTime::now` | determinism crates |
//! | `no-thread-id` | no `thread::current()` identity | determinism crates |
//! | `no-hash-collections` | no `HashMap`/`HashSet`/`RandomState` | determinism crates |
//! | `no-env-read` | no `std::env::var*` reads | everywhere but `crates/bench/src/cli.rs` |
//! | `no-panic` | no `unwrap`/`expect`/panicking macros/slice indexing | panic-free files |
//! | `float-eq` | no `==`/`!=` against float literals / NaN | whole workspace |
//! | `nan-ord` | no `partial_cmp(..).unwrap()` — use `total_cmp` | whole workspace |
//! | `safety-comment` | every `unsafe` carries a `// SAFETY:` comment | whole workspace |
//! | `panic-reach` | no panic reachable from a panic root | call graph from `PANIC_ROOTS` |
//! | `callgraph-opaque` | no fn-value calls on root paths | call graph from `PANIC_ROOTS` |
//! | `determinism-taint` | no nondeterminism laundered via helpers | determinism crates' callees |
//! | `lock-order` | lock-order graph acyclic | `LOCK_SCOPES` crates |
//! | `lock-across-send` | no guard across blocking channel op | `LOCK_SCOPES` crates |
//!
//! The first eight are per-file token rules (this module); the last
//! five are interprocedural, computed over the workspace call graph
//! (see [`crate::graph`] and the pass modules). They share the allow
//! pragma mechanism and this catalogue.
//!
//! Rules are lexical: they match token subsequences, not syntax trees.
//! That makes them conservative in a specific, documented direction —
//! `float-eq` only fires when a literal (or NaN/INFINITY path) appears
//! beside the operator, because identifier-vs-identifier comparisons
//! are type-invisible at the token level. The suppression mechanism
//! for intentional sites is the allow pragma (see [`crate::pragma`]),
//! never an engine special case.
//!
//! `#[cfg(test)]` items are skipped entirely: tests may panic, probe
//! env vars, and hash freely — the invariants protect shipped code.

use crate::config;
use crate::lexer::{Comment, Token, TokenKind};
use crate::report::Diagnostic;

/// Static description of one rule, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier used in diagnostics and allow pragmas.
    pub id: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// Every rule the engine knows, in diagnostic-priority order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-wallclock",
        summary: "determinism crates must not read Instant::now/SystemTime::now",
    },
    RuleInfo {
        id: "no-thread-id",
        summary: "determinism crates must not branch on thread::current() identity",
    },
    RuleInfo {
        id: "no-hash-collections",
        summary: "determinism crates must not use HashMap/HashSet/RandomState (iteration order)",
    },
    RuleInfo {
        id: "no-env-read",
        summary: "std::env::var* reads are confined to crates/bench/src/cli.rs",
    },
    RuleInfo {
        id: "no-panic",
        summary: "panic-free files: no unwrap/expect/panicking macros/slice indexing",
    },
    RuleInfo {
        id: "float-eq",
        summary: "no ==/!= against float literals or NaN — compare with tolerance or to_bits",
    },
    RuleInfo {
        id: "nan-ord",
        summary: "no partial_cmp(..).unwrap() — use f64::total_cmp",
    },
    RuleInfo {
        id: "safety-comment",
        summary: "every `unsafe` must be annotated with a // SAFETY: comment",
    },
    RuleInfo {
        id: "panic-reach",
        summary: "no panicking construct reachable from a declared panic root (transitive)",
    },
    RuleInfo {
        id: "callgraph-opaque",
        summary: "no fn-value calls on panic-root paths — the call graph cannot see through them",
    },
    RuleInfo {
        id: "determinism-taint",
        summary: "determinism crates must not reach nondeterminism sources via helper crates",
    },
    RuleInfo {
        id: "lock-order",
        summary: "the workspace lock-order graph must be acyclic (deadlock freedom)",
    },
    RuleInfo {
        id: "lock-across-send",
        summary: "no guard held across a blocking channel send/recv",
    },
];

/// `true` when `id` names a real (non-meta) rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Everything a rule can see about one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// Code tokens.
    pub tokens: &'a [Token<'a>],
    /// Comment side channel.
    pub comments: &'a [Comment<'a>],
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_spans: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn diag(&self, rule: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            file: self.rel_path.to_string(),
            line,
            message,
        }
    }
}

/// Computes the `#[cfg(test)]` item spans of a token stream: the lines
/// covered by any item whose attribute list contains `cfg` with a
/// `test` token inside its parentheses (covers `#[cfg(test)]` and
/// `#[cfg(all(test, ...))]`).
pub fn test_spans(tokens: &[Token<'_>]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && matches(tokens, i + 1, &["["]) {
            let (is_test_cfg, after_attr) = parse_attr(tokens, i + 2);
            if is_test_cfg {
                // Skip any further attributes, then find the item's end:
                // the matching `}` of its first block, or a `;`.
                let mut j = after_attr;
                while j < tokens.len() && tokens[j].text == "#" {
                    let (_, next) = parse_attr(tokens, j + 2);
                    j = next;
                }
                let start_line = tokens[i].line;
                let end_line = item_end_line(tokens, j);
                spans.push((start_line, end_line));
            }
            i = after_attr;
        } else {
            i += 1;
        }
    }
    spans
}

/// Parses one attribute starting just after `#[`; returns whether it is
/// a test `cfg` and the index just past the closing `]`. A `cfg`
/// containing `not` anywhere (`#[cfg(not(test))]`) is conservatively
/// treated as non-test: skipping production-only code would hide real
/// violations, while scanning a few extra test lines only costs an
/// explicit pragma.
fn parse_attr(tokens: &[Token<'_>], start: usize) -> (bool, usize) {
    let is_cfg = tokens.get(start).is_some_and(|t| t.text == "cfg");
    let mut depth = 1usize; // the `[` already consumed
    let mut has_test = false;
    let mut has_not = false;
    let mut i = start;
    while i < tokens.len() && depth > 0 {
        match tokens[i].text {
            "[" => depth += 1,
            "]" => depth -= 1,
            "test" => has_test = true,
            "not" => has_not = true,
            _ => {}
        }
        i += 1;
    }
    (is_cfg && has_test && !has_not, i)
}

/// Finds the last line of the item starting at `start`: skips to the
/// first `{` (tracking none-yet), then to its matching `}`; a `;`
/// before any `{` ends the item immediately.
fn item_end_line(tokens: &[Token<'_>], start: usize) -> u32 {
    let mut i = start;
    let mut brace_depth = 0usize;
    let mut entered = false;
    while i < tokens.len() {
        match tokens[i].text {
            ";" if !entered => return tokens[i].line,
            "{" => {
                brace_depth += 1;
                entered = true;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    return tokens[i].line;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.last().map_or(0, |t| t.line)
}

fn matches(tokens: &[Token<'_>], at: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| tokens.get(at + k).is_some_and(|t| t.text == *want))
}

/// Keywords that can legally precede a `[` that is *not* an index
/// expression (`let [a, b] = ...`, `if let [x] = ...`, `in [1, 2]`).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "move", "box", "dyn",
    "as", "const", "static", "type", "where", "use", "impl", "for",
];

/// Runs every applicable rule over one file.
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let determinism = config::in_determinism_scope(ctx.rel_path);
    let panic_free = config::in_panic_free_scope(ctx.rel_path);
    let env_exempt = config::is_env_exempt(ctx.rel_path);
    let toks = ctx.tokens;

    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(tok.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let prev2 = i.checked_sub(2).and_then(|p| toks.get(p));

        if determinism && tok.kind == TokenKind::Ident {
            // no-wallclock: `Instant::now` / `SystemTime::now`.
            if tok.text == "now"
                && prev.is_some_and(|p| p.text == "::")
                && prev2.is_some_and(|p| p.text == "Instant" || p.text == "SystemTime")
            {
                let source = prev2.map_or("", |p| p.text);
                out.push(ctx.diag(
                    "no-wallclock",
                    tok.line,
                    format!(
                        "`{source}::now()` is a wall-clock read; campaign results must be \
                         a pure function of config and seed"
                    ),
                ));
            }
            // no-thread-id: `thread::current`.
            if tok.text == "current"
                && prev.is_some_and(|p| p.text == "::")
                && prev2.is_some_and(|p| p.text == "thread")
            {
                out.push(
                    ctx.diag(
                        "no-thread-id",
                        tok.line,
                        "`thread::current()` exposes scheduler-dependent identity; derive \
                     per-job state from the campaign seed instead"
                            .to_string(),
                    ),
                );
            }
            // no-hash-collections.
            if matches!(tok.text, "HashMap" | "HashSet" | "RandomState") {
                out.push(ctx.diag(
                    "no-hash-collections",
                    tok.line,
                    format!(
                        "`{}` has randomized iteration order; use BTreeMap/BTreeSet or a \
                         sorted Vec so results cannot depend on hash seeding",
                        tok.text
                    ),
                ));
            }
        }

        // no-env-read: `env::var` family, workspace-wide except cli.rs.
        if !env_exempt
            && tok.kind == TokenKind::Ident
            && matches!(tok.text, "var" | "var_os" | "vars" | "vars_os")
            && prev.is_some_and(|p| p.text == "::")
            && prev2.is_some_and(|p| p.text == "env")
        {
            out.push(ctx.diag(
                "no-env-read",
                tok.line,
                format!(
                    "`env::{}` read outside crates/bench/src/cli.rs; route configuration \
                     through CampaignArgs so env handling stays in one tested place",
                    tok.text
                ),
            ));
        }

        if panic_free {
            // `.unwrap()` / `.expect(`.
            if tok.kind == TokenKind::Ident
                && matches!(tok.text, "unwrap" | "expect")
                && prev.is_some_and(|p| p.text == ".")
            {
                out.push(ctx.diag(
                    "no-panic",
                    tok.line,
                    format!(
                        "`.{}()` in a panic-free file; return a typed error instead",
                        tok.text
                    ),
                ));
            }
            // Panicking macros.
            if tok.kind == TokenKind::Ident
                && matches!(
                    tok.text,
                    "panic"
                        | "unreachable"
                        | "todo"
                        | "unimplemented"
                        | "assert"
                        | "assert_eq"
                        | "assert_ne"
                        | "debug_assert"
                        | "debug_assert_eq"
                        | "debug_assert_ne"
                )
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                out.push(ctx.diag(
                    "no-panic",
                    tok.line,
                    format!(
                        "`{}!` in a panic-free file; decode paths must be total",
                        tok.text
                    ),
                ));
            }
            // Slice/array indexing: `expr[...]` — a `[` directly after
            // an identifier (non-keyword), `)`, `]`, or `?`.
            if tok.text == "[" {
                let indexes = match prev {
                    Some(p) if p.kind == TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text),
                    Some(p) => matches!(p.text, ")" | "]" | "?"),
                    None => false,
                };
                if indexes {
                    out.push(
                        ctx.diag(
                            "no-panic",
                            tok.line,
                            "slice indexing in a panic-free file; use `.get(..)` and map the \
                         miss to a typed error"
                                .to_string(),
                        ),
                    );
                }
            }
        }

        // float-eq: `==`/`!=` with a float literal or NaN beside it.
        if tok.kind == TokenKind::Punct && (tok.text == "==" || tok.text == "!=") {
            let next = toks.get(i + 1);
            let next2 = toks.get(i + 2);
            let float_beside = prev.is_some_and(|p| p.kind == TokenKind::Float)
                || next.is_some_and(|n| n.kind == TokenKind::Float)
                || (next.is_some_and(|n| n.text == "-")
                    && next2.is_some_and(|n| n.kind == TokenKind::Float))
                || prev.is_some_and(|p| p.text == "NAN")
                || next.is_some_and(|n| n.text == "NAN")
                // `x == f64::NAN` — NAN three tokens after the operator.
                || (next2.is_some_and(|n| n.text == "::")
                    && toks.get(i + 3).is_some_and(|n| n.text == "NAN"));
            if float_beside {
                out.push(ctx.diag(
                    "float-eq",
                    tok.line,
                    format!(
                        "float compared with `{}`; exact float equality is almost never \
                         intended — compare with a tolerance, `.to_bits()`, or annotate \
                         the exact-comparison intent with an allow pragma",
                        tok.text
                    ),
                ));
            }
        }

        // nan-ord: `partial_cmp( ... ).unwrap()` / `.expect(`.
        if tok.kind == TokenKind::Ident
            && tok.text == "partial_cmp"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_paren(toks, i + 1) {
                if matches(toks, close + 1, &["."])
                    && toks
                        .get(close + 2)
                        .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
                {
                    out.push(
                        ctx.diag(
                            "nan-ord",
                            tok.line,
                            "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` \
                         for a total, panic-free ordering"
                                .to_string(),
                        ),
                    );
                }
            }
        }

        // safety-comment: every `unsafe` needs a nearby `// SAFETY:`.
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            let annotated = ctx.comments.iter().any(|c| {
                c.text.trim_start().starts_with("SAFETY:")
                    && c.line + 3 >= tok.line
                    && c.line <= tok.line
            });
            if !annotated {
                out.push(
                    ctx.diag(
                        "safety-comment",
                        tok.line,
                        "`unsafe` without a `// SAFETY:` comment on the preceding lines; \
                     state the invariant that makes this sound"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open`, if balanced.
fn matching_paren(tokens: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        check_file(&FileCtx {
            rel_path: path,
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            test_spans: &spans,
        })
    }

    #[test]
    fn wallclock_fires_only_in_determinism_scope() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(check("crates/runtime/src/x.rs", src).len(), 1);
        assert_eq!(check("crates/server/src/x.rs", src).len(), 0);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let m = HashMap::new(); }\n}\n";
        assert!(check("crates/runtime/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_heuristic_spares_patterns_and_macros() {
        let path = "crates/server/src/protocol.rs";
        assert!(check(path, "fn f() { let [a, b] = pair; }").is_empty());
        assert!(check(path, "fn f() { let v = vec![1, 2]; }").is_empty());
        assert!(check(path, "fn f(x: [u8; 4]) {}").is_empty());
        assert_eq!(check(path, "fn f() { let x = buf[0]; }").len(), 1);
        assert_eq!(check(path, "fn f() { g()?[0]; }").len(), 1);
    }

    #[test]
    fn float_eq_needs_a_literal_or_nan() {
        let path = "crates/analog/src/x.rs";
        assert_eq!(check(path, "fn f(x: f64) -> bool { x == 0.0 }").len(), 1);
        assert_eq!(check(path, "fn f(x: f64) -> bool { x == -1.5 }").len(), 1);
        assert_eq!(
            check(path, "fn f(x: f64) -> bool { x == f64::NAN }").len(),
            1
        );
        assert!(check(path, "fn f(a: u32, b: u32) -> bool { a == b }").is_empty());
        assert!(check(path, "fn f(x: f64) -> bool { x.to_bits() == 42 }").is_empty());
    }

    #[test]
    fn nan_ord_matches_through_closure_arguments() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(check("crates/spectral/src/x.rs", src).len(), 1);
        let fixed = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(check("crates/spectral/src/x.rs", fixed).is_empty());
    }

    #[test]
    fn safety_comment_within_three_lines_satisfies() {
        let bad = "fn f() { unsafe { g() } }";
        assert_eq!(check("crates/digital/src/x.rs", bad).len(), 1);
        let good = "// SAFETY: g upholds the aliasing contract.\nfn f() { unsafe { g() } }";
        assert!(check("crates/digital/src/x.rs", good).is_empty());
    }

    #[test]
    fn env_read_exempt_in_cli() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        assert_eq!(check("crates/testbench/src/x.rs", src).len(), 1);
        assert!(check("crates/bench/src/cli.rs", src).is_empty());
    }
}
