//! Interprocedural lock-order analysis.
//!
//! Guard spans from [`crate::facts`] give each function its directly
//! held locks; a fixpoint propagates acquisition sets and
//! blocking-send behaviour through the call graph, mapping lock-typed
//! parameters through call-site arguments (the `lock_ignore_poison(&M)`
//! and `fn lock(&self) -> MutexGuard` wrapper idioms both resolve to
//! the concrete lock at the call site). Nesting — span-over-span
//! within one function, or a call made while a guard is held whose
//! callee transitively acquires — becomes a directed edge in the
//! workspace lock-order graph. A cycle (including a self-loop: taking
//! a lock while already holding it) is a potential deadlock and is
//! denied, as is any blocking channel `send`/`recv` under a guard.
//!
//! Edges are collected workspace-wide; diagnostics bind the crates in
//! [`crate::config::LOCK_SCOPES`].
//!
//! Unlike reachability, this pass follows only **uniquely** resolved
//! calls. An ambiguous site fans out to every same-named candidate,
//! and one shared method name (`len`, `lock`, `get`) would import
//! unrelated acquisition sets and fabricate deadlock cycles on clean
//! code — a deny-mode false positive. Skipping non-unique edges is a
//! documented under-approximation in the direction this pass can
//! afford: a missed edge loses one witness, not soundness of the rest.

use std::collections::{BTreeMap, BTreeSet};

use crate::config;
use crate::facts::{Acq, AcqKind, FnFacts, LockId};
use crate::graph::{CallSite, FileData, Graph, RecvClass, Res};
use crate::report::Diagnostic;

/// Transitive acquisition summary for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Workspace-global lock ids this fn may acquire.
    concrete: BTreeSet<String>,
    /// Own parameters this fn may lock (mapped at call sites).
    params: BTreeSet<usize>,
    /// May perform a blocking channel op.
    sends: bool,
}

/// One witness for a lock-order edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Witness {
    file: String,
    line: u32,
    qname: String,
}

/// One edge witness: `(file, line, holder qname)`.
pub(crate) type LockWitness = (String, u32, String);

/// The exported lock-order graph: edges with their witnesses.
#[derive(Debug, Clone, Default)]
pub(crate) struct LockGraph {
    /// `(held, acquired)` → witnesses.
    pub edges: BTreeMap<(String, String), Vec<LockWitness>>,
}

/// Runs the pass; returns raw diagnostics plus the lock graph for
/// `--graph-out`.
pub(crate) fn run(
    graph: &Graph,
    files: &[FileData<'_>],
    facts: &[FnFacts],
) -> (Vec<Diagnostic>, LockGraph) {
    let summaries = fixpoint(graph, facts);
    let mut edges: BTreeMap<(String, String), BTreeSet<Witness>> = BTreeMap::new();
    let mut out = Vec::new();

    for (k, f) in facts.iter().enumerate() {
        let Some(sym) = graph.syms.get(k) else {
            continue;
        };
        let Some(fd) = files.get(sym.file) else {
            continue;
        };
        let sites = graph.sites.get(k).map(Vec::as_slice).unwrap_or(&[]);
        let in_scope = config::in_lock_scope(fd.rel_path);
        let spans: Vec<(usize, Vec<String>)> = f
            .acqs
            .iter()
            .enumerate()
            .map(|(a, acq)| (a, span_ids(graph, sym, sites, &summaries, acq)))
            .collect();

        // Span-over-span nesting.
        for (ai, acq_a) in f.acqs.iter().enumerate() {
            let a_ids = spans.get(ai).map(|(_, v)| v.as_slice()).unwrap_or(&[]);
            for (bi, acq_b) in f.acqs.iter().enumerate() {
                if ai == bi || acq_b.start <= acq_a.start || acq_b.start > acq_a.end {
                    continue;
                }
                let b_ids = spans.get(bi).map(|(_, v)| v.as_slice()).unwrap_or(&[]);
                for a in a_ids {
                    for b in b_ids {
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_default()
                            .insert(Witness {
                                file: fd.rel_path.to_string(),
                                line: acq_b.line,
                                qname: sym.qname.clone(),
                            });
                    }
                }
            }
            // Calls made while this guard is held (unique only).
            for (sidx, site) in sites.iter().enumerate() {
                if site.is_ref
                    || site.res != Res::Unique
                    || site.tok <= acq_a.start
                    || site.tok > acq_a.end
                    || is_own_site(acq_a, sidx)
                {
                    continue;
                }
                let mut acquired: BTreeSet<String> = BTreeSet::new();
                let mut sends_under_lock = false;
                let mut sender = String::new();
                for &c in &site.callees {
                    let Some(cs) = summaries.get(c) else { continue };
                    acquired.extend(cs.concrete.iter().cloned());
                    for &p in &cs.params {
                        if let Some(id) = map_arg(sym, site, p) {
                            acquired.insert(id);
                        }
                    }
                    if cs.sends {
                        sends_under_lock = true;
                        sender = graph
                            .syms
                            .get(c)
                            .map(|s| s.qname.clone())
                            .unwrap_or_default();
                    }
                }
                for a in a_ids {
                    for b in &acquired {
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_default()
                            .insert(Witness {
                                file: fd.rel_path.to_string(),
                                line: site.line,
                                qname: sym.qname.clone(),
                            });
                    }
                }
                if sends_under_lock && in_scope {
                    out.push(Diagnostic {
                        rule: "lock-across-send".to_string(),
                        file: fd.rel_path.to_string(),
                        line: site.line,
                        message: format!(
                            "call into `{sender}` performs a blocking channel op while \
                             {} is held; drop the guard first or make the send \
                             non-blocking",
                            held_desc(a_ids),
                        ),
                    });
                }
            }
            // Direct channel ops under this guard.
            if in_scope {
                for (tok, line, op) in &f.chan_ops {
                    if *tok > acq_a.start && *tok <= acq_a.end {
                        out.push(Diagnostic {
                            rule: "lock-across-send".to_string(),
                            file: fd.rel_path.to_string(),
                            line: *line,
                            message: format!(
                                "blocking channel `.{op}(..)` while {} is held; a full \
                                 or disconnected channel would park this thread with \
                                 the lock taken",
                                held_desc(a_ids),
                            ),
                        });
                    }
                }
            }
        }
    }

    // Cycle detection over the concrete-id digraph.
    out.extend(cycle_diagnostics(&edges));

    let lock_graph = LockGraph {
        edges: edges
            .into_iter()
            .map(|(k, ws)| {
                (
                    k,
                    ws.into_iter().map(|w| (w.file, w.line, w.qname)).collect(),
                )
            })
            .collect(),
    };
    (out, lock_graph)
}

fn is_own_site(acq: &Acq, sidx: usize) -> bool {
    matches!(acq.kind, AcqKind::CallEscape(s) if s == sidx)
}

fn held_desc(ids: &[String]) -> String {
    match ids.first() {
        Some(id) => format!("lock `{id}`"),
        None => "a lock guard".to_string(),
    }
}

/// Concrete lock ids held by one guard span.
fn span_ids(
    graph: &Graph,
    sym: &crate::graph::Sym,
    sites: &[CallSite],
    summaries: &[Summary],
    acq: &Acq,
) -> Vec<String> {
    let mut out = BTreeSet::new();
    match &acq.kind {
        AcqKind::Std(ids) => {
            for id in ids {
                match id {
                    LockId::Concrete(s) => {
                        out.insert(s.clone());
                    }
                    // A param lock has no workspace-global identity
                    // inside this fn; callers see it via arg mapping.
                    LockId::Param(_) => {}
                }
            }
        }
        AcqKind::CallEscape(sidx) => {
            if let Some(site) = sites.get(*sidx).filter(|s| s.res == Res::Unique) {
                for &c in &site.callees {
                    let Some(cs) = summaries.get(c) else { continue };
                    out.extend(cs.concrete.iter().cloned());
                    for &p in &cs.params {
                        if let Some(id) = map_arg(sym, site, p) {
                            out.insert(id);
                        }
                    }
                }
            }
        }
    }
    let _ = graph;
    out.into_iter().collect()
}

/// Maps a callee's lock-typed parameter `p` to a concrete id via the
/// call-site argument. Unknown arguments drop (documented
/// under-approximation).
fn map_arg(caller: &crate::graph::Sym, site: &CallSite, p: usize) -> Option<String> {
    match site.arg_class.get(p)? {
        RecvClass::LockField(owner, field) => Some(format!("{owner}.{field}")),
        RecvClass::LockStatic(name) => Some(name.clone()),
        RecvClass::LockLocal(name) => Some(format!("{}::{name}", caller.qname)),
        _ => None,
    }
}

/// Propagates acquisition sets and send behaviour to a fixpoint.
fn fixpoint(graph: &Graph, facts: &[FnFacts]) -> Vec<Summary> {
    let n = graph.syms.len();
    let mut summaries: Vec<Summary> = vec![Summary::default(); n];
    for (k, f) in facts.iter().enumerate() {
        let Some(s) = summaries.get_mut(k) else {
            continue;
        };
        s.sends = !f.chan_ops.is_empty();
        for acq in &f.acqs {
            if let AcqKind::Std(ids) = &acq.kind {
                for id in ids {
                    match id {
                        LockId::Concrete(c) => {
                            s.concrete.insert(c.clone());
                        }
                        LockId::Param(p) => {
                            s.params.insert(*p);
                        }
                    }
                }
            }
        }
    }
    for _ in 0..n.max(4) {
        let mut changed = false;
        for k in 0..n {
            let Some(sym) = graph.syms.get(k) else {
                continue;
            };
            let sites = graph.sites.get(k).map(Vec::as_slice).unwrap_or(&[]);
            let mut next = summaries.get(k).cloned().unwrap_or_default();
            for site in sites {
                if site.is_ref || site.res != Res::Unique {
                    continue;
                }
                for &c in &site.callees {
                    let Some(cs) = summaries.get(c).cloned() else {
                        continue;
                    };
                    next.concrete.extend(cs.concrete.iter().cloned());
                    for &p in &cs.params {
                        match map_arg(sym, site, p) {
                            Some(id) => {
                                next.concrete.insert(id);
                            }
                            None => {
                                // Caller passes its own param through.
                                if let Some(RecvClass::LockParam(j)) = site.arg_class.get(p) {
                                    next.params.insert(*j);
                                }
                            }
                        }
                    }
                    next.sends |= cs.sends;
                }
            }
            if summaries.get(k) != Some(&next) {
                if let Some(slot) = summaries.get_mut(k) {
                    *slot = next;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// One `lock-order` diagnostic per strongly-connected component that
/// contains a cycle, anchored at its lexicographically-first in-scope
/// witness.
fn cycle_diagnostics(edges: &BTreeMap<(String, String), BTreeSet<Witness>>) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
        adj.entry(b.as_str()).or_default();
    }
    // A node is cyclic if it can reach itself through at least one edge.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            for &nxt in adj
                .get(cur)
                .map(|s| s.iter().collect::<Vec<_>>())
                .unwrap_or_default()
            {
                if nxt == to {
                    return true;
                }
                if seen.insert(nxt) {
                    stack.push(nxt);
                }
            }
        }
        false
    };
    let cyclic: BTreeSet<&str> = adj.keys().copied().filter(|&n| reaches(n, n)).collect();
    // Group cyclic nodes into components (mutual reachability).
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut out = Vec::new();
    for &node in &cyclic {
        if assigned.contains(node) {
            continue;
        }
        let comp: Vec<&str> = cyclic
            .iter()
            .copied()
            .filter(|&m| m == node || (reaches(node, m) && reaches(m, node)))
            .collect();
        for &m in &comp {
            assigned.insert(m);
        }
        // Witnesses of in-component edges, in-scope files only.
        let mut witnesses: Vec<&Witness> = edges
            .iter()
            .filter(|((a, b), _)| comp.contains(&a.as_str()) && comp.contains(&b.as_str()))
            .flat_map(|(_, ws)| ws.iter())
            .filter(|w| config::in_lock_scope(&w.file))
            .collect();
        witnesses.sort();
        let Some(w) = witnesses.first() else {
            continue;
        };
        let ring = if comp.len() == 1 {
            format!("`{0}` -> `{0}` (re-entrant acquisition)", node)
        } else {
            let mut r = comp
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            r.push_str(&format!(" -> `{}`", comp.first().copied().unwrap_or("")));
            r
        };
        out.push(Diagnostic {
            rule: "lock-order".to_string(),
            file: w.file.clone(),
            line: w.line,
            message: format!(
                "lock-order cycle: {ring}; acquired here in `{}` — a concurrent \
                 thread taking these locks in the other order deadlocks. Establish \
                 one global order or merge the locks",
                w.qname
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts;
    use crate::graph::{build, FileData};
    use crate::items::{parse_file, token_maps};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run_on(sources: &[(&str, &str)]) -> (Vec<Diagnostic>, LockGraph) {
        let lexed: Vec<_> = sources.iter().map(|(_, s)| lex(s)).collect();
        let maps: Vec<_> = lexed.iter().map(|l| token_maps(&l.tokens)).collect();
        let spans: Vec<_> = lexed.iter().map(|l| test_spans(&l.tokens)).collect();
        let items: Vec<_> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&spans)
            .map(|((((p, _), l), m), sp)| parse_file(p, &l.tokens, m, sp))
            .collect();
        let data: Vec<FileData<'_>> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&items)
            .map(|((((p, _), l), m), it)| FileData {
                rel_path: p,
                tokens: &l.tokens,
                maps: m,
                items: it,
            })
            .collect();
        let graph = build(&data);
        let allows = vec![Vec::new(); data.len()];
        let (fx, _) = facts::collect(&graph, &data, &allows);
        run(&graph, &data, &fx)
    }

    #[test]
    fn ab_ba_cycle_is_denied() {
        let (diags, lg) = run_on(&[(
            "crates/runtime/src/two.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             pub fn ab() {\n    let a = A.lock();\n    let b = B.lock();\n}\n\
             pub fn ba() {\n    let b = B.lock();\n    let a = A.lock();\n}\n",
        )]);
        let cycles: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains('A') && cycles[0].message.contains('B'));
        assert!(lg.edges.contains_key(&("A".to_string(), "B".to_string())));
        assert!(lg.edges.contains_key(&("B".to_string(), "A".to_string())));
    }

    #[test]
    fn consistent_order_is_clean() {
        let (diags, lg) = run_on(&[(
            "crates/runtime/src/two.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             pub fn ab() {\n    let a = A.lock();\n    let b = B.lock();\n}\n\
             pub fn ab_again() {\n    let a = A.lock();\n    let b = B.lock();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(lg.edges.len(), 1);
    }

    #[test]
    fn interprocedural_cycle_through_a_wrapper_is_found() {
        let (diags, _) = run_on(&[
            (
                "crates/cluster/src/shared.rs",
                "pub struct Shared { pub sched: Mutex<u32> }\n\
                 impl Shared {\n    pub fn lock(&self) -> MutexGuard<'_, u32> { self.sched.lock().unwrap_or_else(e) }\n}\n",
            ),
            (
                "crates/cluster/src/user.rs",
                "static REGISTRY: Mutex<u32> = Mutex::new(0);\n\
                 pub fn one(s: &Shared) {\n    let g = s.lock();\n    let r = REGISTRY.lock();\n}\n\
                 pub fn two(s: &Shared) {\n    let r = REGISTRY.lock();\n    let g = s.lock();\n}\n",
            ),
        ]);
        let cycles: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains("Shared.sched"));
        assert!(cycles[0].message.contains("REGISTRY"));
    }

    #[test]
    fn param_locks_map_through_helper_calls() {
        let (diags, _) = run_on(&[(
            "crates/trace/src/h.rs",
            "static ACTIVE: Mutex<u32> = Mutex::new(0);\n\
             static LANES: Mutex<u32> = Mutex::new(0);\n\
             pub fn lock_ignore_poison(m: &Mutex<u32>) -> MutexGuard<'_, u32> { m.lock().unwrap_or_else(e) }\n\
             pub fn fwd() {\n    let a = lock_ignore_poison(&ACTIVE);\n    let l = lock_ignore_poison(&LANES);\n}\n\
             pub fn rev() {\n    let l = lock_ignore_poison(&LANES);\n    let a = lock_ignore_poison(&ACTIVE);\n}\n",
        )]);
        let cycles: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains("ACTIVE"));
        assert!(cycles[0].message.contains("LANES"));
    }

    #[test]
    fn guard_across_blocking_send_is_denied_and_drop_clears_it() {
        let (diags, _) = run_on(&[(
            "crates/runtime/src/s.rs",
            "pub struct P { pub queue: Mutex<u32> }\n\
             impl P {\n\
             pub fn bad(&self, tx: &Sender<u32>) {\n    let q = self.queue.lock();\n    tx.send(1);\n}\n\
             pub fn good(&self, tx: &Sender<u32>) {\n    let q = self.queue.lock();\n    drop(q);\n    tx.send(1);\n}\n\
             }\n",
        )]);
        let sends: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "lock-across-send")
            .collect();
        assert_eq!(sends.len(), 1, "{diags:?}");
        assert!(sends[0].message.contains("P.queue"));
    }

    #[test]
    fn transitive_send_under_guard_is_denied() {
        let (diags, _) = run_on(&[(
            "crates/server/src/t.rs",
            "pub struct S { pub m: Mutex<u32> }\n\
             pub fn notify(tx: &Sender<u32>) { tx.send(9); }\n\
             impl S {\n\
             pub fn pump(&self, tx: &Sender<u32>) {\n    let g = self.m.lock();\n    notify(tx);\n}\n\
             }\n",
        )]);
        let sends: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "lock-across-send")
            .collect();
        assert_eq!(sends.len(), 1, "{diags:?}");
        assert!(sends[0].message.contains("notify"));
    }

    #[test]
    fn out_of_scope_files_build_edges_but_stay_silent() {
        let (diags, lg) = run_on(&[(
            "crates/pipeline/src/two.rs",
            "static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             pub fn ab() {\n    let a = A.lock();\n    let b = B.lock();\n}\n\
             pub fn ba() {\n    let b = B.lock();\n    let a = A.lock();\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(lg.edges.len(), 2, "edges are still exported");
    }
}
