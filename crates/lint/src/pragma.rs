//! Allow pragmas: scoped, audited suppressions.
//!
//! Grammar (one pragma per comment):
//!
//! ```text
//! // adc-lint: allow(<rule-id>) reason="<non-empty free text>"
//! ```
//!
//! A **trailing** pragma (code earlier on the same line) suppresses
//! matching diagnostics on its own line; a **standalone** pragma
//! suppresses them on the next line that carries code. The reason is
//! mandatory — a suppression without a recorded justification is
//! exactly the kind of silent exception this engine exists to prevent.
//!
//! Misuse is itself diagnosed: a pragma that fails to parse, names an
//! unknown rule, or omits the reason yields `bad-pragma`; a
//! well-formed pragma that suppresses nothing yields `unused-allow`
//! (so stale suppressions die with the violation they excused).

use crate::lexer::Comment;
use crate::report::Diagnostic;
use crate::rules::is_known_rule;

/// The marker every pragma comment starts with (after trimming).
pub const PRAGMA_PREFIX: &str = "adc-lint:";

/// One parsed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The recorded justification.
    pub reason: String,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Whether the pragma trails code on its own line.
    pub trailing: bool,
}

impl Allow {
    /// The source line this pragma suppresses, given the sorted list of
    /// lines that carry code tokens.
    pub fn target_line(&self, code_lines: &[u32]) -> Option<u32> {
        if self.trailing {
            Some(self.line)
        } else {
            code_lines.iter().copied().find(|&l| l > self.line)
        }
    }
}

/// Parses every pragma comment in a file. Returns the well-formed
/// allows and a `bad-pragma` diagnostic for each malformed one.
pub fn parse_allows(rel_path: &str, comments: &[Comment<'_>]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix(PRAGMA_PREFIX) else {
            continue;
        };
        match parse_one(rest.trim()) {
            Ok((rule, reason)) => allows.push(Allow {
                rule,
                reason,
                line: comment.line,
                trailing: comment.trailing,
            }),
            Err(why) => bad.push(Diagnostic {
                rule: "bad-pragma".to_string(),
                file: rel_path.to_string(),
                line: comment.line,
                message: format!(
                    "malformed pragma ({why}); expected \
                     `// adc-lint: allow(<rule>) reason=\"...\"`"
                ),
            }),
        }
    }
    (allows, bad)
}

fn parse_one(text: &str) -> Result<(String, String), String> {
    let rest = text
        .strip_prefix("allow(")
        .ok_or("missing `allow(`".to_string())?;
    let close = rest.find(')').ok_or("unclosed `allow(`".to_string())?;
    let rule = rest.get(..close).unwrap_or("").trim().to_string();
    if !is_known_rule(&rule) {
        return Err(format!("unknown rule `{rule}`"));
    }
    let after = rest.get(close + 1..).unwrap_or("").trim();
    let reason_body = after
        .strip_prefix("reason=\"")
        .ok_or("missing `reason=\"...\"`".to_string())?;
    let end = reason_body
        .find('"')
        .ok_or("unterminated reason string".to_string())?;
    let reason = reason_body.get(..end).unwrap_or("").trim().to_string();
    if reason.is_empty() {
        return Err("empty reason".to_string());
    }
    if !reason_body.get(end + 1..).unwrap_or("").trim().is_empty() {
        return Err("trailing text after reason".to_string());
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let lexed = lex(src);
        parse_allows("crates/x/src/y.rs", &lexed.comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (allows, bad) = parse(
            "// adc-lint: allow(no-wallclock) reason=\"latency metric, not in result path\"\n\
             let t = Instant::now();",
        );
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-wallclock");
        assert!(!allows[0].trailing);
        assert_eq!(allows[0].target_line(&[2]), Some(2));
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let (allows, _) =
            parse("let x = 0.0 == y; // adc-lint: allow(float-eq) reason=\"exact sentinel\"");
        assert_eq!(allows.len(), 1);
        assert!(allows[0].trailing);
        assert_eq!(allows[0].target_line(&[1]), Some(1));
    }

    #[test]
    fn malformed_pragmas_are_diagnosed() {
        for bad_src in [
            "// adc-lint: allow(no-wallclock)",                    // no reason
            "// adc-lint: allow(no-wallclock) reason=\"\"",        // empty reason
            "// adc-lint: allow(not-a-rule) reason=\"x\"",         // unknown rule
            "// adc-lint: allowno-wallclock) reason=\"x\"",        // no paren
            "// adc-lint: allow(no-wallclock) reason=\"x\" extra", // trailing junk
        ] {
            let (allows, bad) = parse(bad_src);
            assert!(allows.is_empty(), "{bad_src}");
            assert_eq!(bad.len(), 1, "{bad_src}");
            assert_eq!(bad[0].rule, "bad-pragma");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (allows, bad) = parse("// just a comment mentioning allow(no-panic)\nlet x = 1;");
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
