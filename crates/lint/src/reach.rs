//! Transitive panic-reachability from the declared panic roots.
//!
//! BFS from every root function over call *and* reference edges; any
//! undischarged panicking construct in a reached function is a
//! `panic-reach` error at the construct's own line, with the witness
//! call path in the message. Dynamic call sites reached from a root
//! degrade to `callgraph-opaque` — the pass cannot see through a
//! function value, so it says so instead of silently passing.

use std::collections::{BTreeMap, VecDeque};

use crate::config;
use crate::facts::FnFacts;
use crate::graph::{FileData, Graph};
use crate::report::Diagnostic;

/// Runs the pass; returns raw (pre-suppression) diagnostics.
pub(crate) fn run(graph: &Graph, files: &[FileData<'_>], facts: &[FnFacts]) -> Vec<Diagnostic> {
    let rel_paths: Vec<&str> = files.iter().map(|f| f.rel_path).collect();
    let mut queue = VecDeque::new();
    // parent[sym] = (caller sym, root sym) for witness reconstruction.
    let mut seen: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut root_of: BTreeMap<usize, usize> = BTreeMap::new();
    for root in config::PANIC_ROOTS {
        for idx in graph.roots_for(root.path, root.symbol, &rel_paths) {
            if seen.insert(idx, None).is_none() {
                root_of.insert(idx, idx);
                queue.push_back(idx);
            }
        }
    }
    while let Some(cur) = queue.pop_front() {
        let root = root_of.get(&cur).copied().unwrap_or(cur);
        for site in graph.sites.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
            for &callee in &site.callees {
                if seen.contains_key(&callee) {
                    continue;
                }
                seen.insert(callee, Some(cur));
                root_of.insert(callee, root);
                queue.push_back(callee);
            }
        }
    }

    let mut out = Vec::new();
    for &sym_idx in seen.keys() {
        let Some(sym) = graph.syms.get(sym_idx) else {
            continue;
        };
        let Some(fd) = files.get(sym.file) else {
            continue;
        };
        let Some(f) = facts.get(sym_idx) else {
            continue;
        };
        let path = witness(graph, &seen, &root_of, sym_idx);
        for (line, what) in &f.panic_sites {
            out.push(Diagnostic {
                rule: "panic-reach".to_string(),
                file: fd.rel_path.to_string(),
                line: *line,
                message: format!(
                    "{what} is reachable from panic root `{}`: {path}; return a typed \
                     error along this path or allow(panic-reach) with a reason",
                    root_name(graph, &root_of, sym_idx),
                ),
            });
        }
        for line in &f.dynamic_sites {
            out.push(Diagnostic {
                rule: "callgraph-opaque".to_string(),
                file: fd.rel_path.to_string(),
                line: *line,
                message: format!(
                    "call through a function value is opaque to panic-reachability \
                     (reached from root `{}`: {path}); the pass cannot prove this \
                     path panic-free — restructure to a named fn or allow(callgraph-opaque)",
                    root_name(graph, &root_of, sym_idx),
                ),
            });
        }
    }
    out
}

fn root_name(graph: &Graph, root_of: &BTreeMap<usize, usize>, sym: usize) -> String {
    root_of
        .get(&sym)
        .and_then(|&r| graph.syms.get(r))
        .map(|s| s.qname.clone())
        .unwrap_or_default()
}

fn witness(
    graph: &Graph,
    seen: &BTreeMap<usize, Option<usize>>,
    _root_of: &BTreeMap<usize, usize>,
    sym: usize,
) -> String {
    let mut chain = Vec::new();
    let mut cur = Some(sym);
    while let Some(c) = cur {
        chain.push(
            graph
                .syms
                .get(c)
                .map(|s| s.qname.clone())
                .unwrap_or_default(),
        );
        cur = seen.get(&c).copied().flatten();
        if chain.len() > 32 {
            break;
        }
    }
    chain.reverse();
    chain.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts;
    use crate::graph::{build, FileData};
    use crate::items::{parse_file, token_maps};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = sources.iter().map(|(_, s)| lex(s)).collect();
        let maps: Vec<_> = lexed.iter().map(|l| token_maps(&l.tokens)).collect();
        let spans: Vec<_> = lexed.iter().map(|l| test_spans(&l.tokens)).collect();
        let items: Vec<_> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&spans)
            .map(|((((p, _), l), m), sp)| parse_file(p, &l.tokens, m, sp))
            .collect();
        let data: Vec<FileData<'_>> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&items)
            .map(|((((p, _), l), m), it)| FileData {
                rel_path: p,
                tokens: &l.tokens,
                maps: m,
                items: it,
            })
            .collect();
        let graph = build(&data);
        let allows = vec![Vec::new(); data.len()];
        let (fx, _) = facts::collect(&graph, &data, &allows);
        run(&graph, &data, &fx)
    }

    #[test]
    fn unwrap_in_a_helper_called_by_a_root_is_caught() {
        let diags = run_on(&[
            (
                "crates/server/src/protocol.rs",
                "use crate::wire::grab;\npub fn decode(v: &[u8]) -> u8 { grab(v) }\n",
            ),
            (
                "crates/server/src/wire.rs",
                "pub fn grab(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-reach");
        assert_eq!(diags[0].file, "crates/server/src/wire.rs");
        assert!(diags[0].message.contains("server::protocol::decode"));
        assert!(diags[0].message.contains("server::wire::grab"));
    }

    #[test]
    fn unreached_panics_are_not_reported() {
        let diags = run_on(&[
            (
                "crates/server/src/protocol.rs",
                "pub fn decode(v: &[u8]) -> u8 { v.first().copied().unwrap_or(0) }\n",
            ),
            (
                "crates/server/src/other.rs",
                "pub fn free_standing(v: &[u8]) -> u8 { v[0] }\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dynamic_sites_on_root_paths_degrade_to_opaque() {
        let diags = run_on(&[(
            "crates/server/src/protocol.rs",
            "pub fn decode(v: &[u8], f: &dyn Fn(&[u8]) -> u8) -> u8 { f(v) }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "callgraph-opaque");
    }

    #[test]
    fn symbol_roots_cover_only_the_named_fn() {
        let diags = run_on(&[
            (
                "crates/lint/src/lexer.rs",
                "pub fn lex(s: &str) -> u8 { helper(s) }\n\
                 pub fn debug_dump(s: &str) -> u8 { s.as_bytes()[0] }\n",
            ),
            (
                "crates/lint/src/util.rs",
                "pub fn helper(s: &str) -> u8 { s.as_bytes()[0] }\n",
            ),
        ]);
        // `lex` reaches helper's indexing; `debug_dump` is not a root
        // so its own indexing is not reported.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/lint/src/util.rs");
    }
}
