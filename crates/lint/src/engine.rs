//! The scan driver: file discovery, the two-layer analysis pipeline,
//! and suppression.
//!
//! [`scan_workspace`] walks the workspace's first-party source roots
//! (`src/` and `crates/*/src/`, recursively — integration tests,
//! benches, `vendor/` stand-ins, and `target/` are out of scope),
//! then runs both layers over the whole file set at once:
//!
//! 1. **Per-file token rules** ([`crate::rules`]) — exactly as before.
//! 2. **Interprocedural passes** — the item parser ([`crate::items`])
//!    and call graph ([`crate::graph`]) feed panic-reachability
//!    ([`crate::reach`]), determinism taint ([`crate::taint`]), and
//!    lock-order analysis ([`crate::locks`]), plus the `config-drift`
//!    meta-check that every scope entry in [`crate::config`] still
//!    names something real.
//!
//! Suppression is central: every diagnostic — textual or
//! interprocedural — is matched against the file's allow pragmas by
//! (rule, target line); facts discharged at their source consume
//! pragmas the same way, and any pragma that suppressed nothing is an
//! `unused-allow` error. Discovery sorts paths and every pass iterates
//! in stable order, so a report is byte-identical across runs and
//! machines — the engine holds itself to the determinism bar it
//! enforces.
//!
//! [`analyze_source`] is the single-file core kept for fixture tests;
//! [`analyze_files`] is the multi-file entry the workspace scan and
//! the interprocedural fixtures share.

use std::path::{Path, PathBuf};

use crate::config;
use crate::facts;
use crate::graph::{self, FileData, ResolutionStats};
use crate::graphout::{self, GraphExports};
use crate::items::{parse_file, token_maps};
use crate::lexer::lex;
use crate::locks;
use crate::pragma::parse_allows;
use crate::reach;
use crate::report::{Diagnostic, Report};
use crate::rules::{check_file, test_spans, FileCtx};
use crate::taint;

/// Everything a full workspace analysis produces.
#[derive(Debug, Default)]
pub struct AnalyzedWorkspace {
    /// The diagnostic report (post-suppression, sorted, deduplicated).
    pub report: Report,
    /// Call-graph resolution statistics.
    pub stats: ResolutionStats,
    /// Rendered `--graph-out` artifacts.
    pub exports: GraphExports,
}

/// Analyzes one file's source text as if it lived at `rel_path`
/// (workspace-relative, `/`-separated). Returns the surviving
/// diagnostics: rule hits not covered by an allow pragma, plus
/// `bad-pragma` and `unused-allow` meta-diagnostics. Interprocedural
/// passes run over the single file's (degenerate) call graph;
/// `config-drift` is skipped — a one-file view proves nothing about
/// the workspace.
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    analyze_files(&[(rel_path, source)], false)
        .report
        .diagnostics
}

/// Analyzes a set of files as one workspace. `check_config` enables
/// the `config-drift` meta-check (full scans only — fixture subsets
/// would always look stale).
pub fn analyze_files(files: &[(&str, &str)], check_config: bool) -> AnalyzedWorkspace {
    // Layer 0: lex + per-file structures.
    let lexed: Vec<_> = files.iter().map(|(_, src)| lex(src)).collect();
    let maps: Vec<_> = lexed.iter().map(|l| token_maps(&l.tokens)).collect();
    let spans: Vec<Vec<(u32, u32)>> = lexed.iter().map(|l| test_spans(&l.tokens)).collect();
    let items: Vec<_> = files
        .iter()
        .zip(&lexed)
        .zip(&maps)
        .zip(&spans)
        .map(|((((path, _), l), m), sp)| parse_file(path, &l.tokens, m, sp))
        .collect();
    let data: Vec<FileData<'_>> = files
        .iter()
        .zip(&lexed)
        .zip(&maps)
        .zip(&items)
        .map(|((((path, _), l), m), it)| FileData {
            rel_path: path,
            tokens: &l.tokens,
            maps: m,
            items: it,
        })
        .collect();

    // Pragmas, resolved to target lines, with shared used-flags.
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut all_allows: Vec<(usize, String, Option<u32>, u32, String)> = Vec::new();
    let mut fact_allows: Vec<facts::FileAllows> = Vec::with_capacity(files.len());
    for (fidx, ((path, _), l)) in files.iter().zip(&lexed).enumerate() {
        let (allows, bad) = parse_allows(path, &l.comments);
        raw.extend(bad);
        let mut code_lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let mut fa: facts::FileAllows = Vec::new();
        for a in &allows {
            let target = a.target_line(&code_lines);
            if let Some(t) = target {
                fa.push((a.rule.clone(), t));
            }
            all_allows.push((fidx, a.rule.clone(), target, a.line, a.reason.clone()));
        }
        fact_allows.push(fa);
    }

    // Layer 1: per-file token rules.
    for ((path, _), (l, sp)) in files.iter().zip(lexed.iter().zip(&spans)) {
        let ctx = FileCtx {
            rel_path: path,
            tokens: &l.tokens,
            comments: &l.comments,
            test_spans: sp,
        };
        raw.extend(check_file(&ctx));
    }

    // Layer 2: call graph + interprocedural passes.
    let g = graph::build(&data);
    let (fx, consumed) = facts::collect(&g, &data, &fact_allows);
    raw.extend(reach::run(&g, &data, &fx));
    raw.extend(taint::run(&g, &data, &fx));
    let (lock_diags, lock_graph) = locks::run(&g, &data, &fx);
    raw.extend(lock_diags);
    if check_config {
        raw.extend(config_drift(&data, &g));
    }
    let exports = graphout::render(&g, &data, &lock_graph);

    // Central suppression.
    let mut used = vec![false; all_allows.len()];
    // Source-discharged facts consumed their pragma even though no
    // diagnostic was ever emitted.
    for (fidx, target, rule) in &consumed {
        for (k, (afidx, arule, atarget, _, _)) in all_allows.iter().enumerate() {
            if afidx == fidx && arule == rule && *atarget == Some(*target) {
                used[k] = true;
            }
        }
    }
    let mut out: Vec<Diagnostic> = Vec::new();
    for diag in raw {
        let mut suppressed = false;
        for (k, (afidx, arule, atarget, _, _)) in all_allows.iter().enumerate() {
            let same_file = files.get(*afidx).is_some_and(|(p, _)| *p == diag.file);
            if same_file && *arule == diag.rule && *atarget == Some(diag.line) {
                if let Some(u) = used.get_mut(k) {
                    *u = true;
                }
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(diag);
        }
    }
    for (k, (afidx, arule, _, line, reason)) in all_allows.iter().enumerate() {
        if !used.get(k).copied().unwrap_or(true) {
            out.push(Diagnostic {
                rule: "unused-allow".to_string(),
                file: files
                    .get(*afidx)
                    .map(|(p, _)| (*p).to_string())
                    .unwrap_or_default(),
                line: *line,
                message: format!(
                    "allow({arule}) suppresses nothing; delete the stale pragma (reason \
                     was: \"{reason}\")"
                ),
            });
        }
    }

    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);

    AnalyzedWorkspace {
        report: Report {
            files_scanned: files.len(),
            diagnostics: out,
        },
        stats: g.stats.clone(),
        exports,
    }
}

/// The `config-drift` meta-check: every scope entry in
/// [`crate::config`] must still name a scanned file, directory, or
/// resolvable symbol. A stale entry silently checks nothing, which in
/// deny mode must itself be an error.
fn config_drift(data: &[FileData<'_>], g: &graph::Graph) -> Vec<Diagnostic> {
    const CONFIG_FILE: &str = "crates/lint/src/config.rs";
    let rel_paths: Vec<&str> = data.iter().map(|f| f.rel_path).collect();
    let mut out = Vec::new();
    let mut drift = |message: String| {
        out.push(Diagnostic {
            rule: "config-drift".to_string(),
            file: CONFIG_FILE.to_string(),
            line: 1,
            message,
        });
    };
    for root in config::DETERMINISM_ROOTS {
        if !rel_paths.iter().any(|p| p.starts_with(&format!("{root}/"))) {
            drift(format!(
                "DETERMINISM_ROOTS entry `{root}` matches no scanned file; the scope \
                 silently checks nothing — fix or remove the entry"
            ));
        }
    }
    for file in config::DETERMINISM_FILES {
        if !rel_paths.contains(file) {
            drift(format!(
                "DETERMINISM_FILES entry `{file}` matches no scanned file; the scope \
                 silently checks nothing — fix or remove the entry"
            ));
        }
    }
    for root in config::LOCK_SCOPES {
        if !rel_paths.iter().any(|p| p.starts_with(&format!("{root}/"))) {
            drift(format!(
                "LOCK_SCOPES entry `{root}` matches no scanned file; the scope \
                 silently checks nothing — fix or remove the entry"
            ));
        }
    }
    for root in config::PANIC_ROOTS {
        if !rel_paths.contains(&root.path) {
            drift(format!(
                "PANIC_ROOTS entry `{}` matches no scanned file; the root anchors \
                 nothing — fix or remove the entry",
                root.path
            ));
            continue;
        }
        if g.roots_for(root.path, root.symbol, &rel_paths).is_empty() {
            drift(format!(
                "PANIC_ROOTS entry `{}::{}` names no function in that file; the root \
                 anchors nothing — fix or remove the entry",
                root.path,
                root.symbol.unwrap_or("*")
            ));
        }
    }
    for file in config::ENV_EXEMPT_FILES {
        if !rel_paths.contains(file) {
            drift(format!(
                "ENV_EXEMPT_FILES entry `{file}` matches no scanned file; the \
                 exemption covers nothing — fix or remove the entry"
            ));
        }
    }
    out
}

/// Discovers the `.rs` files in scope under `root`, sorted for
/// deterministic reports: `src/` and every `crates/<name>/src/` tree.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|x| x == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated rendering of `path` under `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans the whole workspace rooted at `root`, returning the full
/// analysis: report, resolution stats, and graph exports.
///
/// # Errors
///
/// Propagates I/O failures from discovery or reading; an unreadable
/// tree is a scan failure, never a silently shorter report.
pub fn scan_workspace_full(root: &Path) -> std::io::Result<AnalyzedWorkspace> {
    let paths = workspace_files(root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for file in &paths {
        sources.push((rel_path(root, file), std::fs::read_to_string(file)?));
    }
    let views: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    Ok(analyze_files(&views, true))
}

/// Scans the whole workspace rooted at `root` (report only).
///
/// # Errors
///
/// Propagates I/O failures from discovery or reading.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    scan_workspace_full(root).map(|a| a.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_pragma_suppresses_and_is_marked_used() {
        let src = "\
// adc-lint: allow(no-hash-collections) reason=\"keys sorted before iteration\"
use std::collections::HashMap;
fn f() {}
";
        let diags = analyze_source("crates/runtime/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_allow_is_diagnosed() {
        let src = "// adc-lint: allow(no-panic) reason=\"placeholder\"\nfn f() {}\n";
        let diags = analyze_source("crates/server/src/protocol.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn pragma_for_the_wrong_rule_does_not_suppress() {
        let src = "\
// adc-lint: allow(no-wallclock) reason=\"wrong rule\"
use std::collections::HashMap;
";
        let diags = analyze_source("crates/runtime/src/x.rs", src);
        // The real violation survives AND the pragma is unused.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-hash-collections"));
        assert!(diags.iter().any(|d| d.rule == "unused-allow"));
    }

    #[test]
    fn diagnostics_are_line_sorted() {
        let src = "fn f() { let a = Instant::now(); }\nfn g() { let b = Instant::now(); }\n";
        let diags = analyze_source("crates/bias/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }

    #[test]
    fn interprocedural_panic_reach_crosses_files() {
        let a = analyze_files(
            &[
                (
                    "crates/server/src/protocol.rs",
                    "use crate::helpers::tail;\npub fn decode(v: &[u8]) -> u8 { tail(v) }\n",
                ),
                (
                    "crates/server/src/helpers.rs",
                    "pub fn tail(v: &[u8]) -> u8 { v.last().copied().unwrap() }\n",
                ),
            ],
            false,
        );
        let diags = &a.report.diagnostics;
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-reach");
        assert_eq!(diags[0].file, "crates/server/src/helpers.rs");
    }

    #[test]
    fn panic_reach_allow_at_the_fact_site_suppresses_and_is_used() {
        let a = analyze_files(
            &[
                (
                    "crates/server/src/protocol.rs",
                    "use crate::helpers::tail;\npub fn decode(v: &[u8]) -> u8 { tail(v) }\n",
                ),
                (
                    "crates/server/src/helpers.rs",
                    "pub fn tail(v: &[u8]) -> u8 {\n    \
                     // adc-lint: allow(panic-reach) reason=\"caller checks non-empty\"\n    \
                     v.last().copied().unwrap()\n}\n",
                ),
            ],
            false,
        );
        assert!(
            a.report.diagnostics.is_empty(),
            "{:?}",
            a.report.diagnostics
        );
    }

    #[test]
    fn config_drift_fires_on_missing_scopes_in_full_scans() {
        // A tiny file set that clearly misses every configured scope.
        let a = analyze_files(&[("crates/server/src/other.rs", "pub fn f() {}\n")], true);
        let drift: Vec<_> = a
            .report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "config-drift")
            .collect();
        assert!(!drift.is_empty());
        assert!(drift.iter().all(|d| d.file == "crates/lint/src/config.rs"));
    }
}
