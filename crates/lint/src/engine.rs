//! The scan driver: file discovery, per-file analysis, suppression.
//!
//! [`scan_workspace`] walks the workspace's first-party source roots
//! (`src/` and `crates/*/src/`, recursively — integration tests,
//! benches, `vendor/` stand-ins, and `target/` are out of scope),
//! analyzes each file, and folds the results into one [`Report`].
//! Discovery sorts paths, so a report is byte-stable across runs and
//! machines — the engine holds itself to the determinism bar it
//! enforces.
//!
//! [`analyze_source`] is the per-file core, taking a *virtual*
//! workspace-relative path plus source text. The fixture tests use it
//! to exercise scoped rules without materializing files at the scoped
//! locations.

use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::pragma::parse_allows;
use crate::report::{Diagnostic, Report};
use crate::rules::{check_file, test_spans, FileCtx};

/// Analyzes one file's source text as if it lived at `rel_path`
/// (workspace-relative, `/`-separated). Returns the surviving
/// diagnostics: rule hits not covered by an allow pragma, plus
/// `bad-pragma` and `unused-allow` meta-diagnostics.
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let spans = test_spans(&lexed.tokens);
    let ctx = FileCtx {
        rel_path,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        test_spans: &spans,
    };
    let raw = check_file(&ctx);
    let (allows, mut out) = parse_allows(rel_path, &lexed.comments);

    // Lines that carry code tokens, sorted, for standalone-pragma
    // target resolution.
    let mut code_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    code_lines.dedup();

    // Resolve each pragma to its target line, then keep the
    // diagnostics no pragma covers. A pragma is "used" when it
    // suppressed at least one diagnostic of its rule on its target.
    let targets: Vec<Option<u32>> = allows.iter().map(|a| a.target_line(&code_lines)).collect();
    let mut used = vec![false; allows.len()];
    for diag in raw {
        let mut suppressed = false;
        for (k, allow) in allows.iter().enumerate() {
            if allow.rule == diag.rule && targets[k] == Some(diag.line) {
                used[k] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(diag);
        }
    }
    for (k, allow) in allows.iter().enumerate() {
        if !used[k] {
            out.push(Diagnostic {
                rule: "unused-allow".to_string(),
                file: rel_path.to_string(),
                line: allow.line,
                message: format!(
                    "allow({}) suppresses nothing; delete the stale pragma (reason was: \
                     \"{}\")",
                    allow.rule, allow.reason
                ),
            });
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    out
}

/// Discovers the `.rs` files in scope under `root`, sorted for
/// deterministic reports: `src/` and every `crates/<name>/src/` tree.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|x| x == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated rendering of `path` under `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O failures from discovery or reading; an unreadable
/// tree is a scan failure, never a silently shorter report.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        diagnostics: Vec::new(),
    };
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = rel_path(root, file);
        report.diagnostics.extend(analyze_source(&rel, &source));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_pragma_suppresses_and_is_marked_used() {
        let src = "\
// adc-lint: allow(no-hash-collections) reason=\"keys sorted before iteration\"
use std::collections::HashMap;
fn f() {}
";
        let diags = analyze_source("crates/runtime/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_allow_is_diagnosed() {
        let src = "// adc-lint: allow(no-panic) reason=\"placeholder\"\nfn f() {}\n";
        let diags = analyze_source("crates/server/src/protocol.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn pragma_for_the_wrong_rule_does_not_suppress() {
        let src = "\
// adc-lint: allow(no-wallclock) reason=\"wrong rule\"
use std::collections::HashMap;
";
        let diags = analyze_source("crates/runtime/src/x.rs", src);
        // The real violation survives AND the pragma is unused.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-hash-collections"));
        assert!(diags.iter().any(|d| d.rule == "unused-allow"));
    }

    #[test]
    fn diagnostics_are_line_sorted() {
        let src = "fn f() { let a = Instant::now(); }\nfn g() { let b = Instant::now(); }\n";
        let diags = analyze_source("crates/bias/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }
}
