//! The `adc-lint` command line.
//!
//! ```text
//! cargo run -p adc-lint --                 # report, exit 0 regardless
//! cargo run -p adc-lint -- --deny         # exit 1 on any diagnostic (CI mode)
//! cargo run -p adc-lint -- --json out.json
//! cargo run -p adc-lint -- --list-rules
//! ```
//!
//! The default root is the workspace containing this crate (resolved
//! at compile time from `CARGO_MANIFEST_DIR`), so `cargo run -p
//! adc-lint` does the right thing from any working directory;
//! `--root DIR` overrides it.

use std::path::PathBuf;
use std::process::ExitCode;

use adc_lint::{scan_workspace, RULES};

const USAGE: &str = "\
usage: adc-lint [--root DIR] [--json FILE] [--deny] [--list-rules]

  --root DIR    workspace root to scan [default: this workspace]
  --json FILE   also write the machine-readable report to FILE
  --deny        exit non-zero when any diagnostic (including
                unused-allow / bad-pragma) is produced
  --list-rules  print the rule catalogue and exit
  -h, --help    print this help
";

struct Cli {
    root: PathBuf,
    json: Option<PathBuf>,
    deny: bool,
    list_rules: bool,
}

fn parse_cli(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        root: default_root(),
        json: None,
        deny: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--json" => {
                cli.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            "--deny" => cli.deny = true,
            "--list-rules" => cli.list_rules = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(cli))
}

/// The workspace this binary was built in: `crates/lint/../..`.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("adc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in RULES {
            println!("{:<22} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let report = match scan_workspace(&cli.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("adc-lint: scan failed under {}: {err}", cli.root.display());
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_human());
    if let Some(path) = &cli.json {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("adc-lint: writing {} failed: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if cli.deny && !report.is_clean() {
        eprintln!("adc-lint: failing under --deny");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
