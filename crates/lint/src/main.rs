//! The `adc-lint` command line.
//!
//! ```text
//! cargo run -p adc-lint --                 # report, exit 0 regardless
//! cargo run -p adc-lint -- --deny         # exit 1 on any diagnostic (CI mode)
//! cargo run -p adc-lint -- --json out.json
//! cargo run -p adc-lint -- --graph-out target/lint/graphs
//! cargo run -p adc-lint -- --list-rules
//! ```
//!
//! The default root is the workspace containing this crate (resolved
//! at compile time from `CARGO_MANIFEST_DIR`), so `cargo run -p
//! adc-lint` does the right thing from any working directory;
//! `--root DIR` overrides it.

use std::path::PathBuf;
use std::process::ExitCode;

use adc_lint::{scan_workspace_full, RULES};

const USAGE: &str = "\
usage: adc-lint [--root DIR] [--json FILE] [--graph-out DIR] [--deny] [--list-rules]

  --root DIR      workspace root to scan [default: this workspace]
  --json FILE     also write the machine-readable report to FILE
  --graph-out DIR write callgraph.{dot,json} and lockgraph.{dot,json}
                  under DIR (created if missing)
  --deny          exit non-zero when any diagnostic (including
                  unused-allow / bad-pragma) is produced
  --list-rules    print the rule catalogue and exit
  -h, --help      print this help
";

struct Cli {
    root: PathBuf,
    json: Option<PathBuf>,
    graph_out: Option<PathBuf>,
    deny: bool,
    list_rules: bool,
}

fn parse_cli(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        root: default_root(),
        json: None,
        graph_out: None,
        deny: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--json" => {
                cli.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            "--graph-out" => {
                cli.graph_out = Some(PathBuf::from(it.next().ok_or("--graph-out needs a value")?));
            }
            "--deny" => cli.deny = true,
            "--list-rules" => cli.list_rules = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(cli))
}

/// The workspace this binary was built in: `crates/lint/../..`.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("adc-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_rules {
        for rule in RULES {
            println!("{:<22} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let ws = match scan_workspace_full(&cli.root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("adc-lint: scan failed under {}: {err}", cli.root.display());
            return ExitCode::from(2);
        }
    };
    let report = &ws.report;

    print!("{}", report.render_human());
    if let Some(path) = &cli.json {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("adc-lint: writing {} failed: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &cli.graph_out {
        let files = [
            ("callgraph.dot", &ws.exports.callgraph_dot),
            ("callgraph.json", &ws.exports.callgraph_json),
            ("lockgraph.dot", &ws.exports.lockgraph_dot),
            ("lockgraph.json", &ws.exports.lockgraph_json),
        ];
        let write_all = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            for (name, body) in files {
                std::fs::write(dir.join(name), body)?;
            }
            Ok(())
        };
        if let Err(err) = write_all() {
            eprintln!(
                "adc-lint: writing graphs under {} failed: {err}",
                dir.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "adc-lint: call graph {:.1}% resolved ({} sites); graphs written to {}",
            100.0 * ws.stats.resolution_rate(),
            ws.stats.sites,
            dir.display()
        );
    }
    if cli.deny && !report.is_clean() {
        eprintln!("adc-lint: failing under --deny");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
