//! `--graph-out` renderers: the call graph and the lock-order graph,
//! each as Graphviz DOT and as JSON (hand-rolled, std-only, matching
//! the report module's escaping rules).

use crate::graph::{FileData, Graph};
use crate::locks::LockGraph;

/// Rendered export artifacts, ready to write to disk.
#[derive(Debug, Clone, Default)]
pub struct GraphExports {
    /// Workspace call graph, DOT.
    pub callgraph_dot: String,
    /// Workspace call graph + resolution stats, JSON.
    pub callgraph_json: String,
    /// Lock-order graph, DOT (edges labelled with a witness).
    pub lockgraph_dot: String,
    /// Lock-order graph, JSON (all witnesses).
    pub lockgraph_json: String,
}

fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn esc_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders every export from the built graphs.
pub(crate) fn render(graph: &Graph, files: &[FileData<'_>], locks: &LockGraph) -> GraphExports {
    let mut cg_dot = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
    for (i, sym) in graph.syms.iter().enumerate() {
        cg_dot.push_str(&format!("  n{} [label=\"{}\"];\n", i, esc_dot(&sym.qname)));
    }
    for (caller, sites) in graph.sites.iter().enumerate() {
        for site in sites {
            for &callee in &site.callees {
                let style = if site.is_ref { " [style=dashed]" } else { "" };
                cg_dot.push_str(&format!("  n{caller} -> n{callee}{style};\n"));
            }
        }
    }
    cg_dot.push_str("}\n");

    let mut cg_json = String::from("{\n  \"functions\": [\n");
    for (i, sym) in graph.syms.iter().enumerate() {
        let file = files.get(sym.file).map(|f| f.rel_path).unwrap_or_default();
        cg_json.push_str(&format!(
            "    {{\"id\": {i}, \"name\": \"{}\", \"file\": \"{}\", \"line\": {}}}{}\n",
            esc_json(&sym.qname),
            esc_json(file),
            sym.item.line,
            if i + 1 < graph.syms.len() { "," } else { "" }
        ));
    }
    cg_json.push_str("  ],\n  \"edges\": [\n");
    let mut edges: Vec<(usize, usize, bool)> = Vec::new();
    for (caller, sites) in graph.sites.iter().enumerate() {
        for site in sites {
            for &callee in &site.callees {
                edges.push((caller, callee, site.is_ref));
            }
        }
    }
    for (k, (a, b, is_ref)) in edges.iter().enumerate() {
        cg_json.push_str(&format!(
            "    [{a}, {b}, {}]{}\n",
            if *is_ref { "\"ref\"" } else { "\"call\"" },
            if k + 1 < edges.len() { "," } else { "" }
        ));
    }
    let st = &graph.stats;
    cg_json.push_str(&format!(
        "  ],\n  \"stats\": {{\"functions\": {}, \"edges\": {}, \"sites\": {}, \
         \"unique\": {}, \"ambiguous\": {}, \"dynamic\": {}, \"external\": {}, \
         \"resolution_rate\": {:.4}, \"unresolved\": [\n",
        st.functions,
        st.edges,
        st.sites,
        st.unique,
        st.ambiguous,
        st.dynamic,
        st.external,
        st.resolution_rate()
    ));
    for (k, u) in st.unresolved.iter().enumerate() {
        cg_json.push_str(&format!(
            "    \"{}\"{}\n",
            esc_json(u),
            if k + 1 < st.unresolved.len() { "," } else { "" }
        ));
    }
    cg_json.push_str("  ]}\n}\n");

    let mut lg_dot = String::from("digraph lockorder {\n  node [shape=ellipse];\n");
    let mut nodes: Vec<&str> = Vec::new();
    for (a, b) in locks.edges.keys() {
        for n in [a.as_str(), b.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }
    for n in &nodes {
        lg_dot.push_str(&format!("  \"{}\";\n", esc_dot(n)));
    }
    for ((a, b), ws) in &locks.edges {
        let label = ws
            .first()
            .map(|(f, l, _)| format!("{f}:{l}"))
            .unwrap_or_default();
        lg_dot.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            esc_dot(a),
            esc_dot(b),
            esc_dot(&label)
        ));
    }
    lg_dot.push_str("}\n");

    let mut lg_json = String::from("{\n  \"edges\": [\n");
    let total = locks.edges.len();
    for (k, ((a, b), ws)) in locks.edges.iter().enumerate() {
        lg_json.push_str(&format!(
            "    {{\"held\": \"{}\", \"acquires\": \"{}\", \"witnesses\": [",
            esc_json(a),
            esc_json(b)
        ));
        for (j, (f, l, q)) in ws.iter().enumerate() {
            lg_json.push_str(&format!(
                "{}{{\"file\": \"{}\", \"line\": {l}, \"fn\": \"{}\"}}",
                if j > 0 { ", " } else { "" },
                esc_json(f),
                esc_json(q)
            ));
        }
        lg_json.push_str(&format!("]}}{}\n", if k + 1 < total { "," } else { "" }));
    }
    lg_json.push_str("  ]\n}\n");

    GraphExports {
        callgraph_dot: cg_dot,
        callgraph_json: cg_json,
        lockgraph_dot: lg_dot,
        lockgraph_json: lg_json,
    }
}
