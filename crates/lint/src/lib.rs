//! `adc-lint` — workspace-native static analysis for the pipeline-ADC
//! repo.
//!
//! The workspace makes three structural claims: campaign results are
//! **deterministic** (bit-identical at any thread count, cache state,
//! or build profile), the wire protocol's decoding is **total** (any
//! byte sequence parses or yields a typed error — never a panic), and
//! numeric code keeps **float discipline** (no exact equality, no
//! NaN-unsafe orderings). Runtime tests spot-check those claims; this
//! crate enforces them at the source level, so a stray
//! `Instant::now()` seed or `unwrap()` in a decode path fails CI
//! before it can fail a customer.
//!
//! The engine is std-only and from scratch, matching the workspace's
//! zero-external-deps ethos: a hand-written lexer ([`lexer`]) feeds
//! token-subsequence rules ([`rules`]) scoped by path ([`config`]),
//! with audited suppressions ([`pragma`]) and a JSON-round-trippable
//! report ([`report`]). On top of the token layer sits a symbol
//! layer: a lightweight item parser extracts functions, impls, and
//! imports; a workspace call graph resolves call sites across crates;
//! and three interprocedural passes — transitive panic-reachability,
//! determinism taint, and lock-order deadlock analysis — turn the
//! per-file rules into whole-program claims. See `DESIGN.md` §10 for
//! the rule catalogue and §15 for the interprocedural architecture.
//!
//! ```no_run
//! use adc_lint::scan_workspace;
//! let report = scan_workspace(std::path::Path::new(".")).unwrap();
//! assert!(report.is_clean(), "{}", report.render_human());
//! ```

pub mod config;
pub mod engine;
mod facts;
mod graph;
mod graphout;
mod items;
pub mod lexer;
mod locks;
pub mod pragma;
mod reach;
pub mod report;
pub mod rules;
mod taint;

pub use engine::{
    analyze_files, analyze_source, scan_workspace, scan_workspace_full, workspace_files,
    AnalyzedWorkspace,
};
pub use graph::ResolutionStats;
pub use graphout::GraphExports;
pub use report::{Diagnostic, Report};
pub use rules::{RuleInfo, RULES};
