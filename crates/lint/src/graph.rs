//! The workspace call graph: symbol table, call-site extraction, and
//! name resolution.
//!
//! Resolution is deliberately conservative in a documented direction:
//! a call that cannot be pinned to one function gets edges to **every**
//! candidate (sound for reachability-style passes), and a call through
//! a function-typed value gets no edges at all but is recorded as a
//! *dynamic* site so the panic-reachability pass can degrade to a
//! `callgraph-opaque` diagnostic instead of silently missing paths.
//! Sites whose name matches nothing in the workspace are *external*
//! (std/vendor) and assumed non-panicking — their panicking std forms
//! (`unwrap`, `panic!`, indexing) are caught as direct facts instead.

use std::collections::BTreeMap;

use crate::items::{normalize_seg, principal_ty, FileItems, FnItem, TokenMaps, NONE};
use crate::lexer::{Token, TokenKind};

/// Everything the graph needs about one file.
#[derive(Debug)]
pub(crate) struct FileData<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Code tokens.
    pub tokens: &'a [Token<'a>],
    /// Bracket maps.
    pub maps: &'a TokenMaps,
    /// Parsed items.
    pub items: &'a FileItems,
}

/// One function symbol in the workspace.
#[derive(Debug, Clone)]
pub(crate) struct Sym {
    /// Index into the file list.
    pub file: usize,
    /// The parsed item (cloned out of `FileItems`).
    pub item: FnItem,
    /// Display path, e.g. `runtime::pool::JobPool::submit`.
    pub qname: String,
}

/// How a call site resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Res {
    /// Exactly one workspace candidate.
    Unique,
    /// Multiple candidates — edges to all of them (conservative).
    Ambiguous,
    /// No workspace candidate (std / vendored dep).
    External,
    /// Call through a function value — no edges, reported as opaque.
    Dynamic,
}

/// How the receiver of a method call classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RecvClass {
    /// No receiver (free or path call).
    None,
    /// `self.method()`.
    SelfRecv,
    /// Receiver chain typed to this principal type.
    Typed(String),
    /// Receiver is a `Mutex`/`RwLock` struct field: `(owner, field)`.
    LockField(String, String),
    /// Receiver is a lock-typed static.
    LockStatic(String),
    /// Receiver is the caller's k-th parameter, lock-typed.
    LockParam(usize),
    /// Receiver is a fn-local `let` whose statement mentions a lock.
    LockLocal(String),
    /// Could not type the receiver.
    Unknown,
}

/// One extracted call (or function-reference) site.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Token index of the opening `(` (calls) or the path start (refs).
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Callee name as written (`<dynamic>` for dynamic sites).
    pub name: String,
    /// Resolved callee symbol indices.
    pub callees: Vec<usize>,
    /// Resolution class.
    pub res: Res,
    /// A bare `path::to::fn` mention (passed as a value) rather than an
    /// invocation — propagates reachability/taint, ignored by locks.
    pub is_ref: bool,
    /// Receiver classification (method calls).
    pub recv: RecvClass,
    /// Token ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
    /// Per-argument receiver-style classification (for mapping
    /// lock-typed params through call sites).
    pub arg_class: Vec<RecvClass>,
}

/// A fn-local binding's inferred type.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalInfo {
    /// Principal type ident; empty = unknown.
    pub ty: String,
    /// The `let` statement mentions `Mutex`/`RwLock`/a lock alias —
    /// treating the binding as a fn-local lock instance.
    pub is_lock: bool,
}

/// Aggregate resolution statistics, exported with `--graph-out` and
/// asserted by the live-workspace meta-test.
#[derive(Debug, Clone, Default)]
pub struct ResolutionStats {
    /// Functions in the symbol table.
    pub functions: usize,
    /// Total call edges (including conservative fan-out).
    pub edges: usize,
    /// Call sites whose name matches at least one workspace function,
    /// plus dynamic sites (the resolution denominator).
    pub sites: usize,
    /// Sites pinned to exactly one callee.
    pub unique: usize,
    /// Sites with conservative multi-candidate edges.
    pub ambiguous: usize,
    /// Calls through function values (no edges, reported not dropped).
    pub dynamic: usize,
    /// Sites resolved to std/vendor code (not in the denominator).
    pub external: usize,
    /// Human-readable `file:line` entries for every non-unique site.
    pub unresolved: Vec<String>,
}

impl ResolutionStats {
    /// Fraction of denominator sites resolved to a single callee.
    pub fn resolution_rate(&self) -> f64 {
        if self.sites == 0 {
            return 1.0;
        }
        self.unique as f64 / self.sites as f64
    }
}

/// The built call graph.
#[derive(Debug)]
pub(crate) struct Graph {
    /// All function symbols.
    pub syms: Vec<Sym>,
    /// Per-symbol call sites.
    pub sites: Vec<Vec<CallSite>>,
    /// Per-symbol local-binding types.
    pub locals: Vec<BTreeMap<String, LocalInfo>>,
    /// `(owner, field)` → `(principal type, is_lock)` across structs.
    pub fields: BTreeMap<(String, String), (String, bool)>,
    /// `(enum, variant)` → single tuple-payload principal type.
    pub variants: BTreeMap<(String, String), String>,
    /// Static name → `(principal type, is_lock)`.
    pub statics: BTreeMap<String, (String, bool)>,
    /// Lock alias names (workspace-wide union).
    pub lock_aliases: Vec<String>,
    /// Resolution statistics.
    pub stats: ResolutionStats,
}

impl Graph {
    /// Symbols matching `file` path and optional symbol name.
    pub fn roots_for(&self, rel_path: &str, symbol: Option<&str>, files: &[&str]) -> Vec<usize> {
        let Some(fidx) = files.iter().position(|p| *p == rel_path) else {
            return Vec::new();
        };
        self.syms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.file == fidx && symbol.is_none_or(|n| s.item.name == n))
            .map(|(i, _)| i)
            .collect()
    }
}

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "move", "fn", "let", "else", "loop",
    "break", "continue", "unsafe", "ref", "mut", "box", "await", "use", "pub", "where", "impl",
    "dyn", "type", "const", "static", "enum", "struct", "trait", "mod", "yield",
];

/// Sentinel receiver type for values known to be std/vendor (lock
/// guards, collection adapters, external call results). It can never
/// collide with a Rust identifier, so typed method resolution against
/// it always lands on [`Res::External`].
pub(crate) const EXT_TY: &str = "#ext";

/// Guard-preserving / identity adapters: when a typed receiver has no
/// workspace impl for one of these, the result keeps the receiver's
/// type instead of becoming external. Container accessors belong here
/// because the collapsed principal of `&[Token]` IS `Token` — getting
/// an element (or an iterator over elements) preserves the principal.
const IDENTITY_METHODS: &[&str] = &[
    "clone",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "get",
    "get_mut",
    "first",
    "last",
    "iter",
    "iter_mut",
    "into_iter",
];

/// Builds the graph over all files.
pub(crate) fn build(files: &[FileData<'_>]) -> Graph {
    let mut syms = Vec::new();
    let mut fields = BTreeMap::new();
    let mut variants = BTreeMap::new();
    let mut statics = BTreeMap::new();
    let mut lock_aliases = Vec::new();
    for (fidx, fd) in files.iter().enumerate() {
        for item in &fd.items.fns {
            let mut qname = item.module.join("::");
            if let Some(ty) = &item.self_ty {
                qname.push_str("::");
                qname.push_str(ty);
            }
            qname.push_str("::");
            qname.push_str(&item.name);
            syms.push(Sym {
                file: fidx,
                item: item.clone(),
                qname,
            });
        }
        for f in &fd.items.fields {
            fields
                .entry((f.owner.clone(), f.name.clone()))
                .or_insert((f.ty.clone(), f.is_lock));
        }
        for v in &fd.items.variants {
            variants
                .entry((v.owner.clone(), v.name.clone()))
                .or_insert_with(|| v.payload.clone());
        }
        for s in &fd.items.statics {
            statics
                .entry(s.name.clone())
                .or_insert((s.ty.clone(), s.is_lock));
        }
        for a in &fd.items.lock_aliases {
            if !lock_aliases.contains(a) {
                lock_aliases.push(a.clone());
            }
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in syms.iter().enumerate() {
        by_name.entry(s.item.name.clone()).or_default().push(i);
    }
    // Re-export aliases: `pub use path::f as g` lets `g` (and
    // `mod::g`) resolve to `path::f`'s symbol.
    let aliases = build_aliases(files, &syms, &by_name);

    let mut graph = Graph {
        sites: Vec::with_capacity(syms.len()),
        locals: Vec::with_capacity(syms.len()),
        syms,
        fields,
        variants,
        statics,
        lock_aliases,
        stats: ResolutionStats::default(),
    };
    graph.stats.functions = graph.syms.len();

    for k in 0..graph.syms.len() {
        let sym = graph.syms.get(k).cloned();
        let Some(sym) = sym else { continue };
        let Some(fd) = files.get(sym.file) else {
            graph.sites.push(Vec::new());
            graph.locals.push(BTreeMap::new());
            continue;
        };
        let locals = collect_locals(&graph, files, &by_name, &aliases, &sym, fd);
        let sites = extract_sites(&graph, files, &by_name, &aliases, k, &sym, fd, &locals);
        graph.locals.push(locals);
        graph.sites.push(sites);
    }
    // Fold stats.
    let mut stats = std::mem::take(&mut graph.stats);
    for (k, sites) in graph.sites.iter().enumerate() {
        for s in sites {
            if s.is_ref {
                stats.edges += s.callees.len();
                continue;
            }
            match s.res {
                Res::Unique => {
                    stats.sites += 1;
                    stats.unique += 1;
                }
                Res::Ambiguous => {
                    stats.sites += 1;
                    stats.ambiguous += 1;
                    if let Some(sym) = graph.syms.get(k) {
                        if let Some(fd) = files.get(sym.file) {
                            stats.unresolved.push(format!(
                                "{}:{} `{}` ambiguous ({} candidates) in {}",
                                fd.rel_path,
                                s.line,
                                s.name,
                                s.callees.len(),
                                sym.qname
                            ));
                        }
                    }
                }
                Res::Dynamic => {
                    stats.sites += 1;
                    stats.dynamic += 1;
                    if let Some(sym) = graph.syms.get(k) {
                        if let Some(fd) = files.get(sym.file) {
                            stats.unresolved.push(format!(
                                "{}:{} dynamic call in {}",
                                fd.rel_path, s.line, sym.qname
                            ));
                        }
                    }
                }
                Res::External => stats.external += 1,
            }
            stats.edges += s.callees.len();
        }
    }
    graph.stats = stats;
    graph
}

/// `(alias module path + name)` → target symbol indices.
type AliasTable = Vec<(Vec<String>, String, Vec<usize>)>;

fn build_aliases(
    files: &[FileData<'_>],
    syms: &[Sym],
    by_name: &BTreeMap<String, Vec<usize>>,
) -> AliasTable {
    let mut out = AliasTable::new();
    for fd in files {
        for u in &fd.items.uses {
            if !u.is_pub || u.glob || u.name.is_empty() {
                continue;
            }
            let Some(target_name) = u.path.last() else {
                continue;
            };
            let Some(cands) = by_name.get(target_name.as_str()) else {
                continue;
            };
            let abs = resolve_use_path(&u.path, &fd.items.module);
            let matched: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    syms.get(c).is_some_and(|s| {
                        qual_matches(abs.get(..abs.len().saturating_sub(1)).unwrap_or(&[]), s)
                    })
                })
                .collect();
            if !matched.is_empty() {
                out.push((fd.items.module.clone(), u.name.clone(), matched));
            }
        }
    }
    out
}

/// Rewrites a use/import path's leading `crate`/`self`/`super` against
/// the declaring module; normalizes a crate-ish first segment.
fn resolve_use_path(path: &[String], module: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest = path;
    match path.first().map(String::as_str) {
        Some("crate") => {
            out.extend(module.first().cloned());
            rest = path.get(1..).unwrap_or(&[]);
        }
        Some("self") => {
            out.extend(module.iter().cloned());
            rest = path.get(1..).unwrap_or(&[]);
        }
        Some("super") => {
            let take = module.len().saturating_sub(1);
            out.extend(module.get(..take).unwrap_or(&[]).iter().cloned());
            rest = path.get(1..).unwrap_or(&[]);
        }
        Some(first) => {
            out.push(normalize_seg(first));
            rest = path.get(1..).unwrap_or(&[]);
        }
        None => {}
    }
    out.extend(rest.iter().cloned());
    out
}

/// `true` when `qual` (already rewritten/normalized) is an ordered
/// subsequence of the candidate's module-plus-self-type prefix. The
/// subsequence form tolerates re-export flattening
/// (`adc_runtime::ResultCache::load` vs. `runtime::cache::ResultCache`).
fn qual_matches(qual: &[String], sym: &Sym) -> bool {
    if qual.is_empty() {
        return true;
    }
    let mut prefix: Vec<&str> = sym.item.module.iter().map(String::as_str).collect();
    if let Some(ty) = &sym.item.self_ty {
        prefix.push(ty.as_str());
    }
    let mut qi = qual.iter();
    let mut want = qi.next();
    for seg in &prefix {
        if let Some(w) = want {
            if w == seg {
                want = qi.next();
            }
        }
    }
    want.is_none()
}

/// Infers local-binding types for one fn body.
///
/// Handles plain `let` statements, refutable `let Some(x)/Ok(x)`
/// bindings (`let .. else`, `if let`, `while let` — scopes are
/// flattened, shadowing keeps the last binding), and single-ident
/// `for` bindings. Initializers fall back to full chain typing via
/// [`receiver_class`] / [`call_result_ty`] against the bindings
/// collected so far.
fn collect_locals(
    graph: &Graph,
    files: &[FileData<'_>],
    by_name: &BTreeMap<String, Vec<usize>>,
    aliases: &AliasTable,
    sym: &Sym,
    fd: &FileData<'_>,
) -> BTreeMap<String, LocalInfo> {
    let item = &sym.item;
    let lock_aliases = &graph.lock_aliases;
    let mut out = BTreeMap::new();
    let Some((open, close)) = item.body else {
        return out;
    };
    let toks = fd.tokens;

    // Type + lock-ness of the expression whose last token is `last`,
    // resolved against the bindings collected so far. `?` peels off.
    let tail_ty = |mut last: usize, known: &BTreeMap<String, LocalInfo>| -> (String, bool) {
        let ctx = ResolveCtx {
            graph,
            files,
            by_name,
            aliases,
            caller: sym,
            locals: known,
        };
        while toks.get(last).is_some_and(|t| t.text == "?") {
            match last.checked_sub(1) {
                Some(l) => last = l,
                None => return (String::new(), false),
            }
        }
        if toks.get(last).is_some_and(|t| t.text == ")") {
            return (call_result_ty(&ctx, fd, toks, last), false);
        }
        match receiver_class(&ctx, fd, toks, Some(last)) {
            RecvClass::Typed(t) => (t, false),
            RecvClass::SelfRecv => (item.self_ty.clone().unwrap_or_default(), false),
            RecvClass::LockField(..)
            | RecvClass::LockStatic(_)
            | RecvClass::LockParam(_)
            | RecvClass::LockLocal(_) => (String::new(), true),
            _ => (String::new(), false),
        }
    };
    // First `else` / depth-0 `{` / depth-0 `;` from `from` — the end of
    // an initializer expression in any of the let shapes.
    let init_end = |from: usize, stop_brace: bool| -> usize {
        let mut depth = 0i64;
        let mut m = from;
        while m < close {
            match toks.get(m).map_or("", |t| t.text) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 && stop_brace => return m,
                "{" => depth += 1,
                "}" => depth -= 1,
                "else" if depth <= 0 => return m,
                ";" if depth <= 0 => return m,
                _ => {}
            }
            m += 1;
        }
        close
    };

    let mut i = open + 1;
    while i < close {
        let text = toks.get(i).map_or("", |t| t.text);
        // `for x in expr {` — bind x to expr's (collapsed) type.
        if text == "for"
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && !t.text.starts_with(char::is_uppercase)
            })
            && toks.get(i + 2).is_some_and(|t| t.text == "in")
        {
            let stop = init_end(i + 3, true);
            if let Some(last) = stop.checked_sub(1).filter(|&l| l > i + 2) {
                let (ty, is_lock) = tail_ty(last, &out);
                if !ty.is_empty() || is_lock {
                    let name = toks.get(i + 1).map_or("", |t| t.text).to_string();
                    out.insert(name, LocalInfo { ty, is_lock });
                }
            }
            i += 3;
            continue;
        }
        // `for (a, b) in chain.enumerate() {` — a is the usize index,
        // b carries the chain's element principal.
        if text == "for"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.text == ",")
            && toks.get(i + 4).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 5).is_some_and(|t| t.text == ")")
            && toks.get(i + 6).is_some_and(|t| t.text == "in")
        {
            let stop = init_end(i + 7, true);
            let last = stop.saturating_sub(1);
            // `.. . enumerate ( )` — peel the adapter, type the rest.
            if toks.get(last).is_some_and(|t| t.text == ")")
                && toks
                    .get(last.wrapping_sub(2))
                    .is_some_and(|t| t.text == "enumerate")
                && toks
                    .get(last.wrapping_sub(3))
                    .is_some_and(|t| t.text == ".")
                && last >= i + 11
            {
                let idx = toks.get(i + 2).map_or("", |t| t.text).to_string();
                out.insert(
                    idx,
                    LocalInfo {
                        ty: EXT_TY.to_string(),
                        is_lock: false,
                    },
                );
                let (ty, is_lock) = tail_ty(last - 4, &out);
                if !ty.is_empty() || is_lock {
                    let name = toks.get(i + 4).map_or("", |t| t.text).to_string();
                    out.insert(name, LocalInfo { ty, is_lock });
                }
            }
            i += 7;
            continue;
        }
        // Single-param closure `(|x| ..` / `, |x| ..` — the param
        // carries the element principal of the adapter chain it hangs
        // off (`stmt.iter().position(|t| ..)` binds `t` to `Token`).
        if text == "|"
            && i.checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|t| matches!(t.text, "(" | "," | "move"))
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && !t.text.starts_with(char::is_uppercase)
            })
            && toks.get(i + 2).is_some_and(|t| t.text == "|")
        {
            // Walk out to the unmatched `(` enclosing the closure, then
            // type the method-call receiver it belongs to.
            let mut depth = 0i64;
            let mut m = i;
            let open_paren = loop {
                let Some(p) = m.checked_sub(1).filter(|&p| p > open) else {
                    break None;
                };
                m = p;
                match toks.get(m).map_or("", |t| t.text) {
                    ")" | "]" | "}" => depth += 1,
                    "(" | "[" | "{" if depth > 0 => depth -= 1,
                    "(" => break Some(m),
                    "[" | "{" => break None,
                    _ => {}
                }
            };
            if let Some(p) = open_paren {
                let is_method = p >= 2
                    && toks.get(p - 1).is_some_and(|t| t.kind == TokenKind::Ident)
                    && toks.get(p - 2).is_some_and(|t| t.text == ".");
                if is_method {
                    let (ty, _) = tail_ty(p - 3, &out);
                    if !ty.is_empty() {
                        let name = toks.get(i + 1).map_or("", |t| t.text).to_string();
                        out.insert(name, LocalInfo { ty, is_lock: false });
                    }
                }
            }
            i += 3;
            continue;
        }
        // Match-arm variant patterns: `Enum::Variant(x) =>` binds the
        // tuple payload, `Enum::Variant { a, b } =>` binds the variant
        // fields (recorded under the enum's name). The trailing `=>`
        // is what separates patterns from constructor expressions.
        if text == "::" {
            let variant = toks
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Ident && t.text.starts_with(char::is_uppercase))
                .map(|t| t.text.to_string());
            let owner = i.checked_sub(1).and_then(|p| toks.get(p)).and_then(|t| {
                if t.text == "Self" {
                    item.self_ty.clone()
                } else if t.kind == TokenKind::Ident && t.text.starts_with(char::is_uppercase) {
                    Some(t.text.to_string())
                } else {
                    None
                }
            });
            if let (Some(variant), Some(owner)) = (variant, owner) {
                if toks.get(i + 2).is_some_and(|t| t.text == "(") {
                    let mut k = i + 3;
                    while toks
                        .get(k)
                        .is_some_and(|t| t.text == "ref" || t.text == "mut")
                    {
                        k += 1;
                    }
                    let bind = toks.get(k).filter(|t| {
                        t.kind == TokenKind::Ident && !t.text.starts_with(char::is_uppercase)
                    });
                    if let Some(bind) = bind {
                        if toks.get(k + 1).is_some_and(|t| t.text == ")")
                            && toks.get(k + 2).is_some_and(|t| t.text == "=>")
                        {
                            let ty = graph
                                .variants
                                .get(&(owner.clone(), variant.clone()))
                                .cloned()
                                .unwrap_or_default();
                            if !ty.is_empty() {
                                out.insert(bind.text.to_string(), LocalInfo { ty, is_lock: false });
                            }
                        }
                    }
                } else if toks.get(i + 2).is_some_and(|t| t.text == "{") {
                    let end = fd
                        .maps
                        .brace
                        .get(i + 2)
                        .copied()
                        .unwrap_or(crate::items::NONE);
                    if end != crate::items::NONE
                        && toks.get(end + 1).is_some_and(|t| t.text == "=>")
                    {
                        let mut m = i + 3;
                        while m < end {
                            let is_bind = toks.get(m).is_some_and(|t| {
                                t.kind == TokenKind::Ident
                                    && !t.text.starts_with(char::is_uppercase)
                            }) && toks
                                .get(m + 1)
                                .is_some_and(|t| t.text == "," || t.text == "}");
                            if is_bind {
                                let fname = toks.get(m).map_or("", |t| t.text);
                                if let Some((fty, flock)) =
                                    graph.fields.get(&(owner.clone(), fname.to_string()))
                                {
                                    out.insert(
                                        fname.to_string(),
                                        LocalInfo {
                                            ty: fty.clone(),
                                            is_lock: *flock,
                                        },
                                    );
                                }
                            }
                            m += 1;
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        if text == "let" {
            let cond_let = i
                .checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|t| t.text == "while" || t.text == "if");
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            // Refutable single-binding pattern: `Some(x)` / `Ok(x)`.
            let pat = toks
                .get(j)
                .filter(|t| t.text == "Some" || t.text == "Ok")
                .and_then(|_| {
                    let mut k = j + 1;
                    if toks.get(k)?.text != "(" {
                        return None;
                    }
                    k += 1;
                    if toks.get(k).is_some_and(|t| t.text == "mut") {
                        k += 1;
                    }
                    let name = toks.get(k).filter(|t| {
                        t.kind == TokenKind::Ident && !t.text.starts_with(char::is_uppercase)
                    })?;
                    if toks.get(k + 1)?.text != ")" || toks.get(k + 2)?.text != "=" {
                        return None;
                    }
                    Some((name.text.to_string(), k + 3))
                });
            if let Some((name, from)) = pat {
                // `Option`/`Result` peeling is free: the collapsed
                // principal of the success value IS the chain's type.
                let stop = init_end(from, cond_let);
                if let Some(last) = stop.checked_sub(1).filter(|&l| l >= from) {
                    let (ty, is_lock) = tail_ty(last, &out);
                    out.insert(name, LocalInfo { ty, is_lock });
                }
                i = j + 1;
                continue;
            }
            if cond_let {
                i += 1;
                continue;
            }
            // `let [mut] name [:ty] = init ;`
            let name_tok = toks.get(j).filter(|t| t.kind == TokenKind::Ident);
            let after = toks.get(j + 1).map_or("", |t| t.text);
            if let Some(name) = name_tok {
                if after == ":" || after == "=" {
                    // Statement extent: to the `;` at relative depth 0.
                    let mut depth = 0i64;
                    let mut end = j;
                    while end < close {
                        match toks.get(end).map_or("", |t| t.text) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth <= 0 => break,
                            _ => {}
                        }
                        end += 1;
                    }
                    let stmt = toks.get(i..end).unwrap_or(&[]);
                    let mut ty = infer_let_type(stmt, &out);
                    if ty.is_empty() {
                        ty = infer_call_ret(stmt, item, &graph.syms, by_name);
                    }
                    let mut chain_lock = false;
                    if ty.is_empty() {
                        (ty, chain_lock) = infer_field_chain(stmt, item, &out, &graph.fields);
                    }
                    // Chain-typing fallback — only when the initializer
                    // is a plain expression (a depth-0 `{` means a
                    // `match`/`if` arm result, whose tail token is not
                    // the value's type).
                    if ty.is_empty() && !chain_lock {
                        let eq = (j + 1..end)
                            .find(|&m| toks.get(m).is_some_and(|t| t.text == "="))
                            .map(|m| m + 1)
                            .unwrap_or(end);
                        if init_end(eq, true) >= end {
                            if let Some(last) = end.checked_sub(1).filter(|&l| l >= eq) {
                                (ty, chain_lock) = tail_ty(last, &out);
                            }
                        }
                    }
                    let is_lock = chain_lock
                        || stmt.iter().any(|t| {
                            t.kind == TokenKind::Ident
                                && (t.text == "Mutex"
                                    || t.text == "RwLock"
                                    || lock_aliases.iter().any(|a| a == t.text))
                        });
                    out.insert(name.text.to_string(), LocalInfo { ty, is_lock });
                    // Resume INSIDE the initializer, not past it: a
                    // `let x = match .. { .. };` init contains further
                    // `let`s (scopes are flattened; shadowing keeps the
                    // last binding, which is the close-enough answer).
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Pointer-ish wrappers whose `::new`/`::clone` initializers should be
/// peeled to the wrapped value's type (matching [`principal_ty`]).
const WRAPPER_TYPES: &[&str] = &["Arc", "Rc", "Box", "RefCell", "Cell"];

/// Principal type of a `let` statement: the annotation if present,
/// else a `Type::ctor(..)` / `Type { .. }` initializer's type.
/// `Arc::new(Inner { .. })` peels to `Inner`; `Arc::clone(&x)` reuses
/// the already-collected type of `x`.
fn infer_let_type(stmt: &[Token<'_>], known: &BTreeMap<String, LocalInfo>) -> String {
    if let Some(colon) = stmt.iter().position(|t| t.text == ":") {
        let eq = stmt
            .iter()
            .position(|t| t.text == "=")
            .unwrap_or(stmt.len());
        if colon < eq {
            return principal_ty(stmt.get(colon + 1..eq).unwrap_or(&[]));
        }
    }
    if let Some(eq) = stmt.iter().position(|t| t.text == "=") {
        let init = stmt.get(eq + 1..).unwrap_or(&[]);
        let first = init.first();
        let starts_upper = first.is_some_and(|t| {
            t.kind == TokenKind::Ident && t.text.starts_with(|c: char| c.is_ascii_uppercase())
        });
        if starts_upper {
            let follows = init.get(1).map_or("", |t| t.text);
            let name = first.map_or("", |t| t.text);
            if WRAPPER_TYPES.contains(&name) && follows == "::" {
                // Look inside the ctor's parens: a named inner type, or
                // a `&local` whose type we already collected.
                let inner = init.get(4..).unwrap_or(&[]);
                if let Some(t) = inner.iter().find(|t| {
                    t.kind == TokenKind::Ident
                        && t.text.starts_with(|c: char| c.is_ascii_uppercase())
                        && !WRAPPER_TYPES.contains(&t.text)
                }) {
                    return t.text.to_string();
                }
                if let Some(t) = inner
                    .iter()
                    .find(|t| t.kind == TokenKind::Ident)
                    .and_then(|t| known.get(t.text))
                {
                    return t.ty.clone();
                }
                return String::new();
            }
            if follows == "::" || follows == "{" {
                return name.to_string();
            }
        }
    }
    String::new()
}

/// Types a `let x = f(..)` / `let x = self.m(..)` initializer from the
/// callee's declared return type, when the callee pins down uniquely.
fn infer_call_ret(
    stmt: &[Token<'_>],
    item: &FnItem,
    syms: &[Sym],
    by_name: &BTreeMap<String, Vec<usize>>,
) -> String {
    let Some(eq) = stmt.iter().position(|t| t.text == "=") else {
        return String::new();
    };
    let init = stmt.get(eq + 1..).unwrap_or(&[]);
    let ret_of = |want: &dyn Fn(&Sym) -> bool, name: &str| -> String {
        let hits: Vec<&Sym> = by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .filter_map(|&c| syms.get(c))
                    .filter(|s| want(s))
                    .collect()
            })
            .unwrap_or_default();
        match hits.as_slice() {
            [one] => one.item.ret_ty.clone(),
            _ => String::new(),
        }
    };
    // `self.m(..)` — a method on the caller's own type.
    if init.first().is_some_and(|t| t.text == "self")
        && init.get(1).is_some_and(|t| t.text == ".")
        && init.get(3).is_some_and(|t| t.text == "(")
    {
        if let Some(m) = init.get(2).filter(|t| t.kind == TokenKind::Ident) {
            return ret_of(
                &|s: &Sym| s.item.has_self && s.item.self_ty == item.self_ty,
                m.text,
            );
        }
    }
    // `f(..)` — a free fn; same module first, then a globally unique one.
    if init.get(1).is_some_and(|t| t.text == "(") {
        if let Some(f) = init
            .first()
            .filter(|t| t.kind == TokenKind::Ident && !CALL_KEYWORDS.contains(&t.text))
        {
            let same = ret_of(
                &|s: &Sym| s.item.self_ty.is_none() && s.item.module == item.module,
                f.text,
            );
            if !same.is_empty() {
                return same;
            }
            return ret_of(&|s: &Sym| s.item.self_ty.is_none(), f.text);
        }
    }
    String::new()
}

/// Types a pure field-path initializer: `let toks = fd.tokens;`,
/// `let q = &self.workers[i].queue;`. The chain must be idents joined
/// by `.` with optional index suffixes — any call or literal bails.
/// Returns the final field's principal type and lock-ness.
fn infer_field_chain(
    stmt: &[Token<'_>],
    item: &FnItem,
    known: &BTreeMap<String, LocalInfo>,
    fields: &BTreeMap<(String, String), (String, bool)>,
) -> (String, bool) {
    let none = (String::new(), false);
    let Some(eq) = stmt.iter().position(|t| t.text == "=") else {
        return none;
    };
    let init = stmt.get(eq + 1..).unwrap_or(&[]);
    // Strip leading borrows/derefs.
    let mut k = 0;
    while init
        .get(k)
        .is_some_and(|t| t.text == "&" || t.text == "*" || t.text == "mut")
    {
        k += 1;
    }
    // Parse `ident (. ident | [ .. ])*` to the end of the initializer.
    let mut segs: Vec<&str> = Vec::new();
    let Some(root) = init.get(k).filter(|t| t.kind == TokenKind::Ident) else {
        return none;
    };
    segs.push(root.text);
    k += 1;
    while k < init.len() {
        match init.get(k).map_or("", |t| t.text) {
            "." => {
                match init.get(k + 1) {
                    Some(t) if t.kind == TokenKind::Ident => segs.push(t.text),
                    _ => return none,
                }
                k += 2;
            }
            "[" => {
                let mut depth = 1i64;
                k += 1;
                while k < init.len() && depth > 0 {
                    match init.get(k).map_or("", |t| t.text) {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ => return none,
        }
    }
    let (first, rest) = match segs.split_first() {
        Some(x) => x,
        None => return none,
    };
    let mut ty = if *first == "self" {
        match &item.self_ty {
            Some(t) => t.clone(),
            None => return none,
        }
    } else if let Some(p) = item.params.iter().find(|p| p.name == *first) {
        if rest.is_empty() {
            return (p.ty.clone(), p.is_lock);
        }
        p.ty.clone()
    } else if let Some(info) = known.get(*first) {
        if rest.is_empty() {
            return (info.ty.clone(), info.is_lock);
        }
        info.ty.clone()
    } else {
        return none;
    };
    let mut is_lock = false;
    for seg in rest {
        let Some((fty, fl)) = fields.get(&(ty.clone(), (*seg).to_string())) else {
            return none;
        };
        is_lock = *fl;
        ty = fty.clone();
    }
    (ty, is_lock)
}

struct ResolveCtx<'a, 'b> {
    graph: &'a Graph,
    files: &'a [FileData<'b>],
    by_name: &'a BTreeMap<String, Vec<usize>>,
    aliases: &'a AliasTable,
    caller: &'a Sym,
    locals: &'a BTreeMap<String, LocalInfo>,
}

/// Extracts and resolves every call/reference site in one fn body.
#[allow(clippy::too_many_arguments)]
fn extract_sites(
    graph: &Graph,
    files: &[FileData<'_>],
    by_name: &BTreeMap<String, Vec<usize>>,
    aliases: &AliasTable,
    sym_idx: usize,
    sym: &Sym,
    fd: &FileData<'_>,
    locals: &BTreeMap<String, LocalInfo>,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let Some((open, close)) = sym.item.body else {
        return out;
    };
    // Nested fn items own their ranges — exclude them from this body.
    let nested: Vec<(usize, usize)> = graph
        .syms
        .iter()
        .filter(|s| {
            s.file == sym.file
                && s.item.sig_start > open
                && s.item.body.is_some_and(|(_, c)| c < close)
                && s.item.sig_start != sym.item.sig_start
        })
        .filter_map(|s| s.item.body.map(|(_, c)| (s.item.sig_start, c)))
        .collect();
    let skip = |i: usize| nested.iter().any(|&(a, b)| i >= a && i <= b) || fd.maps.in_attr(i);
    let ctx = ResolveCtx {
        graph,
        files,
        by_name,
        aliases,
        caller: sym,
        locals,
    };

    let toks = fd.tokens;
    let mut i = open + 1;
    while i < close {
        if skip(i) {
            i += 1;
            continue;
        }
        let Some(t) = toks.get(i) else { break };
        if t.text == "(" {
            if let Some(site) = classify_call(&ctx, fd, sym_idx, toks, i) {
                out.push(site);
            }
            i += 1;
            continue;
        }
        // Bare fn-reference path: `a::b::f` not followed by a call,
        // macro bang, struct literal, or more path.
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == "::")
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.text == "::" || p.text == ".")
        {
            let mut j = i;
            while toks.get(j + 1).is_some_and(|n| n.text == "::")
                && toks.get(j + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                j += 2;
            }
            let after = toks.get(j + 1).map_or("", |t| t.text);
            if j > i && after != "(" && after != "!" && after != "{" && after != "::" {
                let segs: Vec<String> = (i..=j)
                    .step_by(2)
                    .filter_map(|k| toks.get(k).map(|t| t.text.to_string()))
                    .collect();
                if let Some((name, quals)) = segs.split_last() {
                    let cands = resolve_qualified(&ctx, quals, name);
                    if !cands.is_empty() {
                        out.push(CallSite {
                            tok: i,
                            line: t.line,
                            name: name.clone(),
                            callees: cands,
                            res: Res::Unique,
                            is_ref: true,
                            recv: RecvClass::None,
                            args: Vec::new(),
                            arg_class: Vec::new(),
                        });
                    }
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Lock-relevant classification of each argument expression (by its
/// trailing ident chain).
fn classify_args(
    ctx: &ResolveCtx<'_, '_>,
    fd: &FileData<'_>,
    toks: &[Token<'_>],
    args: &[(usize, usize)],
) -> Vec<RecvClass> {
    args.iter()
        .map(|&(s, e)| {
            let last = e.checked_sub(1).filter(|&l| l >= s);
            match last.and_then(|l| toks.get(l)) {
                Some(t) if t.kind == TokenKind::Ident || t.text == "]" => {
                    receiver_class(ctx, fd, toks, last)
                }
                _ => RecvClass::Unknown,
            }
        })
        .collect()
}

/// Classifies the call whose `(` sits at `paren`, if it is one.
fn classify_call(
    ctx: &ResolveCtx<'_, '_>,
    fd: &FileData<'_>,
    _sym_idx: usize,
    toks: &[Token<'_>],
    paren: usize,
) -> Option<CallSite> {
    let close = fd.maps.paren.get(paren).copied().unwrap_or(NONE);
    let args = if close == NONE {
        Vec::new()
    } else {
        split_args(toks, paren, close)
    };
    let arg_class = classify_args(ctx, fd, toks, &args);
    let mut j = paren.checked_sub(1)?;
    // Turbofish: `name::<T>(..)` — step back over the generic args.
    if toks.get(j).is_some_and(|t| t.text == ">") {
        let mut depth = 1i64;
        while j > 0 && depth > 0 {
            j -= 1;
            match toks.get(j).map_or("", |t| t.text) {
                "<" => depth -= 1,
                "<<" => depth -= 2,
                ">" => depth += 1,
                ">>" => depth += 2,
                _ => {}
            }
        }
        j = j.checked_sub(1)?; // the `::` before `<`
        if toks.get(j).is_none_or(|t| t.text != "::") {
            return None;
        }
        j = j.checked_sub(1)?;
    }
    let prev = toks.get(j)?;
    // Dynamic: `(f)(x)`, `}(`, or a call through a callable param.
    if prev.text == ")" {
        return Some(CallSite {
            tok: paren,
            line: prev.line,
            name: "<dynamic>".to_string(),
            callees: Vec::new(),
            res: Res::Dynamic,
            is_ref: false,
            recv: RecvClass::None,
            args,
            arg_class,
        });
    }
    if prev.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&prev.text) {
        return None;
    }
    let name = prev.text.to_string();
    // Walk back `::`-separated qualifiers.
    let mut quals: Vec<String> = Vec::new();
    let mut q = j;
    while q >= 2
        && toks.get(q - 1).is_some_and(|t| t.text == "::")
        && toks
            .get(q - 2)
            .is_some_and(|t| t.kind == TokenKind::Ident || t.text == "crate")
    {
        quals.insert(0, toks.get(q - 2).map_or("", |t| t.text).to_string());
        q -= 2;
    }
    let line = prev.line;
    // Call through a callable parameter → dynamic.
    if quals.is_empty()
        && ctx
            .caller
            .item
            .params
            .iter()
            .any(|p| p.callable && p.name == name)
    {
        return Some(CallSite {
            tok: paren,
            line,
            name,
            callees: Vec::new(),
            res: Res::Dynamic,
            is_ref: false,
            recv: RecvClass::None,
            args,
            arg_class,
        });
    }
    let is_method = quals.is_empty() && q >= 1 && toks.get(q - 1).is_some_and(|t| t.text == ".");
    if is_method {
        let recv = receiver_class(ctx, fd, toks, q.checked_sub(2));
        let (callees, res) = resolve_method(ctx, &name, &recv);
        return Some(CallSite {
            tok: paren,
            line,
            name,
            callees,
            res,
            is_ref: false,
            recv,
            args,
            arg_class,
        });
    }
    // Free or qualified call.
    let (callees, res) = if quals.is_empty() {
        resolve_free(ctx, &name)
    } else {
        let cands = resolve_qualified(ctx, &quals, &name);
        match cands.len() {
            0 => (cands, Res::External),
            1 => (cands, Res::Unique),
            _ => (cands, Res::Ambiguous),
        }
    };
    Some(CallSite {
        tok: paren,
        line,
        name,
        callees,
        res,
        is_ref: false,
        recv: RecvClass::None,
        args,
        arg_class,
    })
}

fn split_args(toks: &[Token<'_>], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for i in open + 1..close {
        match toks.get(i).map_or("", |t| t.text) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth <= 0 => {
                if i > start {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if close > start {
        out.push((start, close));
    }
    out
}

/// Types the receiver chain ending at token index `end` (inclusive),
/// walking field accesses left-to-right from the chain root.
fn receiver_class(
    ctx: &ResolveCtx<'_, '_>,
    fd: &FileData<'_>,
    toks: &[Token<'_>],
    end: Option<usize>,
) -> RecvClass {
    let Some(mut i) = end else {
        return RecvClass::Unknown;
    };
    // Collect the chain backwards: idents joined by `.`, allowing one
    // index step (`xs[i]`) per element. A `)` is a call-result root,
    // typed through the callee's declared return type. A `}` whose
    // matching `{` follows a type name is a struct-literal root
    // (`Lexer { .. }.run()`).
    let mut chain: Vec<&str> = Vec::new();
    let mut literal_ty: Option<&str> = None;
    let mut call_ty: Option<String> = None;
    loop {
        // Skip an index suffix.
        if toks.get(i).is_some_and(|t| t.text == "]") {
            let open = (0..i)
                .rev()
                .find(|&o| fd.maps.bracket.get(o).copied() == Some(i));
            match open.and_then(|o| o.checked_sub(1)) {
                Some(p) => i = p,
                None => return RecvClass::Unknown,
            }
        }
        let Some(t) = toks.get(i) else {
            return RecvClass::Unknown;
        };
        if t.text == ")" {
            let r = call_result_ty(ctx, fd, toks, i);
            if r.is_empty() {
                return RecvClass::Unknown;
            }
            call_ty = Some(r);
            break;
        }
        if t.text == "}" {
            let open = (0..i)
                .rev()
                .find(|&o| fd.maps.brace.get(o).copied() == Some(i));
            let before = open
                .and_then(|o| o.checked_sub(1))
                .and_then(|p| toks.get(p));
            match before {
                Some(b)
                    if b.kind == TokenKind::Ident
                        && b.text.starts_with(|c: char| c.is_ascii_uppercase()) =>
                {
                    literal_ty = Some(b.text);
                    break;
                }
                _ => return RecvClass::Unknown,
            }
        }
        if t.kind != TokenKind::Ident {
            return RecvClass::Unknown;
        }
        chain.insert(0, t.text);
        match i.checked_sub(1).and_then(|p| toks.get(p)) {
            Some(p) if p.text == "." => match i.checked_sub(2) {
                Some(p2) => i = p2,
                None => return RecvClass::Unknown,
            },
            _ => break,
        }
    }
    // Root of the chain.
    let mut ty: String;
    let mut lock_hit: Option<RecvClass> = None;
    let rest: &[&str];
    if let Some(ct) = call_ty {
        // Segments collected so far are fields of the call's result.
        ty = ct;
        rest = &chain;
    } else if let Some(lt) = literal_ty {
        // Every collected segment is a field of the literal's type.
        ty = lt.to_string();
        rest = &chain;
    } else {
        let (first, tail) = match chain.split_first() {
            Some(x) => x,
            None => return RecvClass::Unknown,
        };
        rest = tail;
        if *first == "self" {
            match &ctx.caller.item.self_ty {
                Some(t) => ty = t.clone(),
                None => return RecvClass::Unknown,
            }
            if rest.is_empty() {
                return RecvClass::SelfRecv;
            }
        } else if let Some((k, p)) = ctx
            .caller
            .item
            .params
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == *first)
        {
            if rest.is_empty() && p.is_lock {
                return RecvClass::LockParam(k);
            }
            ty = p.ty.clone();
        } else if let Some(info) = ctx.locals.get(*first) {
            if rest.is_empty() && info.is_lock {
                return RecvClass::LockLocal((*first).to_string());
            }
            ty = info.ty.clone();
        } else if let Some((sty, is_lock)) = ctx.graph.statics.get(*first) {
            if rest.is_empty() && *is_lock {
                return RecvClass::LockStatic((*first).to_string());
            }
            ty = sty.clone();
        } else {
            return RecvClass::Unknown;
        }
    }
    // Walk fields.
    for (n, seg) in rest.iter().enumerate() {
        if ty.is_empty() {
            return RecvClass::Unknown;
        }
        let Some((fty, is_lock)) = ctx.graph.fields.get(&(ty.clone(), (*seg).to_string())) else {
            return RecvClass::Unknown;
        };
        if n + 1 == rest.len() && *is_lock {
            lock_hit = Some(RecvClass::LockField(ty.clone(), (*seg).to_string()));
        }
        ty = fty.clone();
    }
    if let Some(l) = lock_hit {
        return l;
    }
    if ty.is_empty() {
        RecvClass::Unknown
    } else {
        RecvClass::Typed(ty)
    }
}

/// Principal result type of the call expression whose closing `)` is
/// at `close`: a workspace callee's declared return type, [`EXT_TY`]
/// when the result is definitely std/vendor (lock guards included),
/// or empty when unknown. Mutually recursive with [`receiver_class`]
/// on the inner receiver chain; token indices strictly decrease, so
/// the recursion is bounded by the chain length.
fn call_result_ty(
    ctx: &ResolveCtx<'_, '_>,
    fd: &FileData<'_>,
    toks: &[Token<'_>],
    close: usize,
) -> String {
    let Some(open) = (0..close)
        .rev()
        .find(|&o| fd.maps.paren.get(o).copied() == Some(close))
    else {
        return String::new();
    };
    let Some(j) = open.checked_sub(1) else {
        return String::new();
    };
    let Some(prev) = toks.get(j) else {
        return String::new();
    };
    if prev.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&prev.text) {
        return String::new();
    }
    let name = prev.text;
    // Method call: type the inner receiver first.
    if j >= 1 && toks.get(j - 1).is_some_and(|t| t.text == ".") {
        // A method name with no workspace impl at all is std whatever
        // the receiver is (`.parse()`, `.join()`, iterator adapters) —
        // except identity adapters, which keep the receiver's type.
        let any_impl = ctx.by_name.get(name).is_some_and(|v| {
            v.iter()
                .any(|&c| ctx.graph.syms.get(c).is_some_and(|s| s.item.has_self))
        });
        if !any_impl && !IDENTITY_METHODS.contains(&name) {
            return EXT_TY.to_string();
        }
        let inner = receiver_class(ctx, fd, toks, j.checked_sub(2));
        let want: Option<String> = match inner {
            RecvClass::LockField(..)
            | RecvClass::LockStatic(_)
            | RecvClass::LockParam(_)
            | RecvClass::LockLocal(_) => {
                // `.lock()`/`.read()`/`.write()` yield guards; anything
                // else on a raw Mutex/RwLock value is std too.
                return EXT_TY.to_string();
            }
            RecvClass::Typed(t) if t == EXT_TY => return EXT_TY.to_string(),
            RecvClass::Typed(t) => Some(t),
            RecvClass::SelfRecv => ctx.caller.item.self_ty.clone(),
            RecvClass::None | RecvClass::Unknown => None,
        };
        let Some(want) = want else {
            return String::new();
        };
        let matching: Vec<usize> = ctx
            .by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&c| {
                        ctx.graph.syms.get(c).is_some_and(|s| {
                            s.item.has_self && s.item.self_ty.as_deref() == Some(want.as_str())
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        return match matching.as_slice() {
            // `.clone()` etc. keep the receiver's type; any other
            // method with no workspace impl yields a std value.
            [] if IDENTITY_METHODS.contains(&name) => want,
            [] => EXT_TY.to_string(),
            [one] => ctx
                .graph
                .syms
                .get(*one)
                .map(|s| s.item.ret_ty.clone())
                .unwrap_or_default(),
            _ => String::new(),
        };
    }
    // Qualified path call `A::b(..)`.
    let mut quals: Vec<String> = Vec::new();
    let mut q = j;
    while q >= 2
        && toks.get(q - 1).is_some_and(|t| t.text == "::")
        && toks
            .get(q - 2)
            .is_some_and(|t| t.kind == TokenKind::Ident || t.text == "crate")
    {
        quals.insert(0, toks.get(q - 2).map_or("", |t| t.text).to_string());
        q -= 2;
    }
    if !quals.is_empty() {
        let cands = resolve_qualified(ctx, &quals, name);
        return match cands.as_slice() {
            [] => EXT_TY.to_string(),
            [one] => ctx
                .graph
                .syms
                .get(*one)
                .map(|s| s.item.ret_ty.clone())
                .unwrap_or_default(),
            _ => String::new(),
        };
    }
    // Free call.
    let (cands, res) = resolve_free(ctx, name);
    match (cands.as_slice(), res) {
        ([one], Res::Unique) => ctx
            .graph
            .syms
            .get(*one)
            .map(|s| s.item.ret_ty.clone())
            .unwrap_or_default(),
        ([], Res::External) => EXT_TY.to_string(),
        _ => String::new(),
    }
}

fn resolve_method(ctx: &ResolveCtx<'_, '_>, name: &str, recv: &RecvClass) -> (Vec<usize>, Res) {
    let cands: Vec<usize> = ctx
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&c| ctx.graph.syms.get(c).is_some_and(|s| s.item.has_self))
                .collect()
        })
        .unwrap_or_default();
    if cands.is_empty() {
        return (Vec::new(), Res::External);
    }
    let want_ty: Option<&str> = match recv {
        RecvClass::SelfRecv => ctx.caller.item.self_ty.as_deref(),
        RecvClass::Typed(t) => Some(t.as_str()),
        RecvClass::LockField(..)
        | RecvClass::LockStatic(_)
        | RecvClass::LockParam(_)
        | RecvClass::LockLocal(_) => {
            // Methods on raw lock values (`.lock()` handled separately;
            // anything else on a Mutex is std).
            return (Vec::new(), Res::External);
        }
        RecvClass::None | RecvClass::Unknown => None,
    };
    if let Some(want) = want_ty {
        let typed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                ctx.graph
                    .syms
                    .get(c)
                    .is_some_and(|s| s.item.self_ty.as_deref() == Some(want))
            })
            .collect();
        return match typed.len() {
            // A typed receiver matching no workspace impl is a std or
            // vendor method (e.g. `map.insert` on a BTreeMap).
            0 => (Vec::new(), Res::External),
            1 => (typed, Res::Unique),
            _ => (typed, Res::Ambiguous),
        };
    }
    // Unknown receiver: conservative fan-out to every method candidate.
    match cands.len() {
        1 => (cands, Res::Unique),
        _ => (cands, Res::Ambiguous),
    }
}

fn resolve_free(ctx: &ResolveCtx<'_, '_>, name: &str) -> (Vec<usize>, Res) {
    let all: Vec<usize> = ctx.by_name.get(name).cloned().unwrap_or_default();
    // 1. Same-module free fn (includes nested fns in this file).
    let same_module: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&c| {
            ctx.graph.syms.get(c).is_some_and(|s| {
                s.item.self_ty.is_none() && s.item.module == ctx.caller.item.module
            })
        })
        .collect();
    if let [one] = same_module.as_slice() {
        return (vec![*one], Res::Unique);
    }
    // 2. This file's imports.
    let Some(fd) = ctx.files.get(ctx.caller.file) else {
        return (Vec::new(), Res::External);
    };
    for u in &fd.items.uses {
        if u.glob || u.name != name {
            continue;
        }
        let abs = resolve_use_path(&u.path, &fd.items.module);
        let is_workspace_path = abs
            .first()
            .is_some_and(|s| ctx.files.iter().any(|f| f.items.module.first() == Some(s)));
        if !is_workspace_path {
            // `use std::mem::take;` — the name is shadowed external.
            return (Vec::new(), Res::External);
        }
        let quals = abs.get(..abs.len().saturating_sub(1)).unwrap_or(&[]);
        let target = u.path.last().map_or(name, String::as_str);
        let cands = resolve_qualified(ctx, quals, target);
        return match cands.len() {
            0 => (Vec::new(), Res::External),
            1 => (cands, Res::Unique),
            _ => (cands, Res::Ambiguous),
        };
    }
    // 3. Glob imports.
    let mut from_globs: Vec<usize> = Vec::new();
    for u in &fd.items.uses {
        if !u.glob {
            continue;
        }
        let abs = resolve_use_path(&u.path, &fd.items.module);
        from_globs.extend(all.iter().copied().filter(|&c| {
            ctx.graph
                .syms
                .get(c)
                .is_some_and(|s| s.item.self_ty.is_none() && s.item.module == abs)
        }));
    }
    from_globs.dedup();
    if let [one] = from_globs.as_slice() {
        return (vec![*one], Res::Unique);
    }
    if from_globs.len() > 1 {
        return (from_globs, Res::Ambiguous);
    }
    // 4. Unique free fn anywhere in the workspace.
    let free: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&c| {
            ctx.graph
                .syms
                .get(c)
                .is_some_and(|s| s.item.self_ty.is_none())
        })
        .collect();
    match free.len() {
        0 => (Vec::new(), Res::External),
        1 => (free, Res::Unique),
        _ => (free, Res::Ambiguous),
    }
}

/// Resolves a qualified path call `quals::name(..)`.
fn resolve_qualified(ctx: &ResolveCtx<'_, '_>, quals: &[String], name: &str) -> Vec<usize> {
    let mut abs: Vec<String> = Vec::new();
    let caller_mod = &ctx.caller.item.module;
    match quals.first().map(String::as_str) {
        Some("crate") => {
            abs.extend(caller_mod.first().cloned());
            abs.extend(quals.get(1..).unwrap_or(&[]).iter().cloned());
        }
        Some("self") => {
            abs.extend(caller_mod.iter().cloned());
            abs.extend(quals.get(1..).unwrap_or(&[]).iter().cloned());
        }
        Some("super") => {
            let take = caller_mod.len().saturating_sub(1);
            abs.extend(caller_mod.get(..take).unwrap_or(&[]).iter().cloned());
            abs.extend(quals.get(1..).unwrap_or(&[]).iter().cloned());
        }
        Some("Self") => {
            abs.extend(ctx.caller.item.self_ty.iter().cloned());
            abs.extend(quals.get(1..).unwrap_or(&[]).iter().cloned());
        }
        Some(first) => {
            abs.push(normalize_seg(first));
            abs.extend(quals.get(1..).unwrap_or(&[]).iter().cloned());
        }
        None => {}
    }
    let mut cands: Vec<usize> = ctx
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&c| ctx.graph.syms.get(c).is_some_and(|s| qual_matches(&abs, s)))
                .collect()
        })
        .unwrap_or_default();
    // Re-export aliases: `mod::alias(..)` where `pub use real as alias`.
    for (amod, aname, targets) in ctx.aliases {
        if aname != name {
            continue;
        }
        let mut full = amod.clone();
        full.push(aname.clone());
        // The qualifier must be a suffix-compatible subsequence of the
        // alias's module path.
        let dummy = Sym {
            file: 0,
            item: FnItem {
                name: aname.clone(),
                module: amod.clone(),
                self_ty: None,
                has_self: false,
                params: Vec::new(),
                returns_guard: false,
                ret_ty: String::new(),
                line: 0,
                sig_start: 0,
                body: None,
            },
            qname: String::new(),
        };
        if qual_matches(&abs, &dummy) {
            cands.extend(targets.iter().copied());
        }
    }
    cands.sort_unstable();
    cands.dedup();
    // A module-qualified call (`adc_trace::span(..)`) can only land on
    // a method if the path names the type explicitly (`Summary::span`).
    // When the last qualifier is NOT the candidate's self type, the
    // candidate would need a positional `self` — drop it in favour of
    // free functions on the same path.
    if cands.len() > 1 {
        let last = quals.last().map(|s| normalize_seg(s)).unwrap_or_default();
        let narrowed: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                ctx.graph.syms.get(c).is_some_and(|s| {
                    !s.item.has_self || s.item.self_ty.as_deref() == Some(last.as_str())
                })
            })
            .collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{parse_file, token_maps};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    struct Built {
        graph: Graph,
        files: Vec<String>,
    }

    fn build_from(sources: &[(&str, &str)]) -> Built {
        let lexed: Vec<_> = sources.iter().map(|(_, s)| lex(s)).collect();
        let maps: Vec<_> = lexed.iter().map(|l| token_maps(&l.tokens)).collect();
        let spans: Vec<_> = lexed.iter().map(|l| test_spans(&l.tokens)).collect();
        let items: Vec<_> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&spans)
            .map(|((((p, _), l), m), sp)| parse_file(p, &l.tokens, m, sp))
            .collect();
        let data: Vec<FileData<'_>> = sources
            .iter()
            .zip(&lexed)
            .zip(&maps)
            .zip(&items)
            .map(|((((p, _), l), m), it)| FileData {
                rel_path: p,
                tokens: &l.tokens,
                maps: m,
                items: it,
            })
            .collect();
        Built {
            graph: build(&data),
            files: sources.iter().map(|(p, _)| (*p).to_string()).collect(),
        }
    }

    fn edges_of<'g>(b: &'g Built, qname_end: &str) -> Vec<&'g str> {
        let idx = b
            .graph
            .syms
            .iter()
            .position(|s| s.qname.ends_with(qname_end))
            .unwrap_or_else(|| panic!("no symbol {qname_end}"));
        b.graph
            .sites
            .get(idx)
            .map(|sites| {
                sites
                    .iter()
                    .flat_map(|s| s.callees.iter())
                    .filter_map(|&c| b.graph.syms.get(c).map(|s| s.qname.as_str()))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn shadowed_names_resolve_per_module() {
        let b = build_from(&[
            (
                "crates/runtime/src/a.rs",
                "pub fn helper() {}\npub fn caller_a() { helper(); }\n",
            ),
            (
                "crates/server/src/b.rs",
                "pub fn helper() {}\npub fn caller_b() { helper(); }\n",
            ),
        ]);
        assert_eq!(
            edges_of(&b, "runtime::a::caller_a"),
            vec!["runtime::a::helper"]
        );
        assert_eq!(
            edges_of(&b, "server::b::caller_b"),
            vec!["server::b::helper"]
        );
        assert_eq!(b.graph.stats.unique, 2);
        assert_eq!(b.graph.stats.ambiguous, 0);
        let _ = b.files;
    }

    #[test]
    fn method_vs_free_fn_disambiguates_by_receiver_type() {
        let b = build_from(&[(
            "crates/runtime/src/m.rs",
            "pub fn run() {}\n\
             pub struct Engine;\nimpl Engine {\n    pub fn run(&self) {}\n    \
             pub fn go(&self) { self.run(); }\n}\n\
             pub fn free_caller() { run(); }\n\
             pub fn typed_caller(e: &Engine) { e.run(); }\n",
        )]);
        assert_eq!(edges_of(&b, "::go"), vec!["runtime::m::Engine::run"]);
        assert_eq!(edges_of(&b, "::free_caller"), vec!["runtime::m::run"]);
        assert_eq!(
            edges_of(&b, "::typed_caller"),
            vec!["runtime::m::Engine::run"]
        );
        assert_eq!(b.graph.stats.ambiguous, 0, "{:?}", b.graph.stats.unresolved);
    }

    #[test]
    fn pub_use_reexports_resolve_to_the_real_symbol() {
        let b = build_from(&[
            (
                "crates/server/src/protocol.rs",
                "pub fn decode_frame(b: &[u8]) -> u32 { b.len() as u32 }\n",
            ),
            (
                "crates/server/src/lib.rs",
                "pub mod protocol;\npub use protocol::decode_frame as decode;\n",
            ),
            (
                "crates/cluster/src/c.rs",
                "pub fn go(b: &[u8]) -> u32 { adc_server::decode(b) }\n",
            ),
        ]);
        assert_eq!(
            edges_of(&b, "cluster::c::go"),
            vec!["server::protocol::decode_frame"]
        );
    }

    #[test]
    fn qualified_calls_tolerate_reexport_flattening() {
        let b = build_from(&[
            (
                "crates/runtime/src/cache.rs",
                "pub struct ResultCache;\nimpl ResultCache {\n    pub fn on_disk(p: &str) -> Self { ResultCache }\n}\n",
            ),
            (
                "crates/server/src/jobs.rs",
                "pub fn open(p: &str) { let _c = adc_runtime::ResultCache::on_disk(p); }\n",
            ),
        ]);
        assert_eq!(
            edges_of(&b, "server::jobs::open"),
            vec!["runtime::cache::ResultCache::on_disk"]
        );
    }

    #[test]
    fn dynamic_calls_are_recorded_not_dropped() {
        let b = build_from(&[(
            "crates/server/src/d.rs",
            "pub fn apply(f: &dyn Fn() -> u32) -> u32 { f() }\n\
             pub fn iife() -> u32 { (|| 7)() }\n",
        )]);
        assert_eq!(b.graph.stats.dynamic, 2, "{:?}", b.graph.stats.unresolved);
        assert_eq!(b.graph.stats.unresolved.len(), 2);
    }

    #[test]
    fn imports_resolve_and_std_imports_shadow_to_external() {
        let b = build_from(&[
            (
                "crates/runtime/src/util.rs",
                "pub fn take(x: u32) -> u32 { x }\n",
            ),
            (
                "crates/runtime/src/a.rs",
                "use std::mem::take;\npub fn uses_std(v: &mut Vec<u32>) { let _ = take(&mut 1); }\n",
            ),
            (
                "crates/runtime/src/b.rs",
                "use crate::util::take;\npub fn uses_ws() { let _ = take(1); }\n",
            ),
        ]);
        assert!(edges_of(&b, "runtime::a::uses_std").is_empty());
        assert_eq!(
            edges_of(&b, "runtime::b::uses_ws"),
            vec!["runtime::util::take"]
        );
    }

    #[test]
    fn receiver_chains_type_through_fields_and_locks() {
        let b = build_from(&[(
            "crates/runtime/src/p.rs",
            "pub struct Inner { pub q: Mutex<Vec<u32>> }\n\
             pub struct State { pub inner: Inner }\n\
             impl State { pub fn poke(&self) { let _g = self.inner.q.lock(); } }\n",
        )]);
        let idx = b
            .graph
            .syms
            .iter()
            .position(|s| s.qname.ends_with("State::poke"))
            .expect("poke");
        let sites = b.graph.sites.get(idx).expect("sites");
        let lock_site = sites.iter().find(|s| s.name == "lock").expect("lock site");
        assert_eq!(
            lock_site.recv,
            RecvClass::LockField("Inner".to_string(), "q".to_string())
        );
        assert_eq!(lock_site.res, Res::External);
    }

    #[test]
    fn match_arm_variant_bindings_type_from_the_enum() {
        // Decoy impl makes `ping` ambiguous unless `r` is typed from
        // the `Req::Msg(PingReq)` tuple payload.
        let b = build_from(&[(
            "crates/server/src/e.rs",
            "pub struct PingReq;\nimpl PingReq {\n    pub fn ping(&self) {}\n}\n\
             pub struct Decoy;\nimpl Decoy {\n    pub fn ping(&self) {}\n}\n\
             pub enum Req { Msg(PingReq), Quit }\n\
             impl Req {\n    pub fn go(&self) {\n        match self {\n            \
             Self::Msg(r) => r.ping(),\n            Self::Quit => {}\n        }\n    }\n}\n",
        )]);
        assert_eq!(edges_of(&b, "Req::go"), vec!["server::e::PingReq::ping"]);
        assert_eq!(b.graph.stats.ambiguous, 0, "{:?}", b.graph.stats.unresolved);
    }

    #[test]
    fn struct_variant_field_bindings_type_from_the_variant_fields() {
        let b = build_from(&[(
            "crates/server/src/f.rs",
            "pub struct Job;\nimpl Job {\n    pub fn run(&self) {}\n}\n\
             pub struct Decoy;\nimpl Decoy {\n    pub fn run(&self) {}\n}\n\
             pub enum Cmd { Exec { job: Job }, Halt }\n\
             impl Cmd {\n    pub fn go(&self) {\n        match self {\n            \
             Self::Exec { job } => job.run(),\n            Self::Halt => {}\n        }\n    }\n}\n",
        )]);
        assert_eq!(edges_of(&b, "Cmd::go"), vec!["server::f::Job::run"]);
        assert_eq!(b.graph.stats.ambiguous, 0, "{:?}", b.graph.stats.unresolved);
    }

    #[test]
    fn module_qualified_calls_skip_method_candidates() {
        // `adc_trace::span(..)` must pin to the free fn even though a
        // method of the same name exists in the same crate.
        let b = build_from(&[
            (
                "crates/trace/src/lib.rs",
                "pub fn span(name: &str) -> u32 { name.len() as u32 }\n\
                 pub struct Summary;\nimpl Summary {\n    pub fn span(&self) {}\n}\n",
            ),
            (
                "crates/runtime/src/t.rs",
                "pub fn traced() { let _s = adc_trace::span(\"x\"); }\n",
            ),
        ]);
        assert_eq!(edges_of(&b, "runtime::t::traced"), vec!["trace::span"]);
    }

    #[test]
    fn closure_params_type_from_the_adapter_chain_receiver() {
        let b = build_from(&[(
            "crates/runtime/src/c.rs",
            "pub struct Tok;\nimpl Tok {\n    pub fn good(&self) -> bool { true }\n}\n\
             pub struct Decoy;\nimpl Decoy {\n    pub fn good(&self) -> bool { false }\n}\n\
             pub fn scan(toks: &[Tok]) -> usize {\n    \
             toks.iter().filter(|t| t.good()).count()\n}\n",
        )]);
        assert_eq!(
            edges_of(&b, "runtime::c::scan"),
            vec!["runtime::c::Tok::good"]
        );
        assert_eq!(b.graph.stats.ambiguous, 0, "{:?}", b.graph.stats.unresolved);
    }

    #[test]
    fn let_else_and_tuple_for_bindings_type_through() {
        let b = build_from(&[(
            "crates/runtime/src/l.rs",
            "pub struct Item;\nimpl Item {\n    pub fn touch(&self) {}\n}\n\
             pub struct Decoy;\nimpl Decoy {\n    pub fn touch(&self) {}\n}\n\
             pub fn first(items: &[Item]) {\n    \
             let Some(it) = items.first() else {\n        return;\n    };\n    \
             it.touch();\n}\n\
             pub fn walk(items: &[Item]) {\n    \
             for (n, it) in items.iter().enumerate() {\n        \
             let _ = n;\n        it.touch();\n    }\n}\n",
        )]);
        assert_eq!(
            edges_of(&b, "runtime::l::first"),
            vec!["runtime::l::Item::touch"]
        );
        assert_eq!(
            edges_of(&b, "runtime::l::walk"),
            vec!["runtime::l::Item::touch"]
        );
        assert_eq!(b.graph.stats.ambiguous, 0, "{:?}", b.graph.stats.unresolved);
    }
}
