//! Item-level parsing: the lightweight structural layer between the
//! lexer and the call graph.
//!
//! This is deliberately **not** a Rust parser. It recognizes exactly
//! the item shapes the interprocedural passes need — `fn` signatures
//! with body token ranges, `impl`/`trait` self types, `use` imports
//! (including `pub use` re-exports and brace groups), struct fields,
//! statics, and lock-type aliases — by walking the token stream with
//! bracket-matching maps. Everything else (expressions, patterns,
//! generics) is skipped structurally. Malformed input degrades to
//! fewer recognized items, never to a panic: the passes built on top
//! are conservative about what they could not see.

use crate::lexer::{Token, TokenKind};

/// Sentinel for "no matching bracket".
pub(crate) const NONE: usize = usize::MAX;

/// Bracket-matching maps over one file's tokens, plus attribute spans.
#[derive(Debug, Default)]
pub(crate) struct TokenMaps {
    /// `paren[i]` = index of the `)` matching the `(` at `i`.
    pub paren: Vec<usize>,
    /// `brace[i]` = index of the `}` matching the `{` at `i`.
    pub brace: Vec<usize>,
    /// `bracket[i]` = index of the `]` matching the `[` at `i`.
    pub bracket: Vec<usize>,
    /// Inclusive token-index ranges covered by `#[...]` attributes —
    /// their contents look like calls (`#[derive(Clone)]`) and must be
    /// invisible to call-site extraction.
    pub attrs: Vec<(usize, usize)>,
}

impl TokenMaps {
    /// `true` when token index `i` falls inside an attribute.
    pub fn in_attr(&self, i: usize) -> bool {
        self.attrs.iter().any(|&(a, b)| i >= a && i <= b)
    }
}

/// Builds the bracket maps for `tokens`.
pub(crate) fn token_maps(tokens: &[Token<'_>]) -> TokenMaps {
    let n = tokens.len();
    let mut maps = TokenMaps {
        paren: vec![NONE; n],
        brace: vec![NONE; n],
        bracket: vec![NONE; n],
        attrs: Vec::new(),
    };
    let (mut ps, mut bs, mut ks) = (Vec::new(), Vec::new(), Vec::new());
    for (i, t) in tokens.iter().enumerate() {
        match t.text {
            "(" => ps.push(i),
            ")" => {
                if let Some(o) = ps.pop() {
                    if let Some(slot) = maps.paren.get_mut(o) {
                        *slot = i;
                    }
                }
            }
            "{" => bs.push(i),
            "}" => {
                if let Some(o) = bs.pop() {
                    if let Some(slot) = maps.brace.get_mut(o) {
                        *slot = i;
                    }
                }
            }
            "[" => ks.push(i),
            "]" => {
                if let Some(o) = ks.pop() {
                    if let Some(slot) = maps.bracket.get_mut(o) {
                        *slot = i;
                    }
                }
            }
            _ => {}
        }
    }
    let mut i = 0;
    while i < n {
        let is_attr = tokens.get(i).is_some_and(|t| t.text == "#")
            && tokens.get(i + 1).is_some_and(|t| t.text == "[");
        if is_attr {
            let close = maps.bracket.get(i + 1).copied().unwrap_or(NONE);
            if close != NONE {
                maps.attrs.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    maps
}

/// Index just past the `>` matching the `<` at `open` (handles `<<`
/// and `>>` shift tokens; `->`/`=>` do not affect depth).
pub(crate) fn skip_angles(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        match t.text {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            ">=" => depth -= 1,
            "<=" => depth += 1,
            _ => {}
        }
        if depth <= 0 {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

/// One function parameter, reduced to what resolution needs.
#[derive(Debug, Clone)]
pub(crate) struct Param {
    /// Binding name (last ident before the `:`).
    pub name: String,
    /// Principal type ident (see [`principal_ty`]); empty = unknown.
    pub ty: String,
    /// Type is `Fn`/`FnMut`/`FnOnce`/`fn(..)` or a generic bounded by
    /// one — calls through this parameter are dynamic.
    pub callable: bool,
    /// Type is `Mutex`/`RwLock` (possibly behind `&`/slices).
    pub is_lock: bool,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Function name.
    pub name: String,
    /// Module path, crate key first (e.g. `["runtime", "pool"]`).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// Has a `self` receiver (method vs. free fn).
    pub has_self: bool,
    /// Parameters in order (excluding the receiver).
    pub params: Vec<Param>,
    /// Return type mentions a guard type — callers treat a call as a
    /// lock acquisition of everything this fn acquires.
    pub returns_guard: bool,
    /// Principal type of the return type (`Self` resolved to the impl
    /// type); empty for unit/unknown. Types `let x = f(..)` locals.
    pub ret_ty: String,
    /// 1-based line of the `fn` token.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body `{` / `}` (`None` for trait decls).
    pub body: Option<(usize, usize)>,
}

/// One binding introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub(crate) struct UseItem {
    /// `pub use` — creates a re-export alias others can path through.
    pub is_pub: bool,
    /// Path segments as written (`crate`/`self`/`super` unresolved).
    pub path: Vec<String>,
    /// Binding name (`as` alias or last path segment; empty for glob).
    pub name: String,
    /// `use foo::*`.
    pub glob: bool,
}

/// One struct field (used for receiver-chain typing and lock ids).
#[derive(Debug, Clone)]
pub(crate) struct FieldInfo {
    /// Owning struct name.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Principal type ident (wrappers like `Arc` skipped).
    pub ty: String,
    /// Field type mentions `Mutex`/`RwLock` (or a lock alias).
    pub is_lock: bool,
}

/// One enum variant (used to type match-arm payload bindings).
#[derive(Debug, Clone)]
pub(crate) struct VariantInfo {
    /// Owning enum name.
    pub owner: String,
    /// Variant name.
    pub name: String,
    /// Principal type of a single-field tuple payload; empty for unit,
    /// struct, and multi-field tuple variants.
    pub payload: String,
}

/// One `static` item.
#[derive(Debug, Clone)]
pub(crate) struct StaticInfo {
    /// Static name.
    pub name: String,
    /// Principal type ident.
    pub ty: String,
    /// Type mentions `Mutex`/`RwLock` (or a lock alias).
    pub is_lock: bool,
}

/// Everything item-level parsed out of one file.
#[derive(Debug, Default)]
pub(crate) struct FileItems {
    /// File module path, crate key first.
    pub module: Vec<String>,
    /// Functions (test-span items excluded).
    pub fns: Vec<FnItem>,
    /// Imports and re-exports.
    pub uses: Vec<UseItem>,
    /// Struct fields across all structs in the file (struct-variant
    /// enum fields included, keyed by the enum name).
    pub fields: Vec<FieldInfo>,
    /// Enum variants across all enums in the file.
    pub variants: Vec<VariantInfo>,
    /// Statics.
    pub statics: Vec<StaticInfo>,
    /// Names of `type X = ...Mutex...` aliases declared here.
    pub lock_aliases: Vec<String>,
}

/// Normalizes a crate-ish path segment: `-` → `_`, then the `adc_`
/// prefix stripped, so `adc_runtime` (the lib name) and `runtime`
/// (the directory) compare equal.
pub(crate) fn normalize_seg(seg: &str) -> String {
    let s = seg.replace('-', "_");
    s.strip_prefix("adc_").map_or(s.clone(), str::to_string)
}

/// Module path of a workspace file: crate key first, then the module
/// chain implied by the path (`lib`/`mod` segments elided).
pub(crate) fn module_path_of(rel_path: &str) -> Vec<String> {
    let (crate_key, rest) = if let Some(r) = rel_path.strip_prefix("crates/") {
        let mut it = r.splitn(2, '/');
        let dir = it.next().unwrap_or("");
        let tail = it.next().and_then(|t| t.strip_prefix("src/")).unwrap_or("");
        (normalize_seg(dir), tail)
    } else if let Some(r) = rel_path.strip_prefix("src/") {
        ("pipeline_adc".to_string(), r)
    } else {
        (String::new(), rel_path)
    };
    let mut path = vec![crate_key];
    let stem = rest.strip_suffix(".rs").unwrap_or(rest);
    for seg in stem.split('/') {
        if !seg.is_empty() && seg != "lib" && seg != "mod" && seg != "main" {
            path.push(seg.to_string());
        }
    }
    path
}

/// Idents that are type-syntax noise, skipped when looking for the
/// principal type ident.
const TY_NOISE: &[&str] = &["mut", "dyn", "impl", "ref", "const"];

/// Wrapper types seen through for receiver-chain typing (`Arc<T>`
/// derefs to `T`, so `self.shared.sched` types through the `Arc`).
const TY_WRAPPERS: &[&str] = &["Arc", "Rc", "Box"];

/// First meaningful type ident of a type token slice, seeing through
/// references, slices, and `Arc`/`Rc`/`Box` wrappers.
pub(crate) fn principal_ty(toks: &[Token<'_>]) -> String {
    let mut skip_path_tail = false;
    for t in toks {
        if t.kind == TokenKind::Lifetime {
            continue;
        }
        if t.kind == TokenKind::Ident {
            if skip_path_tail {
                // `std::sync::Mutex` — earlier segments were path
                // qualifiers; keep walking to the last segment.
                skip_path_tail = false;
            }
            if TY_NOISE.contains(&t.text) || TY_WRAPPERS.contains(&t.text) {
                continue;
            }
            return t.text.to_string();
        }
        if t.text == "::" {
            skip_path_tail = true;
        }
    }
    String::new()
}

fn toks_mention_lock(toks: &[Token<'_>], aliases: &[String]) -> bool {
    toks.iter().any(|t| {
        t.kind == TokenKind::Ident
            && (t.text == "Mutex" || t.text == "RwLock" || aliases.iter().any(|a| a == t.text))
    })
}

const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

#[derive(Debug)]
enum Frame {
    Mod { name: String, end: usize },
    Impl { ty: Option<String>, end: usize },
    Fn { end: usize },
}

impl Frame {
    fn end(&self) -> usize {
        match self {
            Frame::Mod { end, .. } | Frame::Impl { end, .. } | Frame::Fn { end } => *end,
        }
    }
}

/// Parses the items of one file.
pub(crate) fn parse_file(
    rel_path: &str,
    tokens: &[Token<'_>],
    maps: &TokenMaps,
    test_spans: &[(u32, u32)],
) -> FileItems {
    let base = module_path_of(rel_path);
    let mut out = FileItems {
        module: base.clone(),
        ..FileItems::default()
    };
    // Pre-pass: lock-type aliases, so fields/statics/lets declared
    // before (or after) the alias in the file still classify.
    let mut k = 0;
    while k < tokens.len() {
        if tokens.get(k).is_some_and(|t| t.text == "type") {
            if let (Some(name), Some(eq)) = (tokens.get(k + 1), tokens.get(k + 2)) {
                let eq_at = if eq.text == "=" {
                    Some(k + 2)
                } else if eq.text == "<" {
                    let after = skip_angles(tokens, k + 2);
                    tokens.get(after).filter(|t| t.text == "=").map(|_| after)
                } else {
                    None
                };
                if let Some(eq_at) = eq_at {
                    let end = (eq_at..tokens.len())
                        .find(|&j| tokens.get(j).is_some_and(|t| t.text == ";"))
                        .unwrap_or(tokens.len());
                    let rhs = tokens.get(eq_at..end).unwrap_or(&[]);
                    if toks_mention_lock(rhs, &[]) {
                        out.lock_aliases.push(name.text.to_string());
                    }
                }
            }
        }
        k += 1;
    }

    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut frames: Vec<Frame> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while frames.last().is_some_and(|f| i > f.end()) {
            frames.pop();
        }
        if maps.in_attr(i) {
            i += 1;
            continue;
        }
        let Some(tok) = tokens.get(i) else { break };
        let next_text = tokens.get(i + 1).map_or("", |t| t.text);
        match tok.text {
            // Macro definitions: their bodies are token soup that would
            // confuse item recognition — skip the whole block.
            "macro_rules" if next_text == "!" => {
                let open =
                    (i..tokens.len()).find(|&j| tokens.get(j).is_some_and(|t| t.text == "{"));
                i = open
                    .and_then(|o| maps.brace.get(o).copied())
                    .filter(|&c| c != NONE)
                    .map_or(i + 1, |c| c + 1);
            }
            "mod"
                if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident) =>
            {
                if tokens.get(i + 2).is_some_and(|t| t.text == "{") {
                    let end = maps.brace.get(i + 2).copied().unwrap_or(NONE);
                    if end != NONE {
                        frames.push(Frame::Mod {
                            name: next_text.to_string(),
                            end,
                        });
                    }
                    i += 3;
                } else {
                    i += 2; // `mod name;` — file module, handled by paths
                }
            }
            "impl" | "trait" => {
                let (self_ty, body_open) = parse_impl_header(tokens, i);
                if let Some(open) = body_open {
                    let end = maps.brace.get(open).copied().unwrap_or(NONE);
                    if end != NONE {
                        frames.push(Frame::Impl { ty: self_ty, end });
                    }
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" if tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident) =>
            {
                let module = module_with_frames(&base, &frames);
                let self_ty = current_self_ty(&frames);
                if let Some((item, resume)) = parse_fn(tokens, maps, i, module, self_ty, tok.line) {
                    let skip_item = in_test(tok.line);
                    let resume_at = resume;
                    if let Some((open, close)) = item.body {
                        if !skip_item {
                            frames.push(Frame::Fn { end: close });
                            out.fns.push(item);
                        }
                        i = open + 1;
                        if skip_item {
                            // Skip the whole test fn body.
                            i = close + 1;
                        }
                    } else {
                        if !skip_item {
                            out.fns.push(item);
                        }
                        i = resume_at;
                    }
                } else {
                    i += 2;
                }
            }
            "use" => {
                let is_pub = prev_is_pub(tokens, i);
                let (items, resume) = parse_use(tokens, i + 1);
                if !in_test(tok.line) {
                    out.uses
                        .extend(items.into_iter().map(|(path, name, glob)| UseItem {
                            is_pub,
                            path,
                            name,
                            glob,
                        }));
                }
                i = resume;
            }
            "struct"
                if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident) =>
            {
                let name = next_text.to_string();
                let mut j = i + 2;
                if tokens.get(j).is_some_and(|t| t.text == "<") {
                    j = skip_angles(tokens, j);
                }
                // Skip a where clause to the body/`;`.
                while tokens
                    .get(j)
                    .is_some_and(|t| t.text != "{" && t.text != ";" && t.text != "(")
                {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.text == "{") && !in_test(tok.line) {
                    let close = maps.brace.get(j).copied().unwrap_or(NONE);
                    if close != NONE {
                        parse_fields(tokens, j, close, &name, &out.lock_aliases, &mut out.fields);
                    }
                }
                i = j.max(i + 2);
            }
            "enum"
                if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident) =>
            {
                let name = next_text.to_string();
                let mut j = i + 2;
                if tokens.get(j).is_some_and(|t| t.text == "<") {
                    j = skip_angles(tokens, j);
                }
                while tokens
                    .get(j)
                    .is_some_and(|t| t.text != "{" && t.text != ";")
                {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.text == "{") && !in_test(tok.line) {
                    let close = maps.brace.get(j).copied().unwrap_or(NONE);
                    if close != NONE {
                        parse_variants(
                            tokens,
                            maps,
                            j,
                            close,
                            &name,
                            &out.lock_aliases,
                            &mut out.fields,
                            &mut out.variants,
                        );
                    }
                }
                i = j.max(i + 2);
            }
            "static" => {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                let name = tokens.get(j).filter(|t| t.kind == TokenKind::Ident);
                if let Some(name) = name {
                    if tokens.get(j + 1).is_some_and(|t| t.text == ":") {
                        let eq = (j + 2..tokens.len())
                            .find(|&m| {
                                tokens
                                    .get(m)
                                    .is_some_and(|t| t.text == "=" || t.text == ";")
                            })
                            .unwrap_or(tokens.len());
                        let ty_toks = tokens.get(j + 2..eq).unwrap_or(&[]);
                        if !in_test(tok.line) {
                            out.statics.push(StaticInfo {
                                name: name.text.to_string(),
                                ty: principal_ty(ty_toks),
                                is_lock: toks_mention_lock(ty_toks, &out.lock_aliases),
                            });
                        }
                        i = eq;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

fn module_with_frames(base: &[String], frames: &[Frame]) -> Vec<String> {
    let mut m = base.to_vec();
    for f in frames {
        if let Frame::Mod { name, .. } = f {
            m.push(name.clone());
        }
    }
    m
}

fn current_self_ty(frames: &[Frame]) -> Option<String> {
    // Innermost frame wins: a nested fn inside a method body loses the
    // impl's self type (it has no `self`).
    for f in frames.iter().rev() {
        match f {
            Frame::Impl { ty, .. } => return ty.clone(),
            Frame::Fn { .. } => return None,
            Frame::Mod { .. } => {}
        }
    }
    None
}

fn prev_is_pub(tokens: &[Token<'_>], i: usize) -> bool {
    // `pub use`, `pub(crate) use`, `pub(in path) use`.
    let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
    if prev.is_some_and(|t| t.text == "pub") {
        return true;
    }
    if prev.is_some_and(|t| t.text == ")") {
        for back in 2..=5 {
            if i.checked_sub(back)
                .and_then(|p| tokens.get(p))
                .is_some_and(|t| t.text == "pub")
            {
                return true;
            }
        }
    }
    false
}

/// Parses an `impl`/`trait` header starting at the keyword; returns
/// the self-type principal ident and the body `{` index.
fn parse_impl_header(tokens: &[Token<'_>], at: usize) -> (Option<String>, Option<usize>) {
    let mut i = at + 1;
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        i = skip_angles(tokens, i);
    }
    let mut last_ident: Option<String> = None;
    while let Some(t) = tokens.get(i) {
        match t.text {
            "{" => return (last_ident, Some(i)),
            ";" => return (last_ident, None),
            "for" => {
                last_ident = None; // `impl Trait for Type` — the type wins
                i += 1;
            }
            "where" => {
                // Skip bounds to the body.
                while tokens
                    .get(i)
                    .is_some_and(|t| t.text != "{" && t.text != ";")
                {
                    i += 1;
                }
            }
            "<" => i = skip_angles(tokens, i),
            _ => {
                if t.kind == TokenKind::Ident && !TY_NOISE.contains(&t.text) {
                    last_ident = Some(t.text.to_string());
                }
                i += 1;
            }
        }
    }
    (last_ident, None)
}

/// Parses one `fn` item starting at the `fn` keyword. Returns the item
/// and the token index to resume scanning from when there is no body.
#[allow(clippy::too_many_lines)]
fn parse_fn(
    tokens: &[Token<'_>],
    maps: &TokenMaps,
    at: usize,
    module: Vec<String>,
    self_ty: Option<String>,
    line: u32,
) -> Option<(FnItem, usize)> {
    let name = tokens.get(at + 1)?.text.to_string();
    let mut i = at + 2;
    let mut callable_generics: Vec<String> = Vec::new();
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        let close = skip_angles(tokens, i);
        collect_callable_generics(tokens.get(i..close).unwrap_or(&[]), &mut callable_generics);
        i = close;
    }
    if tokens.get(i).is_none_or(|t| t.text != "(") {
        return None;
    }
    let params_close = maps.paren.get(i).copied().unwrap_or(NONE);
    if params_close == NONE {
        return None;
    }
    let (has_self, mut params) = parse_params(tokens, i + 1, params_close);
    i = params_close + 1;
    // Return type.
    let mut returns_guard = false;
    let mut ret_start = i;
    if tokens.get(i).is_some_and(|t| t.text == "->") {
        i += 1;
        ret_start = i;
        while let Some(t) = tokens.get(i) {
            match t.text {
                "{" | ";" | "where" => break,
                "<" => {
                    let close = skip_angles(tokens, i);
                    if tokens
                        .get(i..close)
                        .unwrap_or(&[])
                        .iter()
                        .any(|t| GUARD_TYPES.contains(&t.text))
                    {
                        returns_guard = true;
                    }
                    i = close;
                }
                _ => {
                    if GUARD_TYPES.contains(&t.text) {
                        returns_guard = true;
                    }
                    i += 1;
                }
            }
        }
    }
    let mut ret_ty = if ret_start < i {
        principal_ty(tokens.get(ret_start..i).unwrap_or(&[]))
    } else {
        String::new()
    };
    if ret_ty == "Self" {
        ret_ty = self_ty.clone().unwrap_or_default();
    }
    if tokens.get(i).is_some_and(|t| t.text == "where") {
        let start = i;
        while tokens
            .get(i)
            .is_some_and(|t| t.text != "{" && t.text != ";")
        {
            i += 1;
        }
        collect_callable_generics(tokens.get(start..i).unwrap_or(&[]), &mut callable_generics);
    }
    for p in &mut params {
        if callable_generics.contains(&p.ty) {
            p.callable = true;
        }
    }
    let (body, resume) = match tokens.get(i).map(|t| t.text) {
        Some("{") => {
            let close = maps.brace.get(i).copied().unwrap_or(NONE);
            if close == NONE {
                (None, i + 1)
            } else {
                (Some((i, close)), close + 1)
            }
        }
        _ => (None, i + 1),
    };
    Some((
        FnItem {
            name,
            module,
            self_ty,
            has_self,
            params,
            returns_guard,
            ret_ty,
            line,
            sig_start: at,
            body,
        },
        resume,
    ))
}

/// Records generic params bounded by `Fn`/`FnMut`/`FnOnce` (from a
/// generics list or where clause token slice).
fn collect_callable_generics(toks: &[Token<'_>], out: &mut Vec<String>) {
    // Split on top-level commas; chunk's first ident is the param.
    let mut depth = 0i64;
    let mut chunk_first: Option<&str> = None;
    let mut chunk_callable = false;
    for t in toks {
        match t.text {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "," if depth <= 1 => {
                if let (Some(name), true) = (chunk_first, chunk_callable) {
                    out.push(name.to_string());
                }
                chunk_first = None;
                chunk_callable = false;
                continue;
            }
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            if matches!(t.text, "Fn" | "FnMut" | "FnOnce") {
                chunk_callable = true;
            } else if chunk_first.is_none() && t.text != "where" {
                chunk_first = Some(t.text);
            }
        }
    }
    if let (Some(name), true) = (chunk_first, chunk_callable) {
        out.push(name.to_string());
    }
}

/// Parses a parameter list between `open..close` token indices.
fn parse_params(tokens: &[Token<'_>], open: usize, close: usize) -> (bool, Vec<Param>) {
    let mut has_self = false;
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = open;
    let mut i = open;
    while i <= close {
        let text = tokens.get(i).map_or("", |t| t.text);
        match text {
            "<" => depth += 1,
            ">" => depth -= 1,
            // The lexer fuses shift tokens: `Vec<Vec<usize>>` closes
            // two angle levels with one `>>`.
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ => {}
        }
        let at_end = i == close;
        if (text == "," && depth <= 0) || at_end {
            let end = if at_end { close } else { i };
            let chunk = tokens.get(start..end).unwrap_or(&[]);
            if !chunk.is_empty() {
                if chunk.iter().any(|t| t.text == "self") && !chunk.iter().any(|t| t.text == ":") {
                    has_self = true;
                } else if let Some(p) = parse_one_param(chunk) {
                    params.push(p);
                }
            }
            start = i + 1;
        }
        i += 1;
    }
    (has_self, params)
}

fn parse_one_param(chunk: &[Token<'_>]) -> Option<Param> {
    let colon = chunk.iter().position(|t| t.text == ":")?;
    let name = chunk
        .get(..colon)?
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref")?
        .text
        .to_string();
    let ty_toks = chunk.get(colon + 1..)?;
    let ty = principal_ty(ty_toks);
    let callable = matches!(ty.as_str(), "Fn" | "FnMut" | "FnOnce")
        || ty_toks
            .iter()
            .any(|t| matches!(t.text, "Fn" | "FnMut" | "FnOnce" | "fn"));
    let is_lock = ty == "Mutex" || ty == "RwLock";
    Some(Param {
        name,
        ty,
        callable,
        is_lock,
    })
}

/// Parses a use tree starting just after the `use` keyword. Returns
/// `(path, binding_name, glob)` triples and the resume index (past the
/// terminating `;`).
fn parse_use(tokens: &[Token<'_>], start: usize) -> (Vec<(Vec<String>, String, bool)>, usize) {
    let mut out = Vec::new();
    let mut i = start;
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(tokens, &mut i, &mut prefix, &mut out, 0);
    // Consume to the `;` if the tree parse stopped short.
    while tokens.get(i).is_some_and(|t| t.text != ";") {
        i += 1;
    }
    (out, i + 1)
}

fn parse_use_tree(
    tokens: &[Token<'_>],
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<(Vec<String>, String, bool)>,
    depth: usize,
) {
    if depth > 8 {
        return; // pathological nesting — bail conservatively
    }
    let base_len = prefix.len();
    loop {
        let Some(t) = tokens.get(*i) else { return };
        match t.text {
            ";" => {
                flush_use(prefix, base_len, out);
                return;
            }
            "::" => *i += 1,
            "*" => {
                out.push((prefix.get(..).unwrap_or(&[]).to_vec(), String::new(), true));
                prefix.truncate(base_len);
                *i += 1;
            }
            "{" => {
                *i += 1;
                loop {
                    parse_use_tree(tokens, i, prefix, out, depth + 1);
                    match tokens.get(*i).map(|t| t.text) {
                        Some(",") => {
                            *i += 1;
                            prefix.truncate(prefix.len().max(base_len));
                        }
                        Some("}") => {
                            *i += 1;
                            break;
                        }
                        _ => return,
                    }
                }
                prefix.truncate(base_len);
            }
            "," | "}" => {
                flush_use(prefix, base_len, out);
                prefix.truncate(base_len);
                return;
            }
            "as" => {
                let alias = tokens
                    .get(*i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map_or(String::new(), |t| t.text.to_string());
                if !alias.is_empty() {
                    out.push((prefix.clone(), alias, false));
                }
                prefix.truncate(base_len);
                *i += 2;
                // Skip to the separator; the alias is already emitted.
                while tokens
                    .get(*i)
                    .is_some_and(|t| t.text != "," && t.text != "}" && t.text != ";")
                {
                    *i += 1;
                }
                return;
            }
            _ if t.kind == TokenKind::Ident => {
                prefix.push(t.text.to_string());
                *i += 1;
            }
            _ => {
                *i += 1;
            }
        }
    }
}

fn flush_use(prefix: &[String], base_len: usize, out: &mut Vec<(Vec<String>, String, bool)>) {
    if prefix.len() > base_len {
        if let Some(name) = prefix.last().cloned() {
            out.push((prefix.to_vec(), name, false));
        }
    }
}

/// Scans named-struct fields between the body braces.
fn parse_fields(
    tokens: &[Token<'_>],
    open: usize,
    close: usize,
    owner: &str,
    aliases: &[String],
    out: &mut Vec<FieldInfo>,
) {
    let mut i = open + 1;
    while i < close {
        // Skip attributes and visibility.
        if tokens.get(i).is_some_and(|t| t.text == "#") {
            while i < close && tokens.get(i).is_some_and(|t| t.text != "]") {
                i += 1;
            }
            i += 1;
            continue;
        }
        if tokens.get(i).is_some_and(|t| t.text == "pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.text == "(") {
                while i < close && tokens.get(i).is_some_and(|t| t.text != ")") {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        let name_ok = tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(i + 1).is_some_and(|t| t.text == ":");
        if name_ok {
            // Type runs to the top-level comma or the close brace.
            let mut depth = 0i64;
            let mut j = i + 2;
            while j < close {
                match tokens.get(j).map_or("", |t| t.text) {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let ty_toks = tokens.get(i + 2..j).unwrap_or(&[]);
            out.push(FieldInfo {
                owner: owner.to_string(),
                name: tokens.get(i).map_or("", |t| t.text).to_string(),
                ty: principal_ty(ty_toks),
                is_lock: toks_mention_lock(ty_toks, aliases),
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Scans enum variants between the body braces. Struct-variant fields
/// land in `fields` under the enum's name (field names are unique
/// enough across variants for receiver typing); tuple variants record
/// their single-payload principal for match-arm binding inference.
#[allow(clippy::too_many_arguments)]
fn parse_variants(
    tokens: &[Token<'_>],
    maps: &TokenMaps,
    open: usize,
    close: usize,
    owner: &str,
    aliases: &[String],
    fields: &mut Vec<FieldInfo>,
    variants: &mut Vec<VariantInfo>,
) {
    let mut i = open + 1;
    while i < close {
        let text = tokens.get(i).map_or("", |t| t.text);
        // Skip attributes.
        if text == "#" {
            while i < close && tokens.get(i).is_some_and(|t| t.text != "]") {
                i += 1;
            }
            i += 1;
            continue;
        }
        if !tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident) {
            i += 1;
            continue;
        }
        let name = text.to_string();
        let mut payload = String::new();
        let mut j = i + 1;
        match tokens.get(j).map_or("", |t| t.text) {
            "(" => {
                let end = maps.paren.get(j).copied().unwrap_or(NONE);
                if end == NONE {
                    break;
                }
                let inner = tokens.get(j + 1..end).unwrap_or(&[]);
                // Only single-field tuple payloads carry a principal: a
                // top-level comma means positional multi-binding this
                // model does not type.
                let mut depth = 0i64;
                let mut multi = false;
                for t in inner {
                    match t.text {
                        "<" => depth += 1,
                        "<<" => depth += 2,
                        ">" => depth -= 1,
                        ">>" => depth -= 2,
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth <= 0 => multi = true,
                        _ => {}
                    }
                }
                if !multi {
                    payload = principal_ty(inner);
                }
                j = end + 1;
            }
            "{" => {
                let end = maps.brace.get(j).copied().unwrap_or(NONE);
                if end == NONE {
                    break;
                }
                parse_fields(tokens, j, end, owner, aliases, fields);
                j = end + 1;
            }
            _ => {}
        }
        variants.push(VariantInfo {
            owner: owner.to_string(),
            name,
            payload,
        });
        // To the next top-level separator comma (also skips explicit
        // discriminants).
        while j < close && tokens.get(j).is_some_and(|t| t.text != ",") {
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn parse(path: &str, src: &str) -> FileItems {
        let lexed = lex(src);
        let maps = token_maps(&lexed.tokens);
        let spans = test_spans(&lexed.tokens);
        parse_file(path, &lexed.tokens, &maps, &spans)
    }

    #[test]
    fn module_paths_normalize_crate_names() {
        assert_eq!(
            module_path_of("crates/runtime/src/pool.rs"),
            vec!["runtime", "pool"]
        );
        assert_eq!(module_path_of("crates/server/src/lib.rs"), vec!["server"]);
        assert_eq!(
            module_path_of("crates/bench/src/bin/fig4_power.rs"),
            vec!["bench", "bin", "fig4_power"]
        );
        assert_eq!(module_path_of("src/lib.rs"), vec!["pipeline_adc"]);
        assert_eq!(normalize_seg("adc_runtime"), "runtime");
        assert_eq!(normalize_seg("adc-server"), "server");
    }

    #[test]
    fn fns_impls_and_methods_are_extracted() {
        let items = parse(
            "crates/runtime/src/pool.rs",
            "pub fn free(x: u32) -> u32 { x }\n\
             struct Pool { queue: Mutex<Vec<u32>>, size: usize }\n\
             impl Pool {\n    fn push(&self, v: u32) { self.queue.lock().unwrap().push(v) }\n}\n\
             impl std::fmt::Display for Pool {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n",
        );
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "push", "fmt"]);
        assert_eq!(items.fns[0].self_ty, None);
        assert!(!items.fns[0].has_self);
        assert_eq!(items.fns[1].self_ty.as_deref(), Some("Pool"));
        assert!(items.fns[1].has_self);
        assert_eq!(items.fns[2].self_ty.as_deref(), Some("Pool"));
        assert!(items
            .fields
            .iter()
            .any(|f| f.owner == "Pool" && f.name == "queue" && f.is_lock));
        assert!(items.fields.iter().any(|f| f.name == "size" && !f.is_lock));
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let items = parse(
            "crates/server/src/lib.rs",
            "pub use protocol::{decode_frame, Frame as WireFrame};\n\
             use std::collections::BTreeMap;\nuse crate::jobs::*;\n",
        );
        let named: Vec<(String, bool)> = items
            .uses
            .iter()
            .map(|u| (u.name.clone(), u.is_pub))
            .collect();
        assert!(named.contains(&("decode_frame".to_string(), true)));
        assert!(named.contains(&("WireFrame".to_string(), true)));
        assert!(named.contains(&("BTreeMap".to_string(), false)));
        assert!(items
            .uses
            .iter()
            .any(|u| u.glob && u.path == ["crate", "jobs"]));
        let aliased = items.uses.iter().find(|u| u.name == "WireFrame");
        assert_eq!(
            aliased.map(|u| u.path.clone()),
            Some(vec!["protocol".to_string(), "Frame".to_string()])
        );
    }

    #[test]
    fn lock_statics_aliases_and_guard_returns() {
        let items = parse(
            "crates/trace/src/collector.rs",
            "type Slot<T> = Mutex<Option<T>>;\n\
             static ACTIVE: Mutex<Option<u32>> = Mutex::new(None);\n\
             static COUNT: u64 = 0;\n\
             fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }\n",
        );
        assert_eq!(items.lock_aliases, vec!["Slot".to_string()]);
        assert!(items
            .statics
            .iter()
            .any(|s| s.name == "ACTIVE" && s.is_lock));
        assert!(items
            .statics
            .iter()
            .any(|s| s.name == "COUNT" && !s.is_lock));
        let f = &items.fns[0];
        assert!(f.returns_guard);
        assert_eq!(f.params.len(), 1);
        assert!(f.params[0].is_lock);
        assert_eq!(f.params[0].name, "m");
    }

    #[test]
    fn callable_params_via_bounds_and_fn_types() {
        let items = parse(
            "crates/runtime/src/job.rs",
            "fn run<F: Fn(u32) -> u32>(n: u32, worker: F) -> u32 { worker(n) }\n\
             fn apply(cb: &dyn Fn() -> u32, other: u32) -> u32 { cb() }\n\
             fn plain(x: u32) -> u32 { x }\n",
        );
        let run = &items.fns[0];
        assert!(run.params.iter().any(|p| p.name == "worker" && p.callable));
        assert!(items.fns[1]
            .params
            .iter()
            .any(|p| p.name == "cb" && p.callable));
        assert!(items.fns[2].params.iter().all(|p| !p.callable));
    }

    #[test]
    fn test_mod_items_are_skipped_and_nested_mods_path() {
        let items = parse(
            "crates/runtime/src/cache.rs",
            "mod inner { pub fn deep() {} }\n\
             #[cfg(test)]\nmod tests { fn helper() {} use super::*; }\n",
        );
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].module, vec!["runtime", "cache", "inner"]);
        assert!(items.uses.is_empty());
    }

    #[test]
    fn nested_fn_loses_impl_self_type() {
        let items = parse(
            "crates/server/src/x.rs",
            "impl Widget { fn outer(&self) { fn inner(v: u32) -> u32 { v } } }",
        );
        let outer = items.fns.iter().find(|f| f.name == "outer");
        let inner = items.fns.iter().find(|f| f.name == "inner");
        assert_eq!(
            outer.and_then(|f| f.self_ty.clone()).as_deref(),
            Some("Widget")
        );
        assert_eq!(inner.and_then(|f| f.self_ty.clone()), None);
    }
}
