//! A small hand-written Rust lexer — just enough structure for lint
//! rules to match on.
//!
//! The lexer splits source text into identifiers, number literals
//! (distinguishing floats from integers), string/char literals,
//! lifetimes, and punctuation, while collecting comments into a
//! separate side channel (rules read comments for `// SAFETY:`
//! annotations and `// adc-lint: allow(...)` pragmas). It understands
//! the token-level subtleties that would otherwise produce false
//! matches — nested block comments, raw strings (`r#"..."#`), byte and
//! raw-byte strings, char literals vs. lifetimes, `0..8` ranges vs.
//! float literals, and multi-character operators (`==` is one token,
//! never `=` `=`).
//!
//! It deliberately does **not** parse: no syntax tree, no expressions.
//! Rules match token subsequences, which keeps the engine ~free of
//! grammar churn and fast enough to scan the workspace in milliseconds.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `let`, `unsafe`).
    Ident,
    /// Integer literal, any base (`42`, `0xEDB8_8320`, `1u64`).
    Int,
    /// Float literal (`1.0`, `1e6`, `2.5f64`, `1.`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Punctuation / operator, multi-character ops pre-joined (`::`,
    /// `==`, `..=`, `->`, single chars otherwise).
    Punct,
}

/// One lexed token: kind, source text, and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexeme classification.
    pub kind: TokenKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), captured for SAFETY/pragma scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    /// Comment body **without** the `//` / `/*` framing.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when code tokens precede the comment on its line (a
    /// trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The result of lexing one file: code tokens plus the comment side
/// channel.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// Comments in source order.
    pub comments: Vec<Comment<'a>>,
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into tokens and comments. Total over arbitrary input:
/// malformed source never panics, it just tokenizes approximately
/// (good enough — the workspace it scans does compile).
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
        last_token_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    /// Line of the most recent code token (0 = none yet) — decides
    /// whether a comment is trailing.
    last_token_line: u32,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        if c == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        c
    }

    fn push_token(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = self.text.get(start..self.pos).unwrap_or("");
        self.out.tokens.push(Token { kind, text, line });
        self.last_token_line = self.line;
    }

    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => self.raw_string(1),
                b'b' if self.peek(1) == b'"' => self.string_from(1),
                b'b' if self.peek(1) == b'\'' => self.byte_char(),
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    self.raw_string(2)
                }
                b'c' if self.peek(1) == b'"' => self.string_from(1),
                b'"' => self.string_from(0),
                b'\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = self.text.get(start..self.pos).unwrap_or("");
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        if depth > 0 {
            end = self.pos; // unterminated: treat rest of file as comment
        }
        let text = self.text.get(start..end).unwrap_or("");
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    /// Raw (optionally byte) string: `prefix_len` bytes of `r` / `br`
    /// already identified.
    fn raw_string(&mut self, prefix_len: usize) {
        let start = self.pos;
        let line = self.line;
        for _ in 0..prefix_len {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#foo` raw identifier, or stray `r#` — re-lex as ident.
            self.pos = start;
            self.ident();
            return;
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if self.peek(0) == b'#' {
                        self.bump();
                        seen += 1;
                    } else {
                        continue 'scan;
                    }
                }
                break;
            }
        }
        self.push_token(TokenKind::Str, start, line);
    }

    /// Ordinary (optionally byte) string; `prefix_len` bytes of `b`
    /// prefix already identified.
    fn string_from(&mut self, prefix_len: usize) {
        let start = self.pos;
        let line = self.line;
        for _ in 0..prefix_len {
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Str, start, line);
    }

    /// Byte-char literal `b'x'` / `b'\''` — always a char, never a
    /// lifetime, so it skips the `char_or_lifetime` disambiguation.
    fn byte_char(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // the `b` prefix
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Char, start, line);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // the quote
                     // `'a` (no closing quote) is a lifetime; `'a'` is a char.
        if is_ident_start(self.peek(0)) && self.peek(1) != b'\'' {
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push_token(TokenKind::Lifetime, start, line);
            return;
        }
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Char, start, line);
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut is_float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'b' | b'o') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            self.push_token(TokenKind::Int, start, line);
            return;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // A dot makes it a float unless it starts `..` (range) or a
        // method/field access (`1.to_string()`).
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            is_float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        if matches!(self.peek(0), b'e' | b'E') {
            let (sign, digit) = (self.peek(1), self.peek(2));
            if sign.is_ascii_digit() || ((sign == b'+' || sign == b'-') && digit.is_ascii_digit()) {
                is_float = true;
                self.bump();
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Type suffix (`1.5f64`, `7u32`).
        if is_ident_start(self.peek(0)) {
            let suffix_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = self.text.get(suffix_start..self.pos).unwrap_or("");
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, start, line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        // Raw identifier prefix `r#`.
        if self.peek(0) == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            self.bump();
            self.bump();
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        self.push_token(TokenKind::Ident, start, line);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let line = self.line;
        let rest = self.text.get(self.pos..).unwrap_or("");
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push_token(TokenKind::Punct, start, line);
                return;
            }
        }
        self.bump();
        self.push_token(TokenKind::Punct, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).tokens.iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c .. d ..= e :: f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "..", "..=", "::"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..8 { x[1..3]; }");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn float_forms_are_recognized() {
        for src in ["1.0", "1.", "1e6", "10e6", "1.5e-3", "2f64", "1_000.5"] {
            let toks = kinds(src);
            assert_eq!(
                toks,
                vec![(TokenKind::Float, src)],
                "{src} should lex as one float"
            );
        }
        assert_eq!(kinds("0xEDB8_8320"), vec![(TokenKind::Int, "0xEDB8_8320")]);
        assert_eq!(kinds("42u64"), vec![(TokenKind::Int, "42u64")]);
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        let toks = kinds("1.to_string()");
        assert_eq!(toks[0], (TokenKind::Int, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Char && t == "'x'"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::Char && t == "'\\n'"));
    }

    #[test]
    fn strings_hide_their_contents_from_rules() {
        // An `unwrap()` inside a string must not produce an Ident token.
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| { *k != TokenKind::Ident || (*t != "unwrap" && !t.contains("unwrap")) }));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"quote " inside"#; next"###);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "next"));
    }

    #[test]
    fn byte_char_literals_are_single_char_tokens() {
        // Regression: `b'x'` used to lex as Ident("b") + Char("'x'"),
        // which let a pragma-bearing rule see a phantom `b` identifier.
        assert_eq!(kinds("b'x'"), vec![(TokenKind::Char, "b'x'")]);
        assert_eq!(kinds(r"b'\''"), vec![(TokenKind::Char, r"b'\''")]);
        assert_eq!(kinds(r"b'\\'"), vec![(TokenKind::Char, r"b'\\'")]);
        // A following ident must survive intact.
        let toks = kinds("let q = b'#'; next");
        assert!(toks.contains(&(TokenKind::Char, "b'#'")));
        assert!(toks.contains(&(TokenKind::Ident, "next")));
        // ...and `b` not followed by a quote stays an identifier.
        assert_eq!(kinds("b * 2")[0], (TokenKind::Ident, "b"));
    }

    #[test]
    fn c_string_literals_lex_as_strings() {
        let toks = kinds(r#"let s = c"unwrap()"; next"#);
        assert!(toks.contains(&(TokenKind::Str, r#"c"unwrap()""#)));
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("unwrap")));
    }

    #[test]
    fn raw_byte_strings_and_raw_identifiers() {
        let toks = kinds(r###"let a = br#"x " y"#; let r#fn = 1;"###);
        assert!(toks.contains(&(TokenKind::Str, r###"br#"x " y"#"###)));
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
    }

    #[test]
    fn labels_lex_as_lifetimes_before_loops() {
        // `'outer: loop` — the label must not swallow the loop keyword.
        let toks = kinds("'outer: for i in 0..n { break 'outer; }");
        assert_eq!(toks[0], (TokenKind::Lifetime, "'outer"));
        assert!(toks.contains(&(TokenKind::Ident, "for")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'outer")));
    }

    #[test]
    fn escaped_quote_char_literal() {
        assert_eq!(kinds(r"'\''"), vec![(TokenKind::Char, r"'\''")]);
        assert_eq!(kinds(r"'\u{7f}'"), vec![(TokenKind::Char, r"'\u{7f}'")]);
    }

    #[test]
    fn nested_block_comments_and_trailing_detection() {
        let lexed = lex("let x = 1; /* outer /* inner */ still */\n// standalone\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].text, " standalone");
    }

    #[test]
    fn line_numbers_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
