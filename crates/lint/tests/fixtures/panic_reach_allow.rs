pub fn lex(input: &str) -> u8 {
    first_byte(input)
}

fn first_byte(s: &str) -> u8 {
    // adc-lint: allow(panic-reach) reason="lex only calls this with non-empty input"
    *s.as_bytes().first().unwrap()
}
