//! Fixture: panics and indexing in a panic-free file fire.
pub fn decode(bytes: &[u8]) -> u16 {
    let first = bytes[0];
    let second = bytes.get(1).copied().unwrap();
    if first > 0x7F {
        panic!("bad tag");
    }
    u16::from_le_bytes([first, second])
}
