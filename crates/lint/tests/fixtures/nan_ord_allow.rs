//! Fixture: a NaN-unsafe ordering under an audited pragma (the right
//! fix is `f64::total_cmp`; the pragma records why this site cannot).
pub fn sort(values: &mut Vec<f64>) {
    // adc-lint: allow(nan-ord) reason="inputs proven finite by the caller's validation pass"
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
