use adc_server::stamp_fixture::stamp;

pub fn run() -> u64 {
    // adc-lint: allow(determinism-taint) reason="stamp feeds logs only, never results"
    stamp()
}
