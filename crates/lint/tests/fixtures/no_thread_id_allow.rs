//! Fixture: thread identity under an audited pragma is suppressed.
use std::thread;

pub fn debug_label() -> String {
    // adc-lint: allow(no-thread-id) reason="log label only; results are keyed by job id"
    format!("{:?}", thread::current().id())
}
