//! Fixture: exact float equality fires.
pub fn is_disabled(gain: f64) -> bool {
    gain == 0.0
}

pub fn never_true(x: f64) -> bool {
    x == f64::NAN
}
