//! Fixture: an env read under an audited pragma is suppressed.
pub fn legacy_knob() -> Option<String> {
    // adc-lint: allow(no-env-read) reason="migration shim until the knob moves to CampaignArgs"
    std::env::var("ADC_LEGACY").ok()
}
