//! Fixture: hash collections in a determinism-scoped crate fire.
use std::collections::HashMap;

pub fn tally(keys: &[u64]) -> usize {
    let mut m: HashMap<u64, u64> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.len()
}
