//! Fixture: an `unsafe` excused by pragma instead of annotation.
pub fn transmute_bits(x: u64) -> f64 {
    // adc-lint: allow(safety-comment) reason="bit-pattern transmute u64->f64 is always valid"
    unsafe { std::mem::transmute(x) }
}
