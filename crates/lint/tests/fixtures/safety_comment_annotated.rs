//! Fixture: the idiomatic fix — a `// SAFETY:` comment satisfies the
//! rule with no pragma.
pub fn transmute_bits(x: u64) -> f64 {
    // SAFETY: every u64 bit pattern is a valid f64 (possibly NaN).
    unsafe { std::mem::transmute(x) }
}
