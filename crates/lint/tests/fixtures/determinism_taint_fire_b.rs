// Virtual path: crates/server/src/stamp_fixture.rs — outside
// determinism scope, so wall-clock reads are textually legal here.
use std::time::{SystemTime, UNIX_EPOCH};

pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
