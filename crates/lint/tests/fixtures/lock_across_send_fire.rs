// Virtual path: crates/runtime/src/fixture.rs (lock scope). The send
// can block on a bounded/disconnected channel while the guard is held.
use std::sync::mpsc::Sender;
use std::sync::Mutex;

static STATE: Mutex<u32> = Mutex::new(0);

pub fn publish(tx: &Sender<u32>) {
    let guard = STATE.lock().unwrap();
    let _ = tx.send(*guard);
}
