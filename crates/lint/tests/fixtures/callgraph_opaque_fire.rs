// Virtual path: crates/lint/src/lexer.rs — a call through a callable
// parameter inside a panic root is opaque to the call graph: the pass
// cannot prove anything past it, and says so.
pub fn lex(input: &str, classify: impl Fn(usize) -> u8) -> u8 {
    classify(input.len())
}
