pub fn lex(input: &str, classify: impl Fn(usize) -> u8) -> u8 {
    // adc-lint: allow(callgraph-opaque) reason="callers pass total classifiers only"
    classify(input.len())
}
