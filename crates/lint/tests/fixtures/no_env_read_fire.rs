//! Fixture: an env read outside crates/bench/src/cli.rs fires.
pub fn threads() -> usize {
    std::env::var("ADC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
