//! Fixture: `Instant::now()` in a determinism-scoped crate fires.
use std::time::Instant;

pub fn seed_from_clock() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
