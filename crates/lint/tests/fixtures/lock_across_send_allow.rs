use std::sync::mpsc::Sender;
use std::sync::Mutex;

static STATE: Mutex<u32> = Mutex::new(0);

pub fn publish(tx: &Sender<u32>) {
    let guard = STATE.lock().unwrap();
    // adc-lint: allow(lock-across-send) reason="channel is unbounded; send never blocks"
    let _ = tx.send(*guard);
}
