//! Fixture: malformed pragmas are diagnosed, not ignored.
pub fn f() -> u32 {
    // adc-lint: allow(no-panic)
    1
}
