//! Fixture: NaN-unsafe ordering fires.
pub fn sort(values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
