//! Fixture: an unannotated `unsafe` block fires.
pub fn transmute_bits(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
