//! Fixture: `#[cfg(test)]` items may panic, hash, and read the
//! environment freely — the invariants bind shipped code only.
pub fn shipped() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u64, std::env::var("HOME").unwrap());
        assert!(t.elapsed().as_secs() < 1.0 as u64 && 0.0 == 0.0);
        let x: Vec<f64> = vec![2.0, 1.0];
        let mut y = x.clone();
        y.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
