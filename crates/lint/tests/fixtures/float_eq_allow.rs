//! Fixture: an intentional exact comparison under an audited pragma.
pub fn is_disabled(gain: f64) -> bool {
    // adc-lint: allow(float-eq) reason="feature gate: gain is set to the exact literal 0.0 when disabled"
    gain == 0.0
}
