//! Fixture: a hash set whose contents never drive iteration order,
//! under an audited pragma.
pub fn distinct(keys: &[u64]) -> usize {
    // adc-lint: allow(no-hash-collections) reason="cardinality check only; never iterated"
    let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    set.len()
}
