// Virtual path: crates/lint/src/lexer.rs — `lex` is a symbol-level
// panic root, so the unwrap in the *helper* (not in `lex` itself) is
// reached transitively.
pub fn lex(input: &str) -> u8 {
    first_byte(input)
}

fn first_byte(s: &str) -> u8 {
    *s.as_bytes().first().unwrap()
}
