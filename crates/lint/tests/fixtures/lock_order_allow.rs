use std::sync::Mutex;

static ALPHA: Mutex<u32> = Mutex::new(0);
static BETA: Mutex<u32> = Mutex::new(0);

pub fn alpha_then_beta() -> u32 {
    let a = ALPHA.lock().unwrap();
    // adc-lint: allow(lock-order) reason="beta_then_alpha runs only at shutdown, single-threaded"
    let b = BETA.lock().unwrap();
    *a + *b
}

pub fn beta_then_alpha() -> u32 {
    let b = BETA.lock().unwrap();
    let a = ALPHA.lock().unwrap();
    *a + *b
}
