//! Fixture: an audited panic site in a panic-free file is suppressed.
pub fn lookup(table: &[u16; 256], tag: u8) -> u16 {
    // adc-lint: allow(no-panic) reason="index is a u8 into a 256-entry table; cannot be out of bounds"
    table[usize::from(tag)]
}
