//! Fixture: the same read under an audited pragma is suppressed.
use std::time::Instant;

pub fn job_wall_time() -> std::time::Duration {
    // adc-lint: allow(no-wallclock) reason="wall-time metric only; never feeds results"
    let start = Instant::now();
    start.elapsed()
}
