//! Fixture: branching on thread identity fires.
use std::thread;

pub fn worker_salt() -> u64 {
    let id = thread::current().id();
    format!("{id:?}").len() as u64
}
