//! Fixture: a pragma that suppresses nothing is itself diagnosed.
pub fn clean() -> u32 {
    // adc-lint: allow(no-panic) reason="stale: the unwrap below was removed"
    42
}
