// Virtual path: crates/runtime/src/fixture.rs (determinism scope).
// The taint is not here — it is in the out-of-scope server helper this
// file calls, which the textual rules cannot see.
use adc_server::stamp_fixture::stamp;

pub fn run() -> u64 {
    stamp()
}
