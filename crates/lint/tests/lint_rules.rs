//! Fixture tests: every rule has a firing fixture and a
//! pragma-suppressed fixture, misuse of the pragma machinery is
//! itself diagnosed, and the JSON report round-trips.
//!
//! Fixtures live in `tests/fixtures/` and are analyzed under *virtual*
//! workspace paths, so scoped rules (determinism crates, panic-free
//! files) can be exercised without materializing files at the scoped
//! locations. The `fail_on_regression` tests are the acceptance demo:
//! the real `protocol.rs`, as committed, is clean — and injecting one
//! `unwrap()` (or deleting one `// SAFETY:` comment from the annotated
//! fixture) flips the verdict.

use std::path::PathBuf;

use adc_lint::{analyze_files, analyze_source, Diagnostic, Report, RULES};

/// A virtual path inside a determinism-scoped crate.
const DET: &str = "crates/runtime/src/fixture.rs";
/// A virtual path with panic-freedom enforced.
const PANIC_FREE: &str = "crates/server/src/protocol.rs";
/// A virtual path with no special scope (float/nan/safety rules only).
const PLAIN: &str = "crates/server/src/fixture.rs";
/// A virtual path with a symbol-level panic root (`lex`).
const SYM_ROOT: &str = "crates/lint/src/lexer.rs";

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn rules_hit(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

/// A fixture file set: (fixture file, virtual workspace path).
/// Interprocedural rules need more than one file — the point is that
/// the violation and the contract live in *different* files.
type FileSet = &'static [(&'static str, &'static str)];

/// Analyzes a fixture set as one (virtual) workspace.
fn analyze_set(set: FileSet) -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = set
        .iter()
        .map(|(file, path)| (path.to_string(), fixture(file)))
        .collect();
    let views: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    analyze_files(&views, false).report.diagnostics
}

/// (rule, firing file set, allowed file set) — one row per rule, so
/// adding a rule without fixtures fails the coverage test.
const MATRIX: &[(&str, FileSet, FileSet)] = &[
    (
        "no-wallclock",
        &[("no_wallclock_fire.rs", DET)],
        &[("no_wallclock_allow.rs", DET)],
    ),
    (
        "no-thread-id",
        &[("no_thread_id_fire.rs", DET)],
        &[("no_thread_id_allow.rs", DET)],
    ),
    (
        "no-hash-collections",
        &[("no_hash_collections_fire.rs", DET)],
        &[("no_hash_collections_allow.rs", DET)],
    ),
    (
        "no-env-read",
        &[("no_env_read_fire.rs", PLAIN)],
        &[("no_env_read_allow.rs", PLAIN)],
    ),
    (
        "no-panic",
        &[("no_panic_fire.rs", PANIC_FREE)],
        &[("no_panic_allow.rs", PANIC_FREE)],
    ),
    (
        "float-eq",
        &[("float_eq_fire.rs", PLAIN)],
        &[("float_eq_allow.rs", PLAIN)],
    ),
    (
        "nan-ord",
        &[("nan_ord_fire.rs", PLAIN)],
        &[("nan_ord_allow.rs", PLAIN)],
    ),
    (
        "safety-comment",
        &[("safety_comment_fire.rs", PLAIN)],
        &[("safety_comment_allow.rs", PLAIN)],
    ),
    (
        "panic-reach",
        &[("panic_reach_fire.rs", SYM_ROOT)],
        &[("panic_reach_allow.rs", SYM_ROOT)],
    ),
    (
        "callgraph-opaque",
        &[("callgraph_opaque_fire.rs", SYM_ROOT)],
        &[("callgraph_opaque_allow.rs", SYM_ROOT)],
    ),
    (
        "determinism-taint",
        &[
            ("determinism_taint_fire_a.rs", DET),
            (
                "determinism_taint_fire_b.rs",
                "crates/server/src/stamp_fixture.rs",
            ),
        ],
        &[
            ("determinism_taint_allow_a.rs", DET),
            (
                "determinism_taint_fire_b.rs",
                "crates/server/src/stamp_fixture.rs",
            ),
        ],
    ),
    (
        "lock-order",
        &[("lock_order_fire.rs", DET)],
        &[("lock_order_allow.rs", DET)],
    ),
    (
        "lock-across-send",
        &[("lock_across_send_fire.rs", DET)],
        &[("lock_across_send_allow.rs", DET)],
    ),
];

#[test]
fn every_rule_fires_on_its_fixture() {
    for (rule, fire, _) in MATRIX {
        let diags = analyze_set(fire);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "{fire:?} should fire {rule}; got {:?}",
            rules_hit(&diags)
        );
        // A firing fixture must not trip the meta rules: its pragmaless
        // diagnostics are genuine.
        assert!(
            diags
                .iter()
                .all(|d| d.rule != "unused-allow" && d.rule != "bad-pragma"),
            "{fire:?}: {:?}",
            rules_hit(&diags)
        );
    }
}

#[test]
fn every_rule_is_suppressed_by_its_allow_fixture() {
    for (rule, _, allow) in MATRIX {
        let diags = analyze_set(allow);
        assert!(
            diags.is_empty(),
            "{allow:?} should be clean (pragma suppresses {rule}); got {:?}",
            rules_hit(&diags)
        );
    }
}

#[test]
fn matrix_covers_the_whole_catalogue() {
    let covered: Vec<&str> = MATRIX.iter().map(|(rule, ..)| *rule).collect();
    for rule in RULES {
        assert!(
            covered.contains(&rule.id),
            "rule {} has no fixture row — add firing and allowed fixtures",
            rule.id
        );
    }
    assert_eq!(covered.len(), RULES.len(), "stale fixture rows");
}

#[test]
fn scope_exemptions_hold() {
    // The env-read fixture is clean when it *is* the CLI module…
    let env_src = fixture("no_env_read_fire.rs");
    assert!(analyze_source("crates/bench/src/cli.rs", &env_src).is_empty());
    // …and determinism fixtures are clean outside determinism scope.
    let clock_src = fixture("no_wallclock_fire.rs");
    assert!(analyze_source("crates/server/src/metrics.rs", &clock_src).is_empty());
}

#[test]
fn safety_comment_annotation_is_the_pragmaless_fix() {
    let diags = analyze_source(PLAIN, &fixture("safety_comment_annotated.rs"));
    assert!(diags.is_empty(), "{:?}", rules_hit(&diags));
}

#[test]
fn deleting_the_safety_comment_flips_the_verdict() {
    let annotated = fixture("safety_comment_annotated.rs");
    let stripped: String = annotated
        .lines()
        .filter(|l| !l.trim_start().starts_with("// SAFETY:"))
        .collect::<Vec<_>>()
        .join("\n");
    let diags = analyze_source(PLAIN, &stripped);
    assert_eq!(rules_hit(&diags), vec!["safety-comment"]);
}

#[test]
fn unused_allow_is_reported() {
    let diags = analyze_source(PANIC_FREE, &fixture("unused_allow.rs"));
    assert_eq!(rules_hit(&diags), vec!["unused-allow"]);
}

#[test]
fn bad_pragma_is_reported() {
    let diags = analyze_source(PANIC_FREE, &fixture("bad_pragma.rs"));
    assert_eq!(rules_hit(&diags), vec!["bad-pragma"]);
}

#[test]
fn cfg_test_items_are_fully_exempt() {
    let diags = analyze_source(DET, &fixture("test_mod_skipped.rs"));
    assert!(diags.is_empty(), "{:?}", rules_hit(&diags));
}

#[test]
fn the_committed_protocol_file_is_clean_and_one_unwrap_breaks_it() {
    let real = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../server/src/protocol.rs");
    let source = std::fs::read_to_string(&real).unwrap();
    let clean = analyze_source(PANIC_FREE, &source);
    assert!(
        clean.is_empty(),
        "committed protocol.rs must be lint-clean: {:?}",
        rules_hit(&clean)
    );
    // Inject a single unwrap into non-test code (appended after the
    // test module, which ends the file): the file must now fail.
    let broken = format!("{source}\nfn injected(x: Option<u8>) -> u8 {{ x.unwrap() }}\n");
    let diags = analyze_source(PANIC_FREE, &broken);
    assert_eq!(
        rules_hit(&diags),
        vec!["no-panic"],
        "one unwrap() must produce exactly one no-panic diagnostic"
    );
}

#[test]
fn unwrap_in_a_helper_called_by_protocol_is_caught() {
    // The acceptance fixture from the issue: the panic is NOT in
    // protocol.rs — it is in a helper protocol.rs calls, so only the
    // transitive pass can see it.
    let proto = "use crate::framing::take_first;\n\
                 pub fn decode(v: &[u8]) -> Option<u8> { take_first(v) }\n";
    let helper_ok = "pub fn take_first(v: &[u8]) -> Option<u8> {\n    \
                     Some(*v.first()?)\n}\n";
    let framing = "crates/server/src/framing.rs";
    let clean = analyze_files(&[(PANIC_FREE, proto), (framing, helper_ok)], false)
        .report
        .diagnostics;
    assert!(clean.is_empty(), "{:?}", rules_hit(&clean));
    // Swap the helper's `?` for `unwrap()` — protocol.rs is untouched,
    // yet the workspace must now fail, anchored at the helper.
    let helper_bad = "pub fn take_first(v: &[u8]) -> Option<u8> {\n    \
                      Some(*v.first().unwrap())\n}\n";
    let diags = analyze_files(&[(PANIC_FREE, proto), (framing, helper_bad)], false)
        .report
        .diagnostics;
    assert_eq!(rules_hit(&diags), vec!["panic-reach"], "{diags:?}");
    assert_eq!(diags[0].file, framing);
    assert!(
        diags[0].message.contains("protocol"),
        "witness chain should name the root: {}",
        diags[0].message
    );
}

#[test]
fn fixture_reports_round_trip_through_json() {
    let mut diagnostics = Vec::new();
    for (_, fire, _) in MATRIX {
        diagnostics.extend(analyze_set(fire));
    }
    let report = Report {
        files_scanned: MATRIX.len(),
        diagnostics,
    };
    assert!(!report.is_clean());
    let parsed = Report::from_json(&report.to_json()).expect("emitted JSON must parse");
    assert_eq!(parsed, report, "JSON round-trip must be lossless");
}
