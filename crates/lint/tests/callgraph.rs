//! Live-workspace call-graph meta-test.
//!
//! The interprocedural passes are only as good as the call graph under
//! them, so the resolution rate over the real `crates/*/src` tree is a
//! tested contract, not a dashboard number: ≥95% of name-matching call
//! sites must pin to exactly one callee, and every site that does not
//! must be listed in `stats.unresolved` — degraded, never dropped.

use std::path::PathBuf;

use adc_lint::scan_workspace_full;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn live_workspace_resolves_at_least_95_percent_of_call_sites() {
    let ws = scan_workspace_full(&workspace_root()).expect("scan must succeed");
    let s = &ws.stats;
    assert!(
        s.sites >= 1000,
        "suspiciously few call sites ({}) — did site extraction collapse?",
        s.sites
    );
    assert!(
        s.resolution_rate() >= 0.95,
        "call-graph resolution regressed: {:.1}% of {} sites \
         ({} ambiguous, {} dynamic); first unresolved entries:\n{}",
        100.0 * s.resolution_rate(),
        s.sites,
        s.ambiguous,
        s.dynamic,
        s.unresolved
            .iter()
            .take(25)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_non_unique_site_is_reported_not_dropped() {
    let ws = scan_workspace_full(&workspace_root()).expect("scan must succeed");
    let s = &ws.stats;
    // The accounting identity: the denominator splits exactly into
    // unique + ambiguous + dynamic, and the remainder is enumerated
    // one line per site.
    assert_eq!(
        s.sites,
        s.unique + s.ambiguous + s.dynamic,
        "site accounting must not leak"
    );
    assert_eq!(
        s.unresolved.len(),
        s.ambiguous + s.dynamic,
        "every ambiguous/dynamic site gets an unresolved entry"
    );
    for entry in &s.unresolved {
        assert!(
            entry.contains(".rs:"),
            "unresolved entries carry a file:line anchor: {entry}"
        );
    }
}

#[test]
fn graph_exports_are_well_formed() {
    let ws = scan_workspace_full(&workspace_root()).expect("scan must succeed");
    let x = &ws.exports;
    assert!(x.callgraph_dot.starts_with("digraph"));
    assert!(x.lockgraph_dot.starts_with("digraph"));
    // The JSON export embeds the same stats the meta-test asserts, so
    // CI artifacts and test failures can never disagree.
    assert!(x.callgraph_json.contains("\"unique\""));
    assert!(x.callgraph_json.contains("\"unresolved\""));
    assert!(
        x.callgraph_json.contains("\"edges\""),
        "callgraph export must contain the edge list"
    );
}
