//! The meta-test: the live workspace is lint-clean.
//!
//! This is the same assertion `ci.sh` makes via `adc-lint --deny`,
//! but wired into `cargo test` so a violation fails the ordinary test
//! suite too — nobody has to remember to run the binary.

use std::path::PathBuf;

use adc_lint::scan_workspace;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn live_workspace_has_no_diagnostics() {
    let report = scan_workspace(&workspace_root()).expect("scan must succeed");
    assert!(
        report.is_clean(),
        "the workspace must be lint-clean:\n{}",
        report.render_human()
    );
}

#[test]
fn scan_covers_the_whole_first_party_tree() {
    let report = scan_workspace(&workspace_root()).expect("scan must succeed");
    // 100+ first-party sources today; a collapse of the discovery walk
    // (wrong root, missed crates/) would show up as a tiny count long
    // before it shows up as missed violations.
    assert!(
        report.files_scanned >= 80,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = scan_workspace(&root).expect("scan must succeed");
    let b = scan_workspace(&root).expect("scan must succeed");
    assert_eq!(a, b, "two scans of the same tree must be identical");
    assert_eq!(a.to_json(), b.to_json());
}
