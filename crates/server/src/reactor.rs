//! The readiness-driven serving core: one reactor thread multiplexes
//! every connection over `poll(2)` while simulation runs on the shared
//! [`JobPool`](adc_runtime::JobPool).
//!
//! ## Shape
//!
//! * The reactor owns the listener and every [`Conn`]: nonblocking
//!   sockets, an incremental [`FrameAssembler`] per connection, and a
//!   bounded outbound frame queue ([`ConnOut`]) flushed opportunistically
//!   whenever the socket is writable.
//! * Decoded requests either complete inline (`Ping`, `Metrics`, cache
//!   traffic) or park in a bounded per-connection **admission queue**.
//!   A full queue sheds the newest request with a typed
//!   [`ErrorCode::Overloaded`] frame instead of buffering unboundedly.
//! * [`Reactor::dispatch`] drains admission queues round-robin (one
//!   request per connection per round, resuming after the last admitted
//!   connection) into pool jobs, bounded by global and per-connection
//!   in-flight caps. Identical tone requests that are admitted in the
//!   same round **coalesce** into one lane-parallel
//!   [`LaneBench`] job that fabricates and converts every seed in a
//!   single pass and streams each client its own record.
//! * Workers never touch sockets: they push encoded frames into the
//!   connection's [`ConnOut`] (blocking on the bound, polling their
//!   deadline) and signal completion through an event list plus a
//!   [`Waker`] byte that interrupts `poll`.
//!
//! ## Ordering and correlation
//!
//! A [`SubmitRequest`] with `corr_id != 0` may complete out of order;
//! every one of its frames comes back wrapped in
//! [`Response::Tagged`]. `corr_id == 0` (and the bare
//! `Digitize`/`Ganged` frames, which are equivalent) is **legacy
//! ordered mode**: at most one id-0 request is in flight per
//! connection, so untagged responses never interleave.
//!
//! ## Determinism
//!
//! Scheduling here decides *when* a record is computed, never *what* it
//! contains: jobs derive entirely from the request (preset, overrides,
//! seed, waveform), and a coalesced lane run is bit-identical to the
//! scalar path per the lane-equivalence tests in `adc-testbench`. The
//! module is in `adc-lint`'s determinism scope to keep it that way.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use adc_runtime::{JobCtx, JobError};
use adc_testbench::LaneBench;

use crate::protocol::{
    encode_response, error_code_for_build, DigitizeDone, DigitizeRequest, ErrorCode,
    FrameAssembler, GangedDone, GangedRequest, Request, Response, SubmitBody, WaveformSpec,
    WireError,
};
use crate::server::{
    digitize_config, error_code_for_ganged, run_digitize, run_ganged, run_job_batch, stream_crc,
    validate, validate_ganged, value_stream_crc, ServerConfig, Shared,
};

/// Bytes read from a socket per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;
/// Outbound bytes staged per `write(2)` call.
const WRITE_CHUNK: usize = 64 * 1024;

/// Minimal `poll(2)` binding — the only system interface the reactor
/// needs beyond std. Kept to one symbol so the surface is auditable.
#[cfg(unix)]
mod sys {
    use std::io;

    /// Mirror of the C `struct pollfd` (identical layout on every
    /// platform std supports).
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested readiness events.
        pub events: i16,
        /// Kernel-reported readiness events.
        pub revents: i16,
    }

    /// Readable (or peer-closed) readiness.
    pub const POLLIN: i16 = 0x001;
    /// Writable readiness.
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Blocks until a descriptor is ready or `timeout_ms` passes,
    /// retrying on `EINTR`. Returns the ready count.
    pub fn poll_wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid exclusive slice of #[repr(C)]
            // pollfd-layout structs for the whole call, and `nfds`
            // matches its length — exactly the poll(2) contract.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Wakes the reactor out of `poll` by writing one byte into a
/// socketpair the reactor watches. Cloneable; shared with every worker
/// through [`JobGuard`] and every [`ConnOut`].
#[derive(Clone, Debug)]
pub(crate) struct Waker {
    #[cfg(unix)]
    tx: Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    /// Nudges the reactor. Best-effort: a full pipe already guarantees
    /// a pending wakeup, and a closed one means the reactor is gone.
    pub(crate) fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&*self.tx).write_all(&[1u8]);
        }
    }
}

/// The reactor-side read end of the waker channel.
#[cfg(unix)]
pub(crate) type WakerRx = std::os::unix::net::UnixStream;
/// Fallback waker read end on non-unix hosts (the reactor falls back to
/// timeout-tick polling there).
#[cfg(not(unix))]
pub(crate) type WakerRx = ();

/// Builds a connected waker pair, both ends nonblocking.
pub(crate) fn waker_pair() -> io::Result<(Waker, WakerRx)> {
    #[cfg(unix)]
    {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx: Arc::new(tx) }, rx))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, ()))
    }
}

/// A completion notice a worker posts into [`Shared::events`] before
/// waking the reactor.
#[derive(Debug)]
pub(crate) enum Event {
    /// One logical request finished (success or failure).
    JobDone {
        /// Connection the request belonged to.
        conn: u64,
        /// `true` for legacy ordered (corr id 0) requests — releases the
        /// connection's ordered-mode slot.
        legacy: bool,
        /// `true` when the request held a global in-flight slot (batch
        /// jobs run on their own thread and don't).
        global: bool,
        /// `true` when the request failed (for the error counter).
        failed: bool,
    },
    /// One pool job (which may have carried several coalesced requests)
    /// finished, releasing its pool-depth slot. The reactor keeps at
    /// most workers + 1 jobs at the pool so pending work coalesces at
    /// the last moment: deep batches under backlog, shallow ones —
    /// low latency — when the pool is keeping up.
    PoolSlotFreed,
}

/// Outbound frame state for one connection.
struct OutState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// The bounded outbound frame queue of one connection — the
/// backpressure mechanism. Workers push (blocking on the bound while
/// polling their deadline); the reactor pops while flushing.
pub(crate) struct ConnOut {
    state: Mutex<OutState>,
    space: Condvar,
    capacity: usize,
    waker: Waker,
}

impl std::fmt::Debug for ConnOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnOut")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl ConnOut {
    fn new(capacity: usize, waker: Waker) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(OutState {
                frames: VecDeque::new(),
                closed: false,
            }),
            space: Condvar::new(),
            capacity: capacity.max(1),
            waker,
        })
    }

    /// Queues a frame, blocking while the queue is at capacity. Returns
    /// `false` once the connection closed or the job's deadline fired —
    /// the streaming worker must stop.
    fn push_wait(&self, ctx: &JobCtx, frame: Vec<u8>) -> bool {
        let mut state = self.state.lock().expect("conn out lock");
        loop {
            if state.closed {
                return false;
            }
            if state.frames.len() < self.capacity {
                state.frames.push_back(frame);
                drop(state);
                self.waker.wake();
                return true;
            }
            if ctx.timed_out() || ctx.cancelled() {
                return false;
            }
            let (next, _) = self
                .space
                .wait_timeout(state, Duration::from_millis(1))
                .expect("conn out lock");
            state = next;
        }
    }

    /// Queues a frame without blocking or respecting the bound — for
    /// reactor-inline responses and terminal error frames, which must
    /// never stall the reactor thread.
    fn push_now(&self, frame: Vec<u8>) -> bool {
        let mut state = self.state.lock().expect("conn out lock");
        if state.closed {
            return false;
        }
        state.frames.push_back(frame);
        drop(state);
        self.waker.wake();
        true
    }

    /// Takes the oldest queued frame, releasing one unit of
    /// backpressure.
    fn pop(&self) -> Option<Vec<u8>> {
        let mut state = self.state.lock().expect("conn out lock");
        let frame = state.frames.pop_front();
        if frame.is_some() {
            drop(state);
            self.space.notify_all();
        }
        frame
    }

    fn is_empty(&self) -> bool {
        self.state.lock().expect("conn out lock").frames.is_empty()
    }

    /// Marks the connection gone: queued frames are dropped and every
    /// blocked pusher unblocks with `false`.
    fn close(&self) {
        let mut state = self.state.lock().expect("conn out lock");
        state.closed = true;
        state.frames.clear();
        drop(state);
        self.space.notify_all();
    }
}

/// Wraps a response in [`Response::Tagged`] when the request carried a
/// nonzero correlation id.
fn wrap(corr: u64, response: Response) -> Vec<u8> {
    if corr == 0 {
        encode_response(&response)
    } else {
        encode_response(&Response::Tagged {
            corr_id: corr,
            inner: Box::new(response),
        })
    }
}

/// A worker's handle for streaming responses to one request: the
/// connection's queue plus the request's correlation id (applied to
/// every frame).
#[derive(Clone)]
pub(crate) struct ConnSink {
    out: Arc<ConnOut>,
    corr: u64,
}

impl std::fmt::Debug for ConnSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnSink")
            .field("corr", &self.corr)
            .finish()
    }
}

impl ConnSink {
    /// Queues a response, blocking on backpressure until the deadline
    /// fires or the peer leaves.
    fn send(&self, ctx: &JobCtx, response: Response) -> bool {
        self.out.push_wait(ctx, wrap(self.corr, response))
    }

    /// Queues a response unconditionally (terminal frames).
    fn send_now(&self, response: Response) -> bool {
        self.out.push_now(wrap(self.corr, response))
    }
}

/// One admitted-but-not-yet-dispatched digitization.
#[derive(Debug)]
enum Work {
    Digitize { corr: u64, req: DigitizeRequest },
    Ganged { corr: u64, req: GangedRequest },
}

impl Work {
    fn corr(&self) -> u64 {
        match self {
            Self::Digitize { corr, .. } | Self::Ganged { corr, .. } => *corr,
        }
    }
}

/// The coalescing identity of a tone digitization: two requests with
/// equal keys (everything but the seed) can fabricate and convert as
/// lanes of one [`LaneBench`] pass. Floats key by bit pattern — the
/// served computation is keyed on exact values, so coalescing must be
/// too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct LaneKey {
    preset: u8,
    f_cr: Option<u64>,
    amp: Option<u64>,
    noise: Option<bool>,
    f_target: u64,
    n_samples: u32,
    batch_size: u32,
}

/// `Some` when the work is coalescible: a tone digitize with no
/// deadline (a deadline is per-request; lane members must share fate).
fn lane_key(work: &Work) -> Option<LaneKey> {
    let Work::Digitize { req, .. } = work else {
        return None;
    };
    if req.deadline_ms != 0 {
        return None;
    }
    let WaveformSpec::Tone { f_target_hz } = req.waveform else {
        return None;
    };
    Some(LaneKey {
        preset: req.preset.to_u8(),
        f_cr: req.overrides.f_cr_hz.map(f64::to_bits),
        amp: req.overrides.amplitude_v.map(f64::to_bits),
        noise: req.overrides.thermal_noise,
        f_target: f_target_hz.to_bits(),
        n_samples: req.n_samples,
        batch_size: req.batch_size,
    })
}

/// One request's membership in a dispatched job.
struct Member {
    conn: u64,
    legacy: bool,
    sink: ConnSink,
}

/// Guarantees every dispatched request posts exactly one
/// [`Event::JobDone`] — even when the job closure panics or is dropped
/// unrun — so in-flight accounting can never leak and drain can never
/// hang.
struct JobGuard {
    shared: Arc<Shared>,
    members: Vec<Member>,
    global: bool,
    settled: bool,
    failed: bool,
}

impl JobGuard {
    fn new(shared: Arc<Shared>, global: bool, members: Vec<Member>) -> Self {
        Self {
            shared,
            members,
            global,
            settled: false,
            failed: false,
        }
    }

    /// Records the job's outcome; called exactly once on the normal
    /// path.
    fn finish(&mut self, failed: bool) {
        self.settled = true;
        self.failed = failed;
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        if !self.settled {
            // The closure unwound or was dropped unrun: tell every
            // member so no client waits forever on a lost request.
            self.failed = true;
            for member in &self.members {
                let _ = member.sink.send_now(Response::Error {
                    code: ErrorCode::Internal,
                    detail: "request lost: the serving job unwound".to_string(),
                });
            }
        }
        {
            let mut events = self.shared.events.lock().expect("reactor event lock");
            for member in &self.members {
                events.push(Event::JobDone {
                    conn: member.conn,
                    legacy: member.legacy,
                    global: self.global,
                    failed: self.failed,
                });
            }
            if self.global {
                events.push(Event::PoolSlotFreed);
            }
        }
        self.shared.waker.wake();
    }
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    out: Arc<ConnOut>,
    /// Partially-written outbound bytes (staged from `out`).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Admitted requests waiting for an in-flight slot.
    pending: VecDeque<Work>,
    /// Requests currently running on the pool (or a batch thread).
    inflight: u32,
    /// `true` while a legacy ordered (corr id 0) request is in flight.
    legacy_busy: bool,
    read_closed: bool,
    dead: bool,
}

impl Conn {
    fn has_write_intent(&self) -> bool {
        self.wpos < self.wbuf.len() || !self.out.is_empty()
    }
}

/// The event loop state. Single-threaded: only [`run`] touches it.
struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    #[cfg_attr(not(unix), allow(dead_code))]
    waker_rx: WakerRx,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    /// Requests holding global in-flight slots.
    inflight: usize,
    /// Jobs currently at the pool (queued or running).
    pool_jobs: usize,
    /// Pool-depth ceiling: workers + 1 (one job running per worker,
    /// one composed ahead so workers never idle waiting on the
    /// reactor). Holding the rest back in `pending` lets dispatch
    /// coalesce whatever has accumulated by the time a slot frees.
    pool_cap: usize,
    /// Fairness cursor: dispatch resumes after this connection id.
    cursor: u64,
    batch_threads: Vec<std::thread::JoinHandle<()>>,
    scratch: Vec<u8>,
}

/// Runs the reactor until drained: the listener has stopped accepting,
/// every connection has flushed and closed, and every dispatched job
/// has completed.
pub(crate) fn run(listener: TcpListener, waker_rx: WakerRx, shared: Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let pool_cap = shared.pool.threads() + 1;
    let mut reactor = Reactor {
        shared,
        listener,
        waker_rx,
        conns: BTreeMap::new(),
        next_conn: 1,
        inflight: 0,
        pool_jobs: 0,
        pool_cap,
        cursor: 0,
        batch_threads: Vec::new(),
        scratch: vec![0u8; READ_CHUNK],
    };
    let result = reactor.event_loop();
    for join in reactor.batch_threads.drain(..) {
        let _ = join.join();
    }
    for conn in reactor.conns.values() {
        conn.out.close();
    }
    result
}

impl Reactor {
    fn event_loop(&mut self) -> io::Result<()> {
        loop {
            self.wait()?;
            self.process_events();
            self.accept()?;
            self.read_phase();
            self.dispatch();
            self.write_phase();
            self.reap();
            if self.shared.draining.load(Ordering::SeqCst)
                && self.conns.is_empty()
                && self.inflight == 0
            {
                return Ok(());
            }
        }
    }

    /// Blocks in `poll` until a socket is ready, a worker wakes us, or
    /// the poll tick elapses (the tick bounds drain latency and is the
    /// whole loop on non-unix hosts).
    fn wait(&mut self) -> io::Result<()> {
        let timeout = self.shared.cfg.read_poll;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let draining = self.shared.draining.load(Ordering::SeqCst);
            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            fds.push(sys::PollFd {
                fd: self.waker_rx.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            if !draining {
                fds.push(sys::PollFd {
                    fd: self.listener.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
            }
            for conn in self.conns.values() {
                if conn.dead {
                    continue;
                }
                let mut events = 0i16;
                if !draining && !conn.read_closed {
                    events |= sys::POLLIN;
                }
                if conn.has_write_intent() {
                    events |= sys::POLLOUT;
                }
                if events == 0 {
                    continue;
                }
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            let timeout_ms = i32::try_from(timeout.as_millis())
                .unwrap_or(i32::MAX)
                .max(1);
            sys::poll_wait(&mut fds, timeout_ms)?;
            // Drain the waker channel: wakeups are level cleared here,
            // and workers always post state *before* waking, so a
            // drained byte's work is always visible to this iteration.
            let mut sink = [0u8; 64];
            loop {
                match (&self.waker_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        #[cfg(not(unix))]
        {
            std::thread::sleep(
                timeout
                    .min(Duration::from_millis(1))
                    .max(Duration::from_micros(100)),
            );
        }
        Ok(())
    }

    /// Applies completion events posted by workers since the last
    /// iteration.
    fn process_events(&mut self) {
        let events = std::mem::take(&mut *self.shared.events.lock().expect("reactor event lock"));
        for event in events {
            match event {
                Event::JobDone {
                    conn,
                    legacy,
                    global,
                    failed,
                } => {
                    if global {
                        self.inflight = self.inflight.saturating_sub(1);
                    }
                    if failed {
                        self.shared.metrics.error();
                    }
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.inflight = c.inflight.saturating_sub(1);
                        if legacy {
                            c.legacy_busy = false;
                        }
                    }
                }
                Event::PoolSlotFreed => {
                    self.pool_jobs = self.pool_jobs.saturating_sub(1);
                }
            }
        }
    }

    fn accept(&mut self) -> io::Result<()> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Ok(());
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.shared.metrics.connection_opened();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    let out = ConnOut::new(
                        self.shared.cfg.write_queue_frames,
                        self.shared.waker.clone(),
                    );
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            assembler: FrameAssembler::new(),
                            out,
                            wbuf: Vec::new(),
                            wpos: 0,
                            pending: VecDeque::new(),
                            inflight: 0,
                            legacy_busy: false,
                            read_closed: false,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads every readable socket to exhaustion, feeding the per-
    /// connection assembler and handling decoded requests.
    fn read_phase(&mut self) {
        if self.shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let mut decoded = Vec::new();
            {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead || conn.read_closed {
                    continue;
                }
                loop {
                    match conn.stream.read(&mut self.scratch) {
                        Ok(0) => {
                            conn.read_closed = true;
                            break;
                        }
                        Ok(n) => {
                            match ingest(
                                &mut conn.assembler,
                                &self.scratch[..n],
                                self.shared.cfg.max_payload,
                            ) {
                                Ok(requests) => decoded.extend(requests),
                                Err(w) => {
                                    // Framing is lost: report and stop
                                    // reading (resync is impossible on a
                                    // corrupt length-prefixed stream).
                                    self.shared.metrics.error();
                                    let _ = conn.out.push_now(wrap(
                                        0,
                                        Response::Error {
                                            code: ErrorCode::Protocol,
                                            detail: w.to_string(),
                                        },
                                    ));
                                    conn.read_closed = true;
                                    break;
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            conn.out.close();
                            break;
                        }
                    }
                }
            }
            for request in decoded {
                self.handle_request(id, request);
            }
        }
    }

    /// Serves one decoded request: inline for control traffic, admission
    /// queue for digitization.
    fn handle_request(&mut self, id: u64, request: Request) {
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        match request {
            Request::Ping { token } => {
                shared.metrics.ping();
                let _ = conn.out.push_now(wrap(0, Response::Pong { token }));
            }
            Request::Metrics => {
                shared.metrics.metrics_request();
                let snapshot = shared.metrics.snapshot();
                let _ = conn.out.push_now(wrap(0, Response::Metrics(snapshot)));
            }
            Request::Shutdown => {
                // Begin the drain *before* acking: once the client has
                // the ack in hand, `is_draining()` must already be true.
                shared.draining.store(true, Ordering::SeqCst);
                let _ = conn.out.push_now(wrap(0, Response::ShutdownAck));
                conn.read_closed = true;
            }
            Request::Digitize(req) => {
                shared.metrics.digitize();
                if let Err(detail) = validate(&req, &shared.cfg) {
                    shared.metrics.error();
                    let _ = conn.out.push_now(wrap(
                        0,
                        Response::Error {
                            code: ErrorCode::InvalidRequest,
                            detail,
                        },
                    ));
                    return;
                }
                enqueue(conn, &shared, Work::Digitize { corr: 0, req });
            }
            Request::Ganged(req) => {
                shared.metrics.digitize();
                if let Err(detail) = validate_ganged(&req, &shared.cfg) {
                    shared.metrics.error();
                    let _ = conn.out.push_now(wrap(
                        0,
                        Response::Error {
                            code: ErrorCode::InvalidRequest,
                            detail,
                        },
                    ));
                    return;
                }
                enqueue(conn, &shared, Work::Ganged { corr: 0, req });
            }
            Request::Submit(sub) => {
                shared.metrics.digitize();
                let corr = sub.corr_id;
                let work = match sub.body {
                    SubmitBody::Digitize(req) => {
                        if let Err(detail) = validate(&req, &shared.cfg) {
                            shared.metrics.error();
                            let _ = conn.out.push_now(wrap(
                                corr,
                                Response::Error {
                                    code: ErrorCode::InvalidRequest,
                                    detail,
                                },
                            ));
                            return;
                        }
                        Work::Digitize { corr, req }
                    }
                    SubmitBody::Ganged(req) => {
                        if let Err(detail) = validate_ganged(&req, &shared.cfg) {
                            shared.metrics.error();
                            let _ = conn.out.push_now(wrap(
                                corr,
                                Response::Error {
                                    code: ErrorCode::InvalidRequest,
                                    detail,
                                },
                            ));
                            return;
                        }
                        Work::Ganged { corr, req }
                    }
                };
                enqueue(conn, &shared, work);
            }
            Request::JobBatch(req) => {
                shared.metrics.job_batch();
                let Some(runner) = shared.cfg.job_runner.clone() else {
                    shared.metrics.error();
                    let _ = conn.out.push_now(wrap(
                        0,
                        Response::Error {
                            code: ErrorCode::Unsupported,
                            detail: "this host has no job runner registered".to_string(),
                        },
                    ));
                    return;
                };
                conn.inflight += 1;
                let sink = ConnSink {
                    out: Arc::clone(&conn.out),
                    corr: 0,
                };
                let mut guard = JobGuard::new(
                    Arc::clone(&shared),
                    false,
                    vec![Member {
                        conn: id,
                        legacy: false,
                        sink: sink.clone(),
                    }],
                );
                // Batch jobs orchestrate their own pool fan-out and
                // block on cache I/O, so they get a plain thread instead
                // of occupying a pool worker.
                self.batch_threads.push(std::thread::spawn(move || {
                    let result = run_job_batch(&req, &runner, &shared);
                    let delivered = sink.send_now(Response::JobResult(result));
                    guard.finish(!delivered);
                }));
            }
            Request::CacheQuery(q) => {
                let cache = shared.caches.for_campaign(&q.campaign);
                let entries: Vec<(u64, String)> = q
                    .keys
                    .iter()
                    .filter_map(|&key| cache.get_line(key).map(|line| (key, line)))
                    .collect();
                let _ = conn.out.push_now(wrap(0, Response::CacheHits { entries }));
            }
            Request::CacheFill(c) => {
                let cache = shared.caches.for_campaign(&c.campaign);
                let mut accepted = 0u32;
                for (key, line) in &c.entries {
                    if cache.get_line(*key).is_none() {
                        cache.put_line(*key, line);
                        accepted += 1;
                    }
                }
                let _ = cache.persist(&c.campaign);
                let _ = conn
                    .out
                    .push_now(wrap(0, Response::CacheFillAck { accepted }));
            }
        }
    }

    /// Moves admitted work onto the pool: fair round-robin across
    /// connections, bounded by the global and per-connection in-flight
    /// caps, coalescing identical tone requests admitted in the same
    /// round.
    fn dispatch(&mut self) {
        let max_inflight = self.shared.cfg.max_inflight.max(1);
        let per_conn = self.shared.cfg.max_inflight_per_conn.max(1);
        let max_lanes = self.shared.cfg.max_coalesce_lanes.max(1);

        // Keep at most `pool_cap` jobs at the pool and park the rest
        // in per-connection pending queues: work grouped here the
        // moment a slot frees coalesces everything that accumulated
        // while the workers were busy, so batch depth tracks backlog
        // instead of freezing at whatever the arrival pattern was.
        if self.pool_jobs >= self.pool_cap {
            return;
        }
        let max_admit = (self.pool_cap - self.pool_jobs).saturating_mul(max_lanes);

        let ids: Vec<u64> = self.conns.keys().copied().collect();
        if ids.is_empty() {
            return;
        }
        // Resume after the last connection that got a slot so one
        // chatty connection cannot starve the rest.
        let pivot = ids.partition_point(|&id| id <= self.cursor);
        let order: Vec<u64> = ids[pivot..]
            .iter()
            .chain(ids[..pivot].iter())
            .copied()
            .collect();

        let mut admitted: Vec<(u64, Work)> = Vec::new();
        'admit: loop {
            let mut progressed = false;
            for &id in &order {
                if self.inflight >= max_inflight || admitted.len() >= max_admit {
                    break 'admit;
                }
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead || conn.inflight as usize >= per_conn {
                    continue;
                }
                // Legacy ordered mode serializes corr-id-0 requests per
                // connection without blocking later pipelined ones.
                let pos = conn
                    .pending
                    .iter()
                    .position(|w| w.corr() != 0 || !conn.legacy_busy);
                let Some(pos) = pos else { continue };
                let Some(work) = conn.pending.remove(pos) else {
                    continue;
                };
                if work.corr() == 0 {
                    conn.legacy_busy = true;
                }
                conn.inflight += 1;
                self.inflight += 1;
                self.cursor = id;
                admitted.push((id, work));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }

        // Partition the admitted round into coalescible tone groups and
        // singles, preserving admission order within each.
        let mut groups: BTreeMap<LaneKey, Vec<(u64, Work)>> = BTreeMap::new();
        let mut singles: Vec<(u64, Work)> = Vec::new();
        for (id, work) in admitted {
            match lane_key(&work) {
                Some(key) => groups.entry(key).or_default().push((id, work)),
                None => singles.push((id, work)),
            }
        }
        for (id, work) in singles {
            self.submit_single(id, work);
        }
        for (_, mut members) in groups {
            while !members.is_empty() {
                let take = members.len().min(max_lanes);
                let chunk: Vec<(u64, Work)> = members.drain(..take).collect();
                if chunk.len() == 1 {
                    let (id, work) = chunk.into_iter().next().expect("chunk of one");
                    self.submit_single(id, work);
                } else {
                    self.submit_lanes(chunk);
                }
            }
        }
    }

    /// Dispatches one request as its own pool job.
    fn submit_single(&mut self, id: u64, work: Work) {
        let Some(conn) = self.conns.get(&id) else {
            // The connection vanished between admission and dispatch;
            // settle the slot immediately.
            self.inflight = self.inflight.saturating_sub(1);
            return;
        };
        let corr = work.corr();
        let sink = ConnSink {
            out: Arc::clone(&conn.out),
            corr,
        };
        let cfg = self.shared.cfg.clone();
        let mut guard = JobGuard::new(
            Arc::clone(&self.shared),
            true,
            vec![Member {
                conn: id,
                legacy: corr == 0,
                sink: sink.clone(),
            }],
        );
        self.pool_jobs += 1;
        match work {
            Work::Digitize { req, .. } => {
                let deadline = (req.deadline_ms > 0)
                    .then(|| Duration::from_millis(u64::from(req.deadline_ms)));
                let _handle = self.shared.pool.submit(deadline, move |ctx| {
                    let result = digitize_job(&req, &cfg, ctx, &sink);
                    guard.finish(result.is_err());
                    result
                });
            }
            Work::Ganged { req, .. } => {
                let deadline = (req.deadline_ms > 0)
                    .then(|| Duration::from_millis(u64::from(req.deadline_ms)));
                let _handle = self.shared.pool.submit(deadline, move |ctx| {
                    let result = ganged_job(&req, &cfg, ctx, &sink);
                    guard.finish(result.is_err());
                    result
                });
            }
        }
    }

    /// Dispatches a group of identical tone requests as one
    /// lane-parallel job.
    fn submit_lanes(&mut self, chunk: Vec<(u64, Work)>) {
        let mut guard_members = Vec::with_capacity(chunk.len());
        let mut lane_inputs: Vec<(ConnSink, DigitizeRequest)> = Vec::with_capacity(chunk.len());
        for (id, work) in chunk {
            let Work::Digitize { corr, req } = work else {
                continue;
            };
            let Some(conn) = self.conns.get(&id) else {
                self.inflight = self.inflight.saturating_sub(1);
                continue;
            };
            let sink = ConnSink {
                out: Arc::clone(&conn.out),
                corr,
            };
            guard_members.push(Member {
                conn: id,
                legacy: corr == 0,
                sink: sink.clone(),
            });
            lane_inputs.push((sink, req));
        }
        if lane_inputs.is_empty() {
            return;
        }
        self.shared.metrics.coalesced(lane_inputs.len() as u64);
        let cfg = self.shared.cfg.clone();
        let mut guard = JobGuard::new(Arc::clone(&self.shared), true, guard_members);
        self.pool_jobs += 1;
        let _handle = self.shared.pool.submit(None, move |ctx| {
            let result = lane_job(&cfg, ctx, &lane_inputs);
            guard.finish(result.is_err());
            result
        });
    }

    /// Flushes every connection with queued or partially-written
    /// outbound bytes.
    fn write_phase(&mut self) {
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            flush_conn(conn);
            if conn.dead {
                conn.out.close();
            }
        }
    }

    /// Removes finished connections and reaps finished batch threads.
    fn reap(&mut self) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                if c.inflight > 0 {
                    return false;
                }
                if c.dead {
                    return true;
                }
                c.pending.is_empty()
                    && c.wpos >= c.wbuf.len()
                    && c.out.is_empty()
                    && (c.read_closed || draining)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            if let Some(conn) = self.conns.remove(&id) {
                conn.out.close();
            }
        }
        self.batch_threads.retain(|h| !h.is_finished());
    }
}

/// Parks a request in the connection's admission queue, shedding the
/// newest request with a typed [`ErrorCode::Overloaded`] frame when the
/// queue is full.
fn enqueue(conn: &mut Conn, shared: &Arc<Shared>, work: Work) {
    let cap = shared.cfg.max_pending_per_conn.max(1);
    if conn.pending.len() >= cap {
        shared.metrics.overloaded();
        shared.metrics.error();
        let _ = conn.out.push_now(wrap(
            work.corr(),
            Response::Error {
                code: ErrorCode::Overloaded,
                detail: format!(
                    "admission queue full: {} requests parked on this connection",
                    conn.pending.len()
                ),
            },
        ));
        return;
    }
    conn.pending.push_back(work);
}

/// Feeds raw socket bytes through the connection's assembler and
/// decodes every complete frame. Pure buffer work — no locks, no I/O,
/// no pool — and panic-free by construction (it is a symbol-level
/// panic root in `adc-lint`).
pub(crate) fn ingest(
    assembler: &mut FrameAssembler,
    bytes: &[u8],
    max_payload: u32,
) -> Result<Vec<Request>, WireError> {
    assembler.extend(bytes);
    let mut requests = Vec::new();
    while let Some((kind, payload)) = assembler.next_frame(max_payload)? {
        requests.push(Request::decode(kind, &payload)?);
    }
    Ok(requests)
}

/// Writes staged bytes to the socket until it would block, refilling
/// the stage from the frame queue in [`WRITE_CHUNK`] pieces.
fn flush_conn(conn: &mut Conn) {
    loop {
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            while conn.wbuf.len() < WRITE_CHUNK {
                match conn.out.pop() {
                    Some(frame) => conn.wbuf.extend_from_slice(&frame),
                    None => break,
                }
            }
            if conn.wbuf.is_empty() {
                return;
            }
        }
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Streams one digitize request's response frames into its sink. Runs
/// on a pool worker.
fn digitize_job(
    req: &DigitizeRequest,
    cfg: &ServerConfig,
    ctx: &JobCtx,
    sink: &ConnSink,
) -> Result<u64, JobError> {
    let fail = |code: ErrorCode, detail: String| {
        let _ = sink.send_now(Response::Error {
            code,
            detail: detail.clone(),
        });
        Err(JobError::Failed(detail))
    };
    // Scope span ids to the request's fabrication seed — two server
    // runs serving the same request produce the same span identities.
    let _trace_task = adc_trace::task(req.seed);
    let _trace_request = adc_trace::span_with("request", ctx.id.0);
    if ctx.timed_out() {
        let _ = sink.send_now(Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired before simulation started".to_string(),
        });
        return Err(JobError::TimedOut);
    }
    let digitize_result = {
        let _trace_digitize = adc_trace::span("digitize");
        run_digitize(req)
    };
    let (codes, f_in_hz) = match digitize_result {
        Ok(result) => result,
        Err(build) => return fail(error_code_for_build(&build), build.to_string()),
    };
    if ctx.timed_out() {
        let _ = sink.send_now(Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired during conversion".to_string(),
        });
        return Err(JobError::TimedOut);
    }
    let batch = if req.batch_size == 0 {
        cfg.default_batch.max(1) as usize
    } else {
        req.batch_size as usize
    };
    let _trace_stream = adc_trace::span("stream");
    let mut batches = 0u32;
    for (seq, chunk) in codes.chunks(batch).enumerate() {
        let sent = sink.send(
            ctx,
            Response::Batch {
                seq: seq as u32,
                samples: chunk.to_vec(),
            },
        );
        if !sent {
            let timed_out = ctx.timed_out();
            let _ = sink.send_now(Response::Error {
                code: ErrorCode::TimedOut,
                detail: format!("deadline expired after {batches} batches"),
            });
            return if timed_out {
                Err(JobError::TimedOut)
            } else {
                Err(JobError::Failed("client went away mid-stream".to_string()))
            };
        }
        batches += 1;
        ctx.record_samples(chunk.len() as u64);
    }
    let done = Response::Done(DigitizeDone {
        total_samples: codes.len() as u32,
        batches,
        f_in_hz,
        stream_crc32: stream_crc(&codes),
    });
    if !sink.send(ctx, done) {
        return Err(JobError::Failed("client went away at done".to_string()));
    }
    ctx.record_requests(1);
    Ok(codes.len() as u64)
}

/// Streams one ganged request's response frames into its sink —
/// structurally the twin of [`digitize_job`] with the array scenario in
/// place of the single-die session.
fn ganged_job(
    req: &GangedRequest,
    cfg: &ServerConfig,
    ctx: &JobCtx,
    sink: &ConnSink,
) -> Result<u64, JobError> {
    let fail = |code: ErrorCode, detail: String| {
        let _ = sink.send_now(Response::Error {
            code,
            detail: detail.clone(),
        });
        Err(JobError::Failed(detail))
    };
    let _trace_task = adc_trace::task(req.seed);
    let _trace_request = adc_trace::span_with("request", ctx.id.0);
    if ctx.timed_out() {
        let _ = sink.send_now(Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired before simulation started".to_string(),
        });
        return Err(JobError::TimedOut);
    }
    let capture = {
        let _trace_ganged = adc_trace::span("ganged");
        run_ganged(req)
    };
    let capture = match capture {
        Ok(capture) => capture,
        Err(err) => return fail(error_code_for_ganged(&err), err.to_string()),
    };
    if ctx.timed_out() {
        let _ = sink.send_now(Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired during conversion".to_string(),
        });
        return Err(JobError::TimedOut);
    }
    let batch = if req.batch_size == 0 {
        cfg.default_batch.max(1) as usize
    } else {
        req.batch_size as usize
    };
    let _trace_stream = adc_trace::span("stream");
    let mut batches = 0u32;
    for (seq, chunk) in capture.values.chunks(batch).enumerate() {
        let sent = sink.send(
            ctx,
            Response::GangedBatch {
                seq: seq as u32,
                values: chunk.to_vec(),
            },
        );
        if !sent {
            let timed_out = ctx.timed_out();
            let _ = sink.send_now(Response::Error {
                code: ErrorCode::TimedOut,
                detail: format!("deadline expired after {batches} batches"),
            });
            return if timed_out {
                Err(JobError::TimedOut)
            } else {
                Err(JobError::Failed("client went away mid-stream".to_string()))
            };
        }
        batches += 1;
        ctx.record_samples(chunk.len() as u64);
    }
    let done = Response::GangedDone(GangedDone {
        total_samples: capture.values.len() as u32,
        batches,
        f_in_hz: capture.f_in_hz,
        epochs_run: capture.epochs_run,
        converged: capture.converged,
        stream_crc32: value_stream_crc(&capture.values),
    });
    if !sink.send(ctx, done) {
        return Err(JobError::Failed("client went away at done".to_string()));
    }
    ctx.record_requests(1);
    Ok(capture.values.len() as u64)
}

/// Runs a coalesced group of identical tone requests as lanes of one
/// [`LaneBench`] pass and streams each client its own record. Per-lane
/// output is bit-identical to the scalar [`run_digitize`] path at the
/// same seed (the lane-equivalence property `adc-testbench` tests), so
/// coalescing is invisible to clients.
fn lane_job(
    cfg: &ServerConfig,
    ctx: &JobCtx,
    lanes: &[(ConnSink, DigitizeRequest)],
) -> Result<u64, JobError> {
    let Some((_, first)) = lanes.first() else {
        return Err(JobError::Failed("empty coalesced batch".to_string()));
    };
    let WaveformSpec::Tone { f_target_hz } = first.waveform else {
        return Err(JobError::Failed(
            "coalesced batch must be tone requests".to_string(),
        ));
    };
    let _trace_task = adc_trace::task(first.seed);
    let _trace_request = adc_trace::span_with("coalesced", lanes.len() as u64);
    let fail_all = |code: ErrorCode, detail: &str| {
        for (sink, _) in lanes {
            let _ = sink.send_now(Response::Error {
                code,
                detail: detail.to_string(),
            });
        }
    };
    if ctx.timed_out() || ctx.cancelled() {
        fail_all(
            ErrorCode::TimedOut,
            "deadline expired before simulation started",
        );
        return Err(JobError::TimedOut);
    }
    let seeds: Vec<u64> = lanes.iter().map(|(_, req)| req.seed).collect();
    let config = digitize_config(first);
    let mut bench = match LaneBench::new(config, &seeds) {
        Ok(bench) => bench,
        Err(build) => {
            let detail = build.to_string();
            fail_all(error_code_for_build(&build), &detail);
            return Err(JobError::Failed(detail));
        }
    };
    bench.record_len = first.n_samples as usize;
    if let Some(a) = first.overrides.amplitude_v {
        bench.amplitude_v = a;
    }
    let mut outs: Vec<Vec<u16>> = vec![Vec::new(); lanes.len()];
    let f_in_hz = {
        let _trace_lanes = adc_trace::span("digitize_lanes");
        bench.capture_tone_into(f_target_hz, &mut outs)
    };
    let batch = if first.batch_size == 0 {
        cfg.default_batch.max(1) as usize
    } else {
        first.batch_size as usize
    };
    let _trace_stream = adc_trace::span("stream");
    let mut served = 0u64;
    let mut streamed = 0u64;
    for ((sink, _), codes) in lanes.iter().zip(&outs) {
        let mut delivered = true;
        let mut batches = 0u32;
        for (seq, chunk) in codes.chunks(batch).enumerate() {
            let sent = sink.send(
                ctx,
                Response::Batch {
                    seq: seq as u32,
                    samples: chunk.to_vec(),
                },
            );
            if !sent {
                let _ = sink.send_now(Response::Error {
                    code: ErrorCode::TimedOut,
                    detail: format!("deadline expired after {batches} batches"),
                });
                delivered = false;
                break;
            }
            batches += 1;
            ctx.record_samples(chunk.len() as u64);
        }
        if !delivered {
            continue;
        }
        let done = Response::Done(DigitizeDone {
            total_samples: codes.len() as u32,
            batches,
            f_in_hz,
            stream_crc32: stream_crc(codes),
        });
        if sink.send(ctx, done) {
            served += 1;
            streamed += codes.len() as u64;
        }
    }
    ctx.record_requests(served);
    if served == 0 {
        return Err(JobError::Failed(
            "every coalesced client went away mid-stream".to_string(),
        ));
    }
    Ok(streamed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, ConfigOverrides, Preset};
    use adc_runtime::{JobCtx, JobId};

    fn tone(seed: u64) -> Work {
        Work::Digitize {
            corr: 1,
            req: DigitizeRequest::tone(seed, 10e6, 2048),
        }
    }

    #[test]
    fn lane_key_groups_identical_tones_and_splits_everything_else() {
        let a = lane_key(&tone(1)).unwrap();
        let b = lane_key(&tone(2)).unwrap();
        assert_eq!(a, b, "seed must not split a group");

        let mut other = DigitizeRequest::tone(3, 10e6, 2048);
        other.preset = Preset::Ideal;
        let c = lane_key(&Work::Digitize {
            corr: 1,
            req: other,
        })
        .unwrap();
        assert_ne!(a, c, "preset splits the group");

        let mut amp = DigitizeRequest::tone(4, 10e6, 2048);
        amp.overrides = ConfigOverrides {
            amplitude_v: Some(0.5),
            ..ConfigOverrides::default()
        };
        let d = lane_key(&Work::Digitize { corr: 1, req: amp }).unwrap();
        assert_ne!(a, d, "amplitude override splits the group");

        let mut deadlined = DigitizeRequest::tone(5, 10e6, 2048);
        deadlined.deadline_ms = 100;
        assert!(
            lane_key(&Work::Digitize {
                corr: 1,
                req: deadlined
            })
            .is_none(),
            "deadlines opt out of coalescing"
        );

        let dc = DigitizeRequest {
            waveform: WaveformSpec::Dc { level_v: 0.1 },
            ..DigitizeRequest::tone(6, 10e6, 2048)
        };
        assert!(
            lane_key(&Work::Digitize { corr: 1, req: dc }).is_none(),
            "only tones coalesce"
        );

        let ganged = Work::Ganged {
            corr: 1,
            req: GangedRequest::tone(7, 2, 10e6, 2048),
        };
        assert!(lane_key(&ganged).is_none(), "ganged never coalesces");
    }

    #[test]
    fn conn_out_delivers_in_order_and_closes_cleanly() {
        let (waker, _rx) = waker_pair().unwrap();
        let out = ConnOut::new(4, waker);
        assert!(out.push_now(vec![1]));
        assert!(out.push_now(vec![2]));
        assert_eq!(out.pop(), Some(vec![1]));
        assert_eq!(out.pop(), Some(vec![2]));
        assert_eq!(out.pop(), None);
        out.close();
        assert!(!out.push_now(vec![3]), "closed queues reject frames");
        assert!(out.is_empty());
    }

    #[test]
    fn push_wait_applies_backpressure_until_a_pop_frees_space() {
        let (waker, _rx) = waker_pair().unwrap();
        let out = ConnOut::new(1, waker);
        assert!(out.push_now(vec![0])); // fill the single slot
        let ctx = JobCtx::standalone(7, JobId(0));
        let pusher = {
            let out = Arc::clone(&out);
            std::thread::spawn(move || out.push_wait(&ctx, vec![9]))
        };
        // The pusher is blocked on the bound; free a slot and it lands.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(out.pop(), Some(vec![0]));
        assert!(pusher.join().unwrap());
        assert_eq!(out.pop(), Some(vec![9]));
    }

    #[test]
    fn push_wait_gives_up_when_the_deadline_fires() {
        let (waker, _rx) = waker_pair().unwrap();
        let out = ConnOut::new(1, waker);
        assert!(out.push_now(vec![0])); // fill the single slot, never pop
        let pool = adc_runtime::JobPool::new("reactor-test", 7, 1);
        let blocked = Arc::clone(&out);
        let handle = pool.submit(Some(Duration::ZERO), move |ctx| {
            std::thread::sleep(Duration::from_millis(2));
            if blocked.push_wait(ctx, vec![1]) {
                Ok(1u64)
            } else {
                Err(JobError::TimedOut)
            }
        });
        let (value, report) = handle.wait();
        assert!(value.is_none());
        assert_eq!(report.error, Some(JobError::TimedOut));
        pool.shutdown();
    }

    #[test]
    fn ingest_decodes_pipelined_frames_across_arbitrary_chunk_cuts() {
        let frames: Vec<u8> = [
            encode_request(&Request::Ping { token: 7 }),
            encode_request(&Request::Metrics),
            encode_request(&Request::Ping { token: 9 }),
        ]
        .concat();
        for cut in 1..frames.len() {
            let mut assembler = FrameAssembler::new();
            let mut decoded = Vec::new();
            for chunk in frames.chunks(cut) {
                decoded.extend(ingest(&mut assembler, chunk, 1 << 20).unwrap());
            }
            assert_eq!(decoded.len(), 3, "chunk size {cut}");
            assert_eq!(decoded[0], Request::Ping { token: 7 });
            assert_eq!(decoded[2], Request::Ping { token: 9 });
        }
    }

    #[test]
    fn waker_pair_wakes_and_drains() {
        let (waker, rx) = waker_pair().unwrap();
        waker.wake();
        waker.wake();
        #[cfg(unix)]
        {
            let mut buf = [0u8; 8];
            let n = (&rx).read(&mut buf).unwrap();
            assert!(n >= 1);
        }
        #[cfg(not(unix))]
        let _ = rx;
    }
}
