//! The TCP service: configuration, lifecycle, and the served
//! computations (the reactor in [`crate::reactor`] owns the sockets).
//!
//! ## Threading model
//!
//! * One **reactor thread** ([`Server::serve`]) owns the listener and
//!   every connection socket, multiplexed over `poll(2)`: it decodes
//!   frames incrementally, serves `Ping`/`Metrics`/cache traffic
//!   inline, and admits digitization into bounded per-connection
//!   queues.
//! * Simulation runs on the [`JobPool`] — the runtime's long-lived
//!   work pool — so server-side conversions use exactly the same
//!   session code path as an in-process `adc-testbench` run, and
//!   results are bit-identical for the same config and seed. Workers
//!   stream response frames into a *bounded* per-connection queue the
//!   reactor flushes; the bound is the backpressure mechanism.
//! * Requests pipelined under nonzero correlation ids run concurrently
//!   (up to the admission caps) and complete out of order; identical
//!   tone requests arriving together coalesce into one lane-parallel
//!   pass.
//!
//! ## Deadlines
//!
//! A request's `deadline_ms` becomes the job's cooperative timeout
//! ([`adc_runtime::JobCtx::timed_out`]), counted from dispatch onto
//! the pool. The
//! worker polls it before fabricating the die, before converting, and
//! between streamed batches — including while blocked on a full write
//! queue — and reports [`ErrorCode::TimedOut`] when it fires. The
//! conversion of one record is the indivisible unit (the converter's
//! warmup semantics make a record a single pure computation), so
//! deadlines resolve to batch granularity, exactly like the campaign
//! engine's per-die polling.
//!
//! ## Shutdown
//!
//! A `Shutdown` frame (or [`ServerHandle::shutdown`]) begins a drain:
//! the reactor stops accepting and reading, runs admitted work to
//! completion, flushes every connection, and [`Server::serve`]
//! returns. A deadlocked drain is impossible: the reactor re-checks
//! the draining flag every poll tick and every dispatched request is
//! guaranteed a completion event.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use adc_pipeline::config::AdcConfig;
use adc_pipeline::error::BuildAdcError;
use adc_runtime::{JobError, JobPool, RunObserver};
use adc_testbench::{MeasurementSession, RampSource};

use adc_calib::{Alignment, GangedCapture, GangedError, GangedScenario};
use adc_pipeline::interleave::InterleaveMismatch;

use crate::jobs::{CampaignCaches, JobRunner};
use crate::metrics::MetricsRegistry;
use crate::protocol::{
    self, error_code_for_build, DigitizeRequest, ErrorCode, GangedCal, GangedRequest,
    JobBatchRequest, JobOutcome, JobResultBatch, JobStatus, Preset, WaveformSpec,
};
use crate::reactor::{self, Event, Waker};

/// Foreground alignment averaging the server uses for
/// [`GangedCal::Foreground`] — fixed so a ganged request fully
/// determines the served record.
pub const GANGED_FOREGROUND_AVERAGES: u32 = 64;
/// Background-calibration epoch budget for [`GangedCal::Background`].
pub const GANGED_BACKGROUND_EPOCHS: u32 = 12;
/// Samples converted per background-calibration epoch.
pub const GANGED_BACKGROUND_EPOCH_LEN: u32 = 2048;

/// Tunables for one server instance.
#[derive(Clone)]
pub struct ServerConfig {
    /// Digitize worker threads (`0` = all hardware parallelism).
    pub threads: usize,
    /// Seed anchoring the pool's derived per-job seeds (requests carry
    /// their own fabrication seeds; this only names the pool stream).
    pub seed: u64,
    /// Bounded frames per connection write queue (the backpressure
    /// window).
    pub write_queue_frames: usize,
    /// Maximum accepted request payload, bytes.
    pub max_payload: u32,
    /// Maximum samples per digitize request.
    pub max_samples: u32,
    /// Batch size used when a request passes `batch_size == 0`.
    pub default_batch: u32,
    /// Reactor poll tick — the latency bound on drain checks when no
    /// socket or completion event wakes the loop sooner.
    pub read_poll: Duration,
    /// Global cap on digitizations in flight on the pool at once.
    pub max_inflight: usize,
    /// Per-connection cap on digitizations in flight at once.
    pub max_inflight_per_conn: usize,
    /// Per-connection admission-queue depth; requests beyond it are
    /// shed with [`ErrorCode::Overloaded`].
    pub max_pending_per_conn: usize,
    /// Most identical tone requests coalesced into one lane-parallel
    /// job.
    pub max_coalesce_lanes: usize,
    /// The host's campaign-job capability; `None` (the default) answers
    /// `JobBatch` requests with [`ErrorCode::Unsupported`].
    pub job_runner: Option<Arc<dyn JobRunner>>,
    /// Directory for per-campaign warm-cache files; `None` keeps the
    /// warm caches memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .field("write_queue_frames", &self.write_queue_frames)
            .field("max_payload", &self.max_payload)
            .field("max_samples", &self.max_samples)
            .field("default_batch", &self.default_batch)
            .field("read_poll", &self.read_poll)
            .field("max_inflight", &self.max_inflight)
            .field("max_inflight_per_conn", &self.max_inflight_per_conn)
            .field("max_pending_per_conn", &self.max_pending_per_conn)
            .field("max_coalesce_lanes", &self.max_coalesce_lanes)
            .field("job_runner", &self.job_runner.as_ref().map(|_| "<runner>"))
            .field("cache_dir", &self.cache_dir)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 0x5EC7_0A0D,
            write_queue_frames: 32,
            max_payload: 1 << 20,
            max_samples: 1 << 20,
            default_batch: 1024,
            read_poll: Duration::from_millis(50),
            max_inflight: 64,
            max_inflight_per_conn: 16,
            max_pending_per_conn: 256,
            max_coalesce_lanes: 8,
            job_runner: None,
            cache_dir: None,
        }
    }
}

/// State shared between the reactor thread, pool workers, and handles.
pub(crate) struct Shared {
    pub(crate) pool: JobPool,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) draining: AtomicBool,
    pub(crate) cfg: ServerConfig,
    pub(crate) caches: CampaignCaches,
    /// Interrupts the reactor's `poll` when a worker finishes or a
    /// handle requests shutdown.
    pub(crate) waker: Waker,
    /// Completion notices workers post before waking the reactor.
    pub(crate) events: Mutex<Vec<Event>>,
}

/// A bound, not-yet-serving server. [`Server::serve`] runs it to
/// completion (drain).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    waker_rx: reactor::WakerRx,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// `true` once a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Begins graceful drain-then-shutdown: stops accepting, lets
    /// in-flight work finish, and makes [`Server::serve`] return.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Kick the reactor out of `poll` so it observes the flag.
        self.shared.waker.wake();
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// given tunables.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(MetricsRegistry::new());
        let observers: Vec<Arc<dyn RunObserver>> = vec![Arc::clone(&metrics) as _];
        let pool = JobPool::with_observers("adc-server", cfg.seed, cfg.threads, observers);
        let caches = CampaignCaches::new(cfg.cache_dir.clone());
        let (waker, waker_rx) = reactor::waker_pair()?;
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(Shared {
                pool,
                metrics,
                draining: AtomicBool::new(false),
                cfg,
                caches,
                waker,
                events: Mutex::new(Vec::new()),
            }),
            waker_rx,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutdown and metrics access.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the reactor until drained. Returns after every connection
    /// has closed and every admitted job has completed.
    ///
    /// # Errors
    ///
    /// Propagates reactor-loop I/O failures (per-connection errors are
    /// contained per connection).
    pub fn serve(self) -> std::io::Result<()> {
        let result = reactor::run(self.listener, self.waker_rx, Arc::clone(&self.shared));
        self.shared.pool.shutdown();
        result
    }

    /// Convenience for tests and embedding: binds, then serves on a
    /// background thread. Returns the handle and the serving thread's
    /// join handle.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Self::bind(addr, cfg)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok((handle, join))
    }
}

/// The exact `AdcConfig` a preset maps to — public (like
/// [`ganged_scenario`]) so clients, tests, and cluster job runners can
/// rebuild the served computation and assert bit-identity.
pub fn preset_config(preset: Preset) -> AdcConfig {
    match preset {
        Preset::Nominal110 => AdcConfig::nominal_110ms(),
        Preset::Ideal => AdcConfig::ideal(110e6),
        Preset::Sibling220 => AdcConfig::sibling_220ms_10b(),
    }
}

/// The `AdcConfig` a digitize request resolves to: its preset with the
/// clock-rate and noise overrides applied (amplitude applies at the
/// session, not the config).
pub(crate) fn digitize_config(req: &DigitizeRequest) -> AdcConfig {
    let mut config = preset_config(req.preset);
    if let Some(f_cr) = req.overrides.f_cr_hz {
        config.f_cr_hz = f_cr;
    }
    if let Some(noise) = req.overrides.thermal_noise {
        config.thermal_noise = noise;
    }
    config
}

/// Builds the requested session and converts the record — the exact
/// code path (and therefore the exact bits) of a direct
/// `adc-testbench` run with the same config and seed.
pub(crate) fn run_digitize(req: &DigitizeRequest) -> Result<(Vec<u16>, f64), BuildAdcError> {
    let mut session = MeasurementSession::new(digitize_config(req), req.seed)?;
    if let Some(a) = req.overrides.amplitude_v {
        session.amplitude_v = a;
    }
    let n = req.n_samples as usize;
    // One exactly-sized allocation per request; the conversion itself
    // runs through the allocation-free `_into` paths.
    let mut codes = Vec::with_capacity(n);
    match req.waveform {
        WaveformSpec::Tone { f_target_hz } => {
            session.record_len = n;
            let f_in = session.capture_tone_into(f_target_hz, &mut codes);
            Ok((codes, f_in))
        }
        WaveformSpec::Dc { level_v } => {
            let source = adc_testbench::DcSource { level_v };
            session.adc_mut().reset();
            session
                .adc_mut()
                .convert_waveform_into(&source, n, &mut codes);
            Ok((codes, 0.0))
        }
        WaveformSpec::Ramp { from_v, to_v } => {
            let f_cr = session.adc().config().f_cr_hz;
            let duration_s = n as f64 / f_cr;
            let source = RampSource::new(from_v, to_v, duration_s);
            session.adc_mut().reset();
            session
                .adc_mut()
                .convert_waveform_into(&source, n, &mut codes);
            Ok((codes, 0.0))
        }
    }
}

/// The in-process scenario a ganged request maps onto — public so
/// clients and tests can rebuild the *exact* served computation and
/// assert bit-identity.
pub fn ganged_scenario(req: &GangedRequest) -> GangedScenario {
    GangedScenario {
        config: preset_config(req.preset),
        channels: u32::from(req.channels),
        seed: req.seed,
        mismatch: if req.mismatch {
            InterleaveMismatch::typical()
        } else {
            InterleaveMismatch::none()
        },
        f_target_hz: req.f_target_hz,
        n_samples: req.n_samples,
        alignment: match req.cal {
            GangedCal::Raw => Alignment::Raw,
            GangedCal::Foreground => Alignment::Foreground {
                averages: GANGED_FOREGROUND_AVERAGES,
            },
            GangedCal::Background => Alignment::Background {
                epochs: GANGED_BACKGROUND_EPOCHS,
                epoch_len: GANGED_BACKGROUND_EPOCH_LEN,
            },
        },
    }
}

pub(crate) fn run_ganged(req: &GangedRequest) -> Result<GangedCapture, GangedError> {
    ganged_scenario(req).capture_tone()
}

pub(crate) fn error_code_for_ganged(err: &GangedError) -> ErrorCode {
    match err {
        GangedError::Build(build) => error_code_for_build(build),
        GangedError::InvalidScenario(_) => ErrorCode::InvalidRequest,
        GangedError::Calib(_) => ErrorCode::Internal,
    }
}

/// Request-level validation for ganged requests, mirroring [`validate`].
pub(crate) fn validate_ganged(req: &GangedRequest, cfg: &ServerConfig) -> Result<(), String> {
    if req.n_samples == 0 {
        return Err("n_samples must be positive".to_string());
    }
    if req.n_samples > cfg.max_samples {
        return Err(format!(
            "n_samples {} exceeds server limit {}",
            req.n_samples, cfg.max_samples
        ));
    }
    if !req.n_samples.is_power_of_two() {
        return Err(format!(
            "ganged captures need a power-of-two record, got {}",
            req.n_samples
        ));
    }
    if !req.f_target_hz.is_finite() || req.f_target_hz <= 0.0 {
        return Err(format!(
            "tone frequency must be positive, got {}",
            req.f_target_hz
        ));
    }
    Ok(())
}

/// Request-level validation, before any simulation work is queued.
pub(crate) fn validate(req: &DigitizeRequest, cfg: &ServerConfig) -> Result<(), String> {
    if req.n_samples == 0 {
        return Err("n_samples must be positive".to_string());
    }
    if req.n_samples > cfg.max_samples {
        return Err(format!(
            "n_samples {} exceeds server limit {}",
            req.n_samples, cfg.max_samples
        ));
    }
    if matches!(req.waveform, WaveformSpec::Tone { .. }) && !req.n_samples.is_power_of_two() {
        return Err(format!(
            "tone captures need a power-of-two record, got {}",
            req.n_samples
        ));
    }
    if let WaveformSpec::Tone { f_target_hz } = req.waveform {
        if !f_target_hz.is_finite() || f_target_hz <= 0.0 {
            return Err(format!(
                "tone frequency must be positive, got {f_target_hz}"
            ));
        }
    }
    for (name, v) in [
        ("f_cr_hz override", req.overrides.f_cr_hz),
        ("amplitude_v override", req.overrides.amplitude_v),
    ] {
        if let Some(v) = v {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
        }
    }
    Ok(())
}

/// CRC-32 over the little-endian byte stream of a code record.
pub(crate) fn stream_crc(codes: &[u16]) -> u32 {
    let mut bytes = Vec::with_capacity(codes.len() * 2);
    for &c in codes {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    protocol::crc32(&bytes)
}

/// CRC-32 over the little-endian IEEE-754 byte stream of a value
/// record (ganged streams carry `f64`s).
pub(crate) fn value_stream_crc(values: &[f64]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for &v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    protocol::crc32(&bytes)
}

/// Executes one job batch: warm-cache check first, then misses onto the
/// pool, one outcome per job in submission order.
///
/// Every job concludes with a typed [`JobStatus`]: `Cached` hits skip
/// the pool entirely; `Computed` results fill the warm cache before the
/// response leaves; pool-level losses (draining, deadline, panic) come
/// back `Rejected` so the client resubmits them — possibly elsewhere —
/// while runner-level errors come back `Failed` (deterministic: a
/// resubmission would fail identically).
pub(crate) fn run_job_batch(
    req: &JobBatchRequest,
    runner: &Arc<dyn JobRunner>,
    shared: &Arc<Shared>,
) -> JobResultBatch {
    let cache = shared.caches.for_campaign(&req.campaign);
    let deadline = (req.deadline_ms > 0).then(|| Duration::from_millis(u64::from(req.deadline_ms)));
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(req.jobs.len());
    let mut pending = Vec::new();
    for job in &req.jobs {
        if let Some(line) = cache.get_line(job.key) {
            shared.metrics.cluster_cache_hit();
            outcomes.push(JobOutcome {
                id: job.id,
                key: job.key,
                status: JobStatus::Cached,
                value: line,
            });
            continue;
        }
        let runner = Arc::clone(runner);
        let kind = req.kind.clone();
        let config = job.config.clone();
        let (id, key, seed) = (job.id, job.key, job.seed);
        let handle = shared.pool.submit(deadline, move |ctx| {
            // Scope span ids to the campaign-derived job seed, not the
            // pool's stream: whichever host runs this job emits the
            // same span identity, so traces stitch across the fleet.
            let _trace_task = adc_trace::task(seed);
            let _trace_span = adc_trace::span_with("cluster-job", id);
            if ctx.timed_out() {
                return Err(JobError::TimedOut);
            }
            runner
                .run(&kind, &config, seed)
                .map_err(|e| JobError::Failed(e.to_string()))
        });
        // Record the slot; the outcome is patched in below.
        outcomes.push(JobOutcome {
            id,
            key,
            status: JobStatus::Rejected,
            value: String::new(),
        });
        pending.push((outcomes.len() - 1, handle));
    }
    for (slot, handle) in pending {
        let (value, report) = handle.wait();
        let (status, value) = match value {
            Some(line) => {
                cache.put_line(outcomes[slot].key, &line);
                (JobStatus::Computed, line)
            }
            None => match report.error {
                // Runner errors (`JobRunError::Display` strings) are
                // deterministic → Failed; everything the *pool* can do
                // to a job (drain, deadline, worker panic) is
                // scheduling, not computation → Rejected.
                Some(JobError::Failed(detail)) if detail != "pool is draining" => {
                    (JobStatus::Failed, detail)
                }
                Some(JobError::Failed(detail)) => (JobStatus::Rejected, detail),
                Some(JobError::TimedOut) => (JobStatus::Rejected, "deadline expired".to_string()),
                Some(JobError::Panicked(msg)) => {
                    (JobStatus::Rejected, format!("worker panicked: {msg}"))
                }
                None => (JobStatus::Rejected, "job lost".to_string()),
            },
        };
        outcomes[slot].status = status;
        outcomes[slot].value = value;
    }
    // Mirror computed results to the campaign file so a restarted host
    // comes back warm. Cache I/O failures must not fail the batch.
    let _ = cache.persist(&req.campaign);
    JobResultBatch {
        batch_id: req.batch_id,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ConfigOverrides;

    #[test]
    fn validation_rejects_out_of_bounds_requests() {
        let cfg = ServerConfig::default();
        let mut req = DigitizeRequest::tone(7, 10e6, 0);
        assert!(validate(&req, &cfg).is_err(), "zero samples");
        req.n_samples = cfg.max_samples + 1;
        assert!(validate(&req, &cfg).is_err(), "too many samples");
        req.n_samples = 1000;
        assert!(validate(&req, &cfg).is_err(), "tone needs power of two");
        req.n_samples = 1024;
        assert!(validate(&req, &cfg).is_ok());
        req.overrides = ConfigOverrides {
            f_cr_hz: Some(f64::NAN),
            ..ConfigOverrides::default()
        };
        assert!(validate(&req, &cfg).is_err(), "NaN override");
        let dc = DigitizeRequest {
            waveform: WaveformSpec::Dc { level_v: 0.25 },
            n_samples: 1000,
            ..DigitizeRequest::tone(7, 10e6, 1000)
        };
        assert!(
            validate(&dc, &cfg).is_ok(),
            "dc records need no power of two"
        );
    }

    #[test]
    fn run_digitize_matches_direct_session_bit_for_bit() {
        let req = DigitizeRequest::tone(7, 10e6, 2048);
        let (served, f_in_served) = run_digitize(&req).unwrap();

        let mut direct = MeasurementSession::new(AdcConfig::nominal_110ms(), 7).unwrap();
        direct.record_len = 2048;
        let (expected, f_in_direct) = direct.capture_tone(10e6);

        assert_eq!(served, expected);
        assert_eq!(f_in_served.to_bits(), f_in_direct.to_bits());
    }

    #[test]
    fn run_digitize_propagates_build_errors() {
        let req = DigitizeRequest {
            overrides: ConfigOverrides {
                f_cr_hz: Some(-1.0),
                ..ConfigOverrides::default()
            },
            ..DigitizeRequest::tone(7, 10e6, 1024)
        };
        let err = run_digitize(&req).unwrap_err();
        assert_eq!(error_code_for_build(&err), ErrorCode::InvalidRate);
    }

    #[test]
    fn stream_crc_is_stable_and_order_sensitive() {
        let a = stream_crc(&[1, 2, 3]);
        assert_eq!(a, stream_crc(&[1, 2, 3]));
        assert_ne!(a, stream_crc(&[3, 2, 1]));
        assert_ne!(a, stream_crc(&[1, 2]));
    }
}
