//! The TCP service: accept loop, per-connection framing, job dispatch,
//! backpressure, deadlines, and graceful drain.
//!
//! ## Threading model
//!
//! * One **accept loop** ([`Server::serve`]) owns the listener.
//! * Each connection gets a **reader thread** (decodes frames, serves
//!   `Ping`/`Metrics` inline, dispatches `Digitize` onto the shared
//!   [`JobPool`]) and a **writer thread** draining a *bounded* frame
//!   queue to the socket. The queue bound is the backpressure
//!   mechanism: a digitize worker streaming batches to a slow client
//!   blocks on the full queue (while still polling its deadline)
//!   instead of buffering unboundedly.
//! * `Digitize` simulation runs on the [`JobPool`] — the runtime's
//!   long-lived work pool — so server-side conversions use exactly the
//!   same session code path as an in-process `adc-testbench` run, and
//!   results are bit-identical for the same config and seed.
//!
//! ## Deadlines
//!
//! A request's `deadline_ms` becomes the job's cooperative timeout
//! ([`JobCtx::timed_out`]). The worker polls it before fabricating the
//! die, before converting, and between streamed batches — including
//! while blocked on a full write queue — and reports
//! [`ErrorCode::TimedOut`] when it fires. The conversion of one record
//! is the indivisible unit (the converter's warmup semantics make a
//! record a single pure computation), so deadlines resolve to batch
//! granularity, exactly like the campaign engine's per-die polling.
//!
//! ## Shutdown
//!
//! A `Shutdown` frame (or [`ServerHandle::shutdown`]) begins a drain:
//! the acceptor stops taking connections, connection readers finish
//! their in-flight request and close, the pool runs queued jobs to
//! completion, and [`Server::serve`] returns. A deadlocked drain is
//! impossible through the protocol: readers poll the draining flag on
//! a read-timeout tick.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use adc_pipeline::config::AdcConfig;
use adc_pipeline::error::BuildAdcError;
use adc_runtime::{JobCtx, JobError, JobPool, RunObserver};
use adc_testbench::{MeasurementSession, RampSource};

use adc_calib::{Alignment, GangedCapture, GangedError, GangedScenario};
use adc_pipeline::interleave::InterleaveMismatch;

use crate::jobs::{CampaignCaches, JobRunner};
use crate::metrics::MetricsRegistry;
use crate::protocol::{
    self, encode_response, error_code_for_build, DigitizeDone, DigitizeRequest, ErrorCode,
    FrameReadError, GangedCal, GangedDone, GangedRequest, JobBatchRequest, JobOutcome,
    JobResultBatch, JobStatus, Preset, Request, Response, WaveformSpec,
};

/// Foreground alignment averaging the server uses for
/// [`GangedCal::Foreground`] — fixed so a ganged request fully
/// determines the served record.
pub const GANGED_FOREGROUND_AVERAGES: u32 = 64;
/// Background-calibration epoch budget for [`GangedCal::Background`].
pub const GANGED_BACKGROUND_EPOCHS: u32 = 12;
/// Samples converted per background-calibration epoch.
pub const GANGED_BACKGROUND_EPOCH_LEN: u32 = 2048;

/// Tunables for one server instance.
#[derive(Clone)]
pub struct ServerConfig {
    /// Digitize worker threads (`0` = all hardware parallelism).
    pub threads: usize,
    /// Seed anchoring the pool's derived per-job seeds (requests carry
    /// their own fabrication seeds; this only names the pool stream).
    pub seed: u64,
    /// Bounded frames per connection write queue (the backpressure
    /// window).
    pub write_queue_frames: usize,
    /// Maximum accepted request payload, bytes.
    pub max_payload: u32,
    /// Maximum samples per digitize request.
    pub max_samples: u32,
    /// Batch size used when a request passes `batch_size == 0`.
    pub default_batch: u32,
    /// Reader poll tick — how often an idle connection re-checks the
    /// draining flag.
    pub read_poll: Duration,
    /// The host's campaign-job capability; `None` (the default) answers
    /// `JobBatch` requests with [`ErrorCode::Unsupported`].
    pub job_runner: Option<Arc<dyn JobRunner>>,
    /// Directory for per-campaign warm-cache files; `None` keeps the
    /// warm caches memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .field("write_queue_frames", &self.write_queue_frames)
            .field("max_payload", &self.max_payload)
            .field("max_samples", &self.max_samples)
            .field("default_batch", &self.default_batch)
            .field("read_poll", &self.read_poll)
            .field("job_runner", &self.job_runner.as_ref().map(|_| "<runner>"))
            .field("cache_dir", &self.cache_dir)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 0x5EC7_0A0D,
            write_queue_frames: 8,
            max_payload: 1 << 20,
            max_samples: 1 << 20,
            default_batch: 1024,
            read_poll: Duration::from_millis(50),
            job_runner: None,
            cache_dir: None,
        }
    }
}

struct Shared {
    pool: JobPool,
    metrics: Arc<MetricsRegistry>,
    draining: AtomicBool,
    cfg: ServerConfig,
    caches: CampaignCaches,
}

/// A bound, not-yet-serving server. [`Server::serve`] runs it to
/// completion (drain).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// `true` once a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Begins graceful drain-then-shutdown: stops accepting, lets
    /// in-flight work finish, and makes [`Server::serve`] return.
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// given tunables.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(MetricsRegistry::new());
        let observers: Vec<Arc<dyn RunObserver>> = vec![Arc::clone(&metrics) as _];
        let pool = JobPool::with_observers("adc-server", cfg.seed, cfg.threads, observers);
        let caches = CampaignCaches::new(cfg.cache_dir.clone());
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(Shared {
                pool,
                metrics,
                draining: AtomicBool::new(false),
                cfg,
                caches,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutdown and metrics access.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until drained. Returns after every
    /// connection has closed and every accepted job has completed.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors are
    /// contained in their connection threads).
    pub fn serve(self) -> std::io::Result<()> {
        let mut connections = Vec::new();
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.draining.load(Ordering::SeqCst) {
                break; // the shutdown wake-up connection
            }
            self.shared.metrics.connection_opened();
            let shared = Arc::clone(&self.shared);
            connections.push(std::thread::spawn(move || {
                let _ = serve_connection(stream, &shared);
            }));
        }
        for conn in connections {
            let _ = conn.join();
        }
        self.shared.pool.shutdown();
        Ok(())
    }

    /// Convenience for tests and embedding: binds, then serves on a
    /// background thread. Returns the handle and the serving thread's
    /// join handle.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Self::bind(addr, cfg)?;
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        Ok((handle, join))
    }
}

/// The writer side of one connection: a bounded queue of encoded frames
/// drained by a dedicated thread. Dropping all senders closes the
/// socket writer.
fn spawn_writer(
    mut stream: TcpStream,
    queue_frames: usize,
) -> (mpsc::SyncSender<Vec<u8>>, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(queue_frames.max(1));
    let join = std::thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if stream.write_all(&frame).is_err() {
                break;
            }
        }
        let _ = stream.flush();
    });
    (tx, join)
}

/// Sends a frame through the bounded queue, polling the job deadline
/// while the queue is full so backpressure cannot outlive a deadline.
/// Returns `false` if the deadline fired or the writer is gone.
fn send_with_deadline(tx: &mpsc::SyncSender<Vec<u8>>, ctx: &JobCtx, frame: Vec<u8>) -> bool {
    let mut frame = frame;
    loop {
        match tx.try_send(frame) {
            Ok(()) => return true,
            Err(mpsc::TrySendError::Full(f)) => {
                if ctx.timed_out() || ctx.cancelled() {
                    return false;
                }
                frame = f;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// The exact `AdcConfig` a preset maps to — public (like
/// [`ganged_scenario`]) so clients, tests, and cluster job runners can
/// rebuild the served computation and assert bit-identity.
pub fn preset_config(preset: Preset) -> AdcConfig {
    match preset {
        Preset::Nominal110 => AdcConfig::nominal_110ms(),
        Preset::Ideal => AdcConfig::ideal(110e6),
        Preset::Sibling220 => AdcConfig::sibling_220ms_10b(),
    }
}

/// Builds the requested session and converts the record — the exact
/// code path (and therefore the exact bits) of a direct
/// `adc-testbench` run with the same config and seed.
fn run_digitize(req: &DigitizeRequest) -> Result<(Vec<u16>, f64), BuildAdcError> {
    let mut config = preset_config(req.preset);
    if let Some(f_cr) = req.overrides.f_cr_hz {
        config.f_cr_hz = f_cr;
    }
    if let Some(noise) = req.overrides.thermal_noise {
        config.thermal_noise = noise;
    }
    let mut session = MeasurementSession::new(config, req.seed)?;
    if let Some(a) = req.overrides.amplitude_v {
        session.amplitude_v = a;
    }
    let n = req.n_samples as usize;
    // One exactly-sized allocation per request; the conversion itself
    // runs through the allocation-free `_into` paths.
    let mut codes = Vec::with_capacity(n);
    match req.waveform {
        WaveformSpec::Tone { f_target_hz } => {
            session.record_len = n;
            let f_in = session.capture_tone_into(f_target_hz, &mut codes);
            Ok((codes, f_in))
        }
        WaveformSpec::Dc { level_v } => {
            let source = adc_testbench::DcSource { level_v };
            session.adc_mut().reset();
            session
                .adc_mut()
                .convert_waveform_into(&source, n, &mut codes);
            Ok((codes, 0.0))
        }
        WaveformSpec::Ramp { from_v, to_v } => {
            let f_cr = session.adc().config().f_cr_hz;
            let duration_s = n as f64 / f_cr;
            let source = RampSource::new(from_v, to_v, duration_s);
            session.adc_mut().reset();
            session
                .adc_mut()
                .convert_waveform_into(&source, n, &mut codes);
            Ok((codes, 0.0))
        }
    }
}

/// The in-process scenario a ganged request maps onto — public so
/// clients and tests can rebuild the *exact* served computation and
/// assert bit-identity.
pub fn ganged_scenario(req: &GangedRequest) -> GangedScenario {
    GangedScenario {
        config: preset_config(req.preset),
        channels: u32::from(req.channels),
        seed: req.seed,
        mismatch: if req.mismatch {
            InterleaveMismatch::typical()
        } else {
            InterleaveMismatch::none()
        },
        f_target_hz: req.f_target_hz,
        n_samples: req.n_samples,
        alignment: match req.cal {
            GangedCal::Raw => Alignment::Raw,
            GangedCal::Foreground => Alignment::Foreground {
                averages: GANGED_FOREGROUND_AVERAGES,
            },
            GangedCal::Background => Alignment::Background {
                epochs: GANGED_BACKGROUND_EPOCHS,
                epoch_len: GANGED_BACKGROUND_EPOCH_LEN,
            },
        },
    }
}

fn run_ganged(req: &GangedRequest) -> Result<GangedCapture, GangedError> {
    ganged_scenario(req).capture_tone()
}

fn error_code_for_ganged(err: &GangedError) -> ErrorCode {
    match err {
        GangedError::Build(build) => error_code_for_build(build),
        GangedError::InvalidScenario(_) => ErrorCode::InvalidRequest,
        GangedError::Calib(_) => ErrorCode::Internal,
    }
}

/// Request-level validation for ganged requests, mirroring [`validate`].
fn validate_ganged(req: &GangedRequest, cfg: &ServerConfig) -> Result<(), String> {
    if req.n_samples == 0 {
        return Err("n_samples must be positive".to_string());
    }
    if req.n_samples > cfg.max_samples {
        return Err(format!(
            "n_samples {} exceeds server limit {}",
            req.n_samples, cfg.max_samples
        ));
    }
    if !req.n_samples.is_power_of_two() {
        return Err(format!(
            "ganged captures need a power-of-two record, got {}",
            req.n_samples
        ));
    }
    if !req.f_target_hz.is_finite() || req.f_target_hz <= 0.0 {
        return Err(format!(
            "tone frequency must be positive, got {}",
            req.f_target_hz
        ));
    }
    Ok(())
}

/// Request-level validation, before any simulation work is queued.
fn validate(req: &DigitizeRequest, cfg: &ServerConfig) -> Result<(), String> {
    if req.n_samples == 0 {
        return Err("n_samples must be positive".to_string());
    }
    if req.n_samples > cfg.max_samples {
        return Err(format!(
            "n_samples {} exceeds server limit {}",
            req.n_samples, cfg.max_samples
        ));
    }
    if matches!(req.waveform, WaveformSpec::Tone { .. }) && !req.n_samples.is_power_of_two() {
        return Err(format!(
            "tone captures need a power-of-two record, got {}",
            req.n_samples
        ));
    }
    if let WaveformSpec::Tone { f_target_hz } = req.waveform {
        if !f_target_hz.is_finite() || f_target_hz <= 0.0 {
            return Err(format!(
                "tone frequency must be positive, got {f_target_hz}"
            ));
        }
    }
    for (name, v) in [
        ("f_cr_hz override", req.overrides.f_cr_hz),
        ("amplitude_v override", req.overrides.amplitude_v),
    ] {
        if let Some(v) = v {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
        }
    }
    Ok(())
}

/// CRC-32 over the little-endian byte stream of a code record.
pub(crate) fn stream_crc(codes: &[u16]) -> u32 {
    let mut bytes = Vec::with_capacity(codes.len() * 2);
    for &c in codes {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    protocol::crc32(&bytes)
}

/// CRC-32 over the little-endian IEEE-754 byte stream of a value
/// record (ganged streams carry `f64`s).
pub(crate) fn value_stream_crc(values: &[f64]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for &v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    protocol::crc32(&bytes)
}

/// Streams one digitize request's response frames into `tx`. Runs on a
/// pool worker.
fn digitize_job(
    req: &DigitizeRequest,
    cfg: &ServerConfig,
    ctx: &JobCtx,
    tx: &mpsc::SyncSender<Vec<u8>>,
) -> Result<u64, JobError> {
    let fail = |code: ErrorCode, detail: String| {
        let frame = encode_response(&Response::Error {
            code,
            detail: detail.clone(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        Err(JobError::Failed(detail))
    };
    // Scope span ids to the request's fabrication seed — two server
    // runs serving the same request produce the same span identities.
    let _trace_task = adc_trace::task(req.seed);
    let _trace_request = adc_trace::span_with("request", ctx.id.0);
    if ctx.timed_out() {
        let frame = encode_response(&Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired before simulation started".to_string(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        return Err(JobError::TimedOut);
    }
    let digitize_result = {
        let _trace_digitize = adc_trace::span("digitize");
        run_digitize(req)
    };
    let (codes, f_in_hz) = match digitize_result {
        Ok(result) => result,
        Err(build) => return fail(error_code_for_build(&build), build.to_string()),
    };
    if ctx.timed_out() {
        let frame = encode_response(&Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired during conversion".to_string(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        return Err(JobError::TimedOut);
    }
    let batch = if req.batch_size == 0 {
        cfg.default_batch.max(1) as usize
    } else {
        req.batch_size as usize
    };
    let _trace_stream = adc_trace::span("stream");
    let mut batches = 0u32;
    for (seq, chunk) in codes.chunks(batch).enumerate() {
        let frame = encode_response(&Response::Batch {
            seq: seq as u32,
            samples: chunk.to_vec(),
        });
        if !send_with_deadline(tx, ctx, frame) {
            let timed_out = ctx.timed_out();
            let frame = encode_response(&Response::Error {
                code: ErrorCode::TimedOut,
                detail: format!("deadline expired after {batches} batches"),
            });
            let _ = tx.try_send(frame);
            return if timed_out {
                Err(JobError::TimedOut)
            } else {
                Err(JobError::Failed("client went away mid-stream".to_string()))
            };
        }
        batches += 1;
        ctx.record_samples(chunk.len() as u64);
    }
    let done = encode_response(&Response::Done(DigitizeDone {
        total_samples: codes.len() as u32,
        batches,
        f_in_hz,
        stream_crc32: stream_crc(&codes),
    }));
    if !send_with_deadline(tx, ctx, done) {
        return Err(JobError::Failed("client went away at done".to_string()));
    }
    Ok(codes.len() as u64)
}

/// Streams one ganged request's response frames into `tx`. Runs on a
/// pool worker; structurally the twin of [`digitize_job`] with the
/// array scenario in place of the single-die session.
fn ganged_job(
    req: &GangedRequest,
    cfg: &ServerConfig,
    ctx: &JobCtx,
    tx: &mpsc::SyncSender<Vec<u8>>,
) -> Result<u64, JobError> {
    let fail = |code: ErrorCode, detail: String| {
        let frame = encode_response(&Response::Error {
            code,
            detail: detail.clone(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        Err(JobError::Failed(detail))
    };
    let _trace_task = adc_trace::task(req.seed);
    let _trace_request = adc_trace::span_with("request", ctx.id.0);
    if ctx.timed_out() {
        let frame = encode_response(&Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired before simulation started".to_string(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        return Err(JobError::TimedOut);
    }
    let capture = {
        let _trace_ganged = adc_trace::span("ganged");
        run_ganged(req)
    };
    let capture = match capture {
        Ok(capture) => capture,
        Err(err) => return fail(error_code_for_ganged(&err), err.to_string()),
    };
    if ctx.timed_out() {
        let frame = encode_response(&Response::Error {
            code: ErrorCode::TimedOut,
            detail: "deadline expired during conversion".to_string(),
        });
        let _ = send_with_deadline(tx, ctx, frame);
        return Err(JobError::TimedOut);
    }
    let batch = if req.batch_size == 0 {
        cfg.default_batch.max(1) as usize
    } else {
        req.batch_size as usize
    };
    let _trace_stream = adc_trace::span("stream");
    let mut batches = 0u32;
    for (seq, chunk) in capture.values.chunks(batch).enumerate() {
        let frame = encode_response(&Response::GangedBatch {
            seq: seq as u32,
            values: chunk.to_vec(),
        });
        if !send_with_deadline(tx, ctx, frame) {
            let timed_out = ctx.timed_out();
            let frame = encode_response(&Response::Error {
                code: ErrorCode::TimedOut,
                detail: format!("deadline expired after {batches} batches"),
            });
            let _ = tx.try_send(frame);
            return if timed_out {
                Err(JobError::TimedOut)
            } else {
                Err(JobError::Failed("client went away mid-stream".to_string()))
            };
        }
        batches += 1;
        ctx.record_samples(chunk.len() as u64);
    }
    let done = encode_response(&Response::GangedDone(GangedDone {
        total_samples: capture.values.len() as u32,
        batches,
        f_in_hz: capture.f_in_hz,
        epochs_run: capture.epochs_run,
        converged: capture.converged,
        stream_crc32: value_stream_crc(&capture.values),
    }));
    if !send_with_deadline(tx, ctx, done) {
        return Err(JobError::Failed("client went away at done".to_string()));
    }
    Ok(capture.values.len() as u64)
}

/// Executes one job batch: warm-cache check first, then misses onto the
/// pool, one outcome per job in submission order.
///
/// Every job concludes with a typed [`JobStatus`]: `Cached` hits skip
/// the pool entirely; `Computed` results fill the warm cache before the
/// response leaves; pool-level losses (draining, deadline, panic) come
/// back `Rejected` so the client resubmits them — possibly elsewhere —
/// while runner-level errors come back `Failed` (deterministic: a
/// resubmission would fail identically).
fn run_job_batch(
    req: &JobBatchRequest,
    runner: &Arc<dyn JobRunner>,
    shared: &Arc<Shared>,
) -> JobResultBatch {
    let cache = shared.caches.for_campaign(&req.campaign);
    let deadline = (req.deadline_ms > 0).then(|| Duration::from_millis(u64::from(req.deadline_ms)));
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(req.jobs.len());
    let mut pending = Vec::new();
    for job in &req.jobs {
        if let Some(line) = cache.get_line(job.key) {
            shared.metrics.cluster_cache_hit();
            outcomes.push(JobOutcome {
                id: job.id,
                key: job.key,
                status: JobStatus::Cached,
                value: line,
            });
            continue;
        }
        let runner = Arc::clone(runner);
        let kind = req.kind.clone();
        let config = job.config.clone();
        let (id, key, seed) = (job.id, job.key, job.seed);
        let handle = shared.pool.submit(deadline, move |ctx| {
            // Scope span ids to the campaign-derived job seed, not the
            // pool's stream: whichever host runs this job emits the
            // same span identity, so traces stitch across the fleet.
            let _trace_task = adc_trace::task(seed);
            let _trace_span = adc_trace::span_with("cluster-job", id);
            if ctx.timed_out() {
                return Err(JobError::TimedOut);
            }
            runner
                .run(&kind, &config, seed)
                .map_err(|e| JobError::Failed(e.to_string()))
        });
        // Record the slot; the outcome is patched in below.
        outcomes.push(JobOutcome {
            id,
            key,
            status: JobStatus::Rejected,
            value: String::new(),
        });
        pending.push((outcomes.len() - 1, handle));
    }
    for (slot, handle) in pending {
        let (value, report) = handle.wait();
        let (status, value) = match value {
            Some(line) => {
                cache.put_line(outcomes[slot].key, &line);
                (JobStatus::Computed, line)
            }
            None => match report.error {
                // Runner errors (`JobRunError::Display` strings) are
                // deterministic → Failed; everything the *pool* can do
                // to a job (drain, deadline, worker panic) is
                // scheduling, not computation → Rejected.
                Some(JobError::Failed(detail)) if detail != "pool is draining" => {
                    (JobStatus::Failed, detail)
                }
                Some(JobError::Failed(detail)) => (JobStatus::Rejected, detail),
                Some(JobError::TimedOut) => (JobStatus::Rejected, "deadline expired".to_string()),
                Some(JobError::Panicked(msg)) => {
                    (JobStatus::Rejected, format!("worker panicked: {msg}"))
                }
                None => (JobStatus::Rejected, "job lost".to_string()),
            },
        };
        outcomes[slot].status = status;
        outcomes[slot].value = value;
    }
    // Mirror computed results to the campaign file so a restarted host
    // comes back warm. Cache I/O failures must not fail the batch.
    let _ = cache.persist(&req.campaign);
    JobResultBatch {
        batch_id: req.batch_id,
        outcomes,
    }
}

/// Reads requests off one connection until the peer leaves, framing
/// breaks, or the server drains.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let cfg = &shared.cfg;
    stream.set_read_timeout(Some(cfg.read_poll))?;
    let writer_stream = stream.try_clone()?;
    let (tx, writer) = spawn_writer(writer_stream, cfg.write_queue_frames);
    let mut reader = stream;
    let send = |frame: Vec<u8>| tx.send(frame).is_ok();

    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let request = match protocol::read_request(&mut reader, cfg.max_payload) {
            Ok(req) => req,
            Err(FrameReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll tick: re-check the draining flag
            }
            Err(FrameReadError::Io(_)) => break, // peer closed / transport died
            Err(FrameReadError::Wire(w)) => {
                // Framing is lost: report and close (resync is impossible
                // on a corrupt length-prefixed stream).
                shared.metrics.error();
                let _ = send(encode_response(&Response::Error {
                    code: ErrorCode::Protocol,
                    detail: w.to_string(),
                }));
                break;
            }
        };
        match request {
            Request::Ping { token } => {
                shared.metrics.ping();
                if !send(encode_response(&Response::Pong { token })) {
                    break;
                }
            }
            Request::Metrics => {
                shared.metrics.metrics_request();
                let snapshot = shared.metrics.snapshot();
                if !send(encode_response(&Response::Metrics(snapshot))) {
                    break;
                }
            }
            Request::Shutdown => {
                // Begin the drain *before* acking: once the client has
                // the ack in hand, `is_draining()` must already be true.
                ServerHandle {
                    addr: reader.local_addr()?,
                    shared: Arc::clone(shared),
                }
                .shutdown();
                let _ = send(encode_response(&Response::ShutdownAck));
                break;
            }
            Request::Digitize(req) => {
                shared.metrics.digitize();
                if let Err(detail) = validate(&req, cfg) {
                    shared.metrics.error();
                    if !send(encode_response(&Response::Error {
                        code: ErrorCode::InvalidRequest,
                        detail,
                    })) {
                        break;
                    }
                    continue;
                }
                let deadline = (req.deadline_ms > 0)
                    .then(|| Duration::from_millis(u64::from(req.deadline_ms)));
                let job_tx = tx.clone();
                let job_cfg = cfg.clone();
                let handle = shared.pool.submit(deadline, move |ctx| {
                    digitize_job(&req, &job_cfg, ctx, &job_tx)
                });
                // One request at a time per connection: responses stay
                // ordered, concurrency comes from concurrent clients.
                let (value, report) = handle.wait();
                if value.is_none() {
                    shared.metrics.error();
                    if let Some(JobError::Failed(detail)) = &report.error {
                        if detail == "pool is draining" {
                            let _ = send(encode_response(&Response::Error {
                                code: ErrorCode::Draining,
                                detail: detail.clone(),
                            }));
                            break;
                        }
                    }
                    if let Some(JobError::Panicked(msg)) = &report.error {
                        let _ = send(encode_response(&Response::Error {
                            code: ErrorCode::Internal,
                            detail: format!("worker panicked: {msg}"),
                        }));
                    }
                    // Failed/TimedOut jobs already streamed their own
                    // typed error frame.
                }
            }
            Request::Ganged(req) => {
                shared.metrics.digitize();
                if let Err(detail) = validate_ganged(&req, cfg) {
                    shared.metrics.error();
                    if !send(encode_response(&Response::Error {
                        code: ErrorCode::InvalidRequest,
                        detail,
                    })) {
                        break;
                    }
                    continue;
                }
                let deadline = (req.deadline_ms > 0)
                    .then(|| Duration::from_millis(u64::from(req.deadline_ms)));
                let job_tx = tx.clone();
                let job_cfg = cfg.clone();
                let handle = shared.pool.submit(deadline, move |ctx| {
                    ganged_job(&req, &job_cfg, ctx, &job_tx)
                });
                let (value, report) = handle.wait();
                if value.is_none() {
                    shared.metrics.error();
                    if let Some(JobError::Failed(detail)) = &report.error {
                        if detail == "pool is draining" {
                            let _ = send(encode_response(&Response::Error {
                                code: ErrorCode::Draining,
                                detail: detail.clone(),
                            }));
                            break;
                        }
                    }
                    if let Some(JobError::Panicked(msg)) = &report.error {
                        let _ = send(encode_response(&Response::Error {
                            code: ErrorCode::Internal,
                            detail: format!("worker panicked: {msg}"),
                        }));
                    }
                }
            }
            Request::JobBatch(req) => {
                shared.metrics.job_batch();
                let Some(runner) = shared.cfg.job_runner.clone() else {
                    shared.metrics.error();
                    if !send(encode_response(&Response::Error {
                        code: ErrorCode::Unsupported,
                        detail: "this host has no job runner registered".to_string(),
                    })) {
                        break;
                    }
                    continue;
                };
                let result = run_job_batch(&req, &runner, shared);
                if !send(encode_response(&Response::JobResult(result))) {
                    break;
                }
            }
            Request::CacheQuery(q) => {
                let cache = shared.caches.for_campaign(&q.campaign);
                let entries: Vec<(u64, String)> = q
                    .keys
                    .iter()
                    .filter_map(|&key| cache.get_line(key).map(|line| (key, line)))
                    .collect();
                if !send(encode_response(&Response::CacheHits { entries })) {
                    break;
                }
            }
            Request::CacheFill(c) => {
                let cache = shared.caches.for_campaign(&c.campaign);
                let mut accepted = 0u32;
                for (key, line) in &c.entries {
                    if cache.get_line(*key).is_none() {
                        cache.put_line(*key, line);
                        accepted += 1;
                    }
                }
                let _ = cache.persist(&c.campaign);
                if !send(encode_response(&Response::CacheFillAck { accepted })) {
                    break;
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ConfigOverrides;

    #[test]
    fn validation_rejects_out_of_bounds_requests() {
        let cfg = ServerConfig::default();
        let mut req = DigitizeRequest::tone(7, 10e6, 0);
        assert!(validate(&req, &cfg).is_err(), "zero samples");
        req.n_samples = cfg.max_samples + 1;
        assert!(validate(&req, &cfg).is_err(), "too many samples");
        req.n_samples = 1000;
        assert!(validate(&req, &cfg).is_err(), "tone needs power of two");
        req.n_samples = 1024;
        assert!(validate(&req, &cfg).is_ok());
        req.overrides = ConfigOverrides {
            f_cr_hz: Some(f64::NAN),
            ..ConfigOverrides::default()
        };
        assert!(validate(&req, &cfg).is_err(), "NaN override");
        let dc = DigitizeRequest {
            waveform: WaveformSpec::Dc { level_v: 0.25 },
            n_samples: 1000,
            ..DigitizeRequest::tone(7, 10e6, 1000)
        };
        assert!(
            validate(&dc, &cfg).is_ok(),
            "dc records need no power of two"
        );
    }

    #[test]
    fn run_digitize_matches_direct_session_bit_for_bit() {
        let req = DigitizeRequest::tone(7, 10e6, 2048);
        let (served, f_in_served) = run_digitize(&req).unwrap();

        let mut direct = MeasurementSession::new(AdcConfig::nominal_110ms(), 7).unwrap();
        direct.record_len = 2048;
        let (expected, f_in_direct) = direct.capture_tone(10e6);

        assert_eq!(served, expected);
        assert_eq!(f_in_served.to_bits(), f_in_direct.to_bits());
    }

    #[test]
    fn run_digitize_propagates_build_errors() {
        let req = DigitizeRequest {
            overrides: ConfigOverrides {
                f_cr_hz: Some(-1.0),
                ..ConfigOverrides::default()
            },
            ..DigitizeRequest::tone(7, 10e6, 1024)
        };
        let err = run_digitize(&req).unwrap_err();
        assert_eq!(error_code_for_build(&err), ErrorCode::InvalidRate);
    }

    #[test]
    fn stream_crc_is_stable_and_order_sensitive() {
        let a = stream_crc(&[1, 2, 3]);
        assert_eq!(a, stream_crc(&[1, 2, 3]));
        assert_ne!(a, stream_crc(&[3, 2, 1]));
        assert_ne!(a, stream_crc(&[1, 2]));
    }
}
