//! The wire protocol: length-prefixed binary frames with CRC integrity.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic       0x41444353 ("ADCS"), little endian
//!      4     2  version     protocol version, currently 1
//!      6     1  kind        frame type (request 0x01..=0x0F, response 0x81..=0x8F)
//!      7     4  payload_len bytes of payload that follow (bounded)
//!     11     n  payload     kind-specific body, little-endian scalars
//!   11+n     4  crc32       CRC-32/IEEE over bytes 0..11+n
//! ```
//!
//! Scalars are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns, so a decoded value is **bit-identical** to the encoded one
//! — the property the serving-determinism guarantee rests on. Strings
//! are `u32` length + UTF-8 bytes; sample batches are `u32` count +
//! packed `u16` codes.
//!
//! Decoding is total: any byte sequence either parses or yields a typed
//! [`WireError`] — never a panic, never a partial value. Frames that
//! fail the magic, version, size, or CRC checks are rejected before
//! their payload is interpreted.

use std::io::{Read, Write};

/// Frame magic: `"ADCS"` as a little-endian `u32`.
pub const MAGIC: u32 = 0x5343_4441;
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Fixed frame-header size (magic + version + kind + payload_len).
pub const HEADER_LEN: usize = 11;
/// Hard ceiling on payload size a peer may declare (16 MiB) — guards
/// the length-prefixed read against garbage lengths. Servers usually
/// configure a lower limit.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// CRC-32/IEEE (reflected, polynomial 0xEDB88320), the zlib/PNG CRC.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a frame or payload failed to decode. Typed, total, and panic-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// The declared payload length exceeds the configured bound.
    Oversize {
        /// Declared payload length.
        declared: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The CRC trailer did not match the frame bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        received: u32,
    },
    /// The frame kind byte is not a known request or response.
    UnknownKind(u8),
    /// The payload ended before the field being read.
    Truncated,
    /// A field held an invalid value (enum discriminant, UTF-8, ...).
    Malformed(&'static str),
    /// Payload bytes were left over after the last field.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::Oversize { declared, max } => {
                write!(f, "payload of {declared} bytes exceeds limit {max}")
            }
            Self::BadCrc { computed, received } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#010x}, frame carries {received:#010x}"
                )
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::Truncated => write!(f, "payload truncated"),
            Self::Malformed(what) => write!(f, "malformed field: {what}"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reads the `N`-byte little-endian field at `offset`, or `Truncated`.
///
/// This is the panic-free backbone of frame parsing: every fixed-width
/// header access goes through a bounds-checked `get` and an infallible
/// array conversion, so no byte layout can reach a slice-index panic.
fn field<const N: usize>(bytes: &[u8], offset: usize) -> Result<[u8; N], WireError> {
    offset
        .checked_add(N)
        .and_then(|end| bytes.get(offset..end))
        .and_then(|slice| <[u8; N]>::try_from(slice).ok())
        .ok_or(WireError::Truncated)
}

// ---------------------------------------------------------------------------
// Payload reader/writer
// ---------------------------------------------------------------------------

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub(crate) struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn samples(&mut self, codes: &[u16]) {
        self.u32(codes.len() as u32);
        for &c in codes {
            self.u16(c);
        }
    }

    pub fn values(&mut self, values: &[f64]) {
        self.u32(values.len() as u32);
        for &v in values {
            self.f64(v);
        }
    }
}

/// Little-endian payload reader over a received slice.
#[derive(Debug)]
pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Takes `N` bytes as a fixed array (total: short input is
    /// `Truncated`, never a panic).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| WireError::Truncated)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        let [byte] = self.array()?;
        Ok(byte)
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }

    pub fn samples(&mut self) -> Result<Vec<u16>, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len.checked_mul(2).ok_or(WireError::Truncated)?)?;
        let mut codes = Vec::with_capacity(len);
        for pair in bytes.chunks_exact(2) {
            let code = <[u8; 2]>::try_from(pair).map_err(|_| WireError::Truncated)?;
            codes.push(u16::from_le_bytes(code));
        }
        Ok(codes)
    }

    pub fn values(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len.checked_mul(8).ok_or(WireError::Truncated)?)?;
        let mut values = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(8) {
            let bits = <[u8; 8]>::try_from(chunk).map_err(|_| WireError::Truncated)?;
            values.push(f64::from_bits(u64::from_le_bytes(bits)));
        }
        Ok(values)
    }

    /// Consumes and returns every remaining payload byte (used to hand
    /// a nested frame body to an inner decoder, which enforces its own
    /// trailing-bytes check).
    pub fn rest(&mut self) -> &'a [u8] {
        let out = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        out
    }

    pub fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len().saturating_sub(self.pos);
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

// ---------------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------------

/// The converter preset a digitize request starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// `AdcConfig::nominal_110ms()` — the paper's calibrated design.
    Nominal110,
    /// `AdcConfig::ideal(f_cr)` — a noiseless ideal quantizer.
    Ideal,
    /// `AdcConfig::sibling_220ms_10b()` — the ref. [1] sibling part.
    Sibling220,
}

impl Preset {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            Self::Nominal110 => 0,
            Self::Ideal => 1,
            Self::Sibling220 => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Self::Nominal110),
            1 => Ok(Self::Ideal),
            2 => Ok(Self::Sibling220),
            _ => Err(WireError::Malformed("preset discriminant")),
        }
    }
}

/// Sparse overrides applied on top of the preset configuration.
///
/// Encoded as a presence bitmask followed by the set fields in order,
/// so adding fields later stays wire-compatible within a version.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigOverrides {
    /// Conversion rate, hertz.
    pub f_cr_hz: Option<f64>,
    /// Stimulus amplitude, volts peak (defaults to the session's
    /// near-full-scale level).
    pub amplitude_v: Option<f64>,
    /// Enable/disable thermal noise injection.
    pub thermal_noise: Option<bool>,
}

impl ConfigOverrides {
    fn encode(&self, w: &mut PayloadWriter) {
        let mut mask = 0u8;
        if self.f_cr_hz.is_some() {
            mask |= 1;
        }
        if self.amplitude_v.is_some() {
            mask |= 2;
        }
        if self.thermal_noise.is_some() {
            mask |= 4;
        }
        w.u8(mask);
        if let Some(v) = self.f_cr_hz {
            w.f64(v);
        }
        if let Some(v) = self.amplitude_v {
            w.f64(v);
        }
        if let Some(v) = self.thermal_noise {
            w.u8(u8::from(v));
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, WireError> {
        let mask = r.u8()?;
        if mask & !0b111 != 0 {
            return Err(WireError::Malformed("override mask"));
        }
        Ok(Self {
            f_cr_hz: if mask & 1 != 0 { Some(r.f64()?) } else { None },
            amplitude_v: if mask & 2 != 0 { Some(r.f64()?) } else { None },
            thermal_noise: if mask & 4 != 0 {
                Some(match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("thermal_noise flag")),
                })
            } else {
                None
            },
        })
    }
}

/// The stimulus a digitize request drives into the converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaveformSpec {
    /// A coherent single tone near `f_target_hz` (the frequency is
    /// snapped to the coherent FFT grid exactly as the bench does;
    /// the response's `f_in_hz` reports the frequency used).
    Tone {
        /// Requested stimulus frequency, hertz.
        f_target_hz: f64,
    },
    /// A constant level (offset / static testing).
    Dc {
        /// The level, volts.
        level_v: f64,
    },
    /// A linear ramp spanning the record (histogram linearity).
    Ramp {
        /// Start voltage.
        from_v: f64,
        /// End voltage.
        to_v: f64,
    },
}

impl WaveformSpec {
    fn encode(&self, w: &mut PayloadWriter) {
        match *self {
            Self::Tone { f_target_hz } => {
                w.u8(0);
                w.f64(f_target_hz);
            }
            Self::Dc { level_v } => {
                w.u8(1);
                w.f64(level_v);
            }
            Self::Ramp { from_v, to_v } => {
                w.u8(2);
                w.f64(from_v);
                w.f64(to_v);
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Self::Tone {
                f_target_hz: r.f64()?,
            }),
            1 => Ok(Self::Dc { level_v: r.f64()? }),
            2 => Ok(Self::Ramp {
                from_v: r.f64()?,
                to_v: r.f64()?,
            }),
            _ => Err(WireError::Malformed("waveform discriminant")),
        }
    }
}

/// One digitization request: fabricate the configured die at `seed`,
/// drive the stimulus, stream `n_samples` codes back in batches.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitizeRequest {
    /// Base configuration preset.
    pub preset: Preset,
    /// Fabrication seed — the same seed given to a direct in-process
    /// `MeasurementSession::new(config, seed)` yields bit-identical
    /// samples.
    pub seed: u64,
    /// Sparse config overrides on top of the preset.
    pub overrides: ConfigOverrides,
    /// The stimulus.
    pub waveform: WaveformSpec,
    /// Samples to convert. Tone requests require a power of two (the
    /// coherent-capture grid); all requests are bounded by the server's
    /// configured maximum.
    pub n_samples: u32,
    /// Samples per streamed batch frame; `0` selects the server default.
    pub batch_size: u32,
    /// Per-request deadline in milliseconds; `0` means no deadline. The
    /// server enforces it cooperatively between batches.
    pub deadline_ms: u32,
}

impl DigitizeRequest {
    /// A tone capture with bench defaults: golden-style explicit seed,
    /// no overrides, server-default batching, no deadline.
    pub fn tone(seed: u64, f_target_hz: f64, n_samples: u32) -> Self {
        Self {
            preset: Preset::Nominal110,
            seed,
            overrides: ConfigOverrides::default(),
            waveform: WaveformSpec::Tone { f_target_hz },
            n_samples,
            batch_size: 0,
            deadline_ms: 0,
        }
    }
}

/// Most channels a ganged request may ask for; counts outside
/// `1..=MAX_GANGED_CHANNELS` are rejected at decode time as
/// [`WireError::Malformed`].
pub const MAX_GANGED_CHANNELS: u8 = 16;

/// Channel alignment mode of a ganged request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GangedCal {
    /// No alignment: the raw mismatch spurs on display.
    Raw,
    /// Foreground DC alignment with the server's fixed averaging.
    Foreground,
    /// Background calibration from live data, run to convergence (or
    /// the server's fixed epoch budget) before the capture.
    Background,
}

impl GangedCal {
    fn to_u8(self) -> u8 {
        match self {
            Self::Raw => 0,
            Self::Foreground => 1,
            Self::Background => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Self::Raw),
            1 => Ok(Self::Foreground),
            2 => Ok(Self::Background),
            _ => Err(WireError::Malformed("ganged cal discriminant")),
        }
    }
}

/// One ganged digitization: fabricate an M-way interleaved array at
/// `seed`, align it as requested, and stream the interleaved record
/// (reconstructed volts) back in batches.
///
/// The served record is **bit-identical** to an in-process
/// `adc_calib::GangedScenario::capture_tone` built from the same fields
/// (the server publishes its fixed alignment constants for exactly this
/// purpose).
#[derive(Debug, Clone, PartialEq)]
pub struct GangedRequest {
    /// Per-channel base configuration preset.
    pub preset: Preset,
    /// Array fabrication seed (channel `k` is die `seed + k`).
    pub seed: u64,
    /// Channel count, `1..=MAX_GANGED_CHANNELS`.
    pub channels: u8,
    /// Draw the typical array-level skew/bandwidth mismatch (`true`) or
    /// build a perfectly matched array (`false`).
    pub mismatch: bool,
    /// Channel alignment before the capture.
    pub cal: GangedCal,
    /// Requested stimulus frequency, hertz (coherently snapped; the
    /// response reports the frequency used).
    pub f_target_hz: f64,
    /// Samples to capture (power of two — ganged captures are coherent
    /// tone records).
    pub n_samples: u32,
    /// Values per streamed batch frame; `0` selects the server default.
    pub batch_size: u32,
    /// Per-request deadline in milliseconds; `0` means none.
    pub deadline_ms: u32,
}

impl GangedRequest {
    /// A background-calibrated capture of a mismatched array — the
    /// interesting mode — with server-default batching and no deadline.
    pub fn tone(seed: u64, channels: u8, f_target_hz: f64, n_samples: u32) -> Self {
        Self {
            preset: Preset::Nominal110,
            seed,
            channels,
            mismatch: true,
            cal: GangedCal::Background,
            f_target_hz,
            n_samples,
            batch_size: 0,
            deadline_ms: 0,
        }
    }
}

/// Most jobs one [`JobBatchRequest`] frame may carry; larger batches
/// are rejected at decode time as [`WireError::Malformed`]. Bounds the
/// allocation a declared count can force before the payload is walked.
pub const MAX_BATCH_JOBS: u32 = 4096;

/// Most keys/entries one cache frame may carry ([`CacheQueryRequest`],
/// [`CacheFillRequest`], [`Response::CacheHits`]); same decode-time
/// rejection rationale as [`MAX_BATCH_JOBS`].
pub const MAX_CACHE_ENTRIES: u32 = 65_536;

/// One campaign job as it travels the wire: the rendered canonical
/// config (the wire cannot carry arbitrary `Debug` types), the
/// schedule-independent derived seed, and the content-addressed cache
/// key the result lands under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable campaign job id (submission index) — results assemble
    /// into id-indexed slots, so completion order and host placement
    /// are invisible.
    pub id: u64,
    /// Content-addressed cache key (`canonical_key` namespace, epoch
    /// salted) — shared verbatim between hosts.
    pub key: u64,
    /// Derived per-job seed, `derive_seed(campaign_seed, id)` —
    /// identical whichever host runs the job.
    pub seed: u64,
    /// Canonically rendered job configuration, interpreted by the
    /// executing host's registered job runner.
    pub config: String,
}

/// A batch of campaign jobs for remote execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobBatchRequest {
    /// Client-chosen batch id, echoed in the [`Response::JobResult`].
    pub batch_id: u64,
    /// Campaign name — salts cache keys and names the server-side
    /// cache file the results merge into.
    pub campaign: String,
    /// Job kind, dispatched through the server's job runner registry.
    pub kind: String,
    /// Per-batch deadline in milliseconds; `0` means none.
    pub deadline_ms: u32,
    /// The jobs; at most [`MAX_BATCH_JOBS`].
    pub jobs: Vec<JobSpec>,
}

/// How one job in a batch concluded on the serving host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The host ran the job; `value` is the encoded result line.
    Computed,
    /// The host's warm cache already held the key; `value` is the
    /// cached line (bit-identical to a fresh computation).
    Cached,
    /// The job failed *deterministically* (unknown kind, malformed
    /// config): retrying elsewhere would fail identically, so the
    /// client must not resubmit. `value` carries the detail.
    Failed,
    /// The job failed *transiently* (draining, deadline, worker loss):
    /// the client should resubmit it — possibly to another host.
    /// `value` carries the detail.
    Rejected,
}

impl JobStatus {
    fn to_u8(self) -> u8 {
        match self {
            Self::Computed => 0,
            Self::Cached => 1,
            Self::Failed => 2,
            Self::Rejected => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Self::Computed),
            1 => Ok(Self::Cached),
            2 => Ok(Self::Failed),
            3 => Ok(Self::Rejected),
            _ => Err(WireError::Malformed("job status discriminant")),
        }
    }
}

/// Outcome of one job from a [`JobBatchRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's id, copied from the spec.
    pub id: u64,
    /// The job's cache key, copied from the spec.
    pub key: u64,
    /// How the job concluded.
    pub status: JobStatus,
    /// Encoded result line (Computed/Cached) or failure detail
    /// (Failed/Rejected).
    pub value: String,
}

/// Completion of a [`JobBatchRequest`]: one outcome per submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResultBatch {
    /// Echo of the request's batch id.
    pub batch_id: u64,
    /// One outcome per job, in the order submitted.
    pub outcomes: Vec<JobOutcome>,
}

/// Bulk lookup against a host's warm cache (query-before-compute half
/// of the cache-merge protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheQueryRequest {
    /// Campaign whose namespace the keys live in.
    pub campaign: String,
    /// Keys to probe; at most [`MAX_CACHE_ENTRIES`].
    pub keys: Vec<u64>,
}

/// Bulk insert into a host's warm cache (fill-after-compute half).
/// Inserts are first-writer-wins: under the canonical-key contract any
/// two writers for a key hold bit-identical lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheFillRequest {
    /// Campaign whose namespace the entries live in.
    pub campaign: String,
    /// `(key, encoded line)` pairs; at most [`MAX_CACHE_ENTRIES`].
    pub entries: Vec<(u64, String)>,
}

/// The work a [`Request::Submit`] frame carries — the digitizing
/// request kinds that may be pipelined under a correlation id.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitBody {
    /// A single-die digitization.
    Digitize(DigitizeRequest),
    /// A ganged (interleaved-array) digitization.
    Ganged(GangedRequest),
}

/// A pipelined digitization request: the client picks `corr_id` and may
/// send further `Submit` frames without waiting; every response frame
/// belonging to this request comes back wrapped in
/// [`Response::Tagged`] with the same id, and requests complete in
/// whatever order the server finishes them.
///
/// `corr_id == 0` selects **legacy ordered mode**: responses travel
/// untagged and at most one id-0 request runs per connection at a time,
/// exactly like the bare [`Request::Digitize`] / [`Request::Ganged`]
/// frames (which are equivalent to a `Submit` with id 0).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen correlation id; echoed on every response frame of
    /// this request. `0` = legacy ordered mode.
    pub corr_id: u64,
    /// The digitization to run.
    pub body: SubmitBody,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the token is echoed back.
    Ping {
        /// Opaque token echoed in the pong.
        token: u64,
    },
    /// Digitize a waveform and stream the codes back.
    Digitize(DigitizeRequest),
    /// Snapshot the server's metrics registry.
    Metrics,
    /// Begin graceful drain-then-shutdown.
    Shutdown,
    /// Digitize through a time-interleaved array and stream the
    /// interleaved record back.
    Ganged(GangedRequest),
    /// Execute a batch of campaign jobs through the host's job runner.
    JobBatch(JobBatchRequest),
    /// Probe the host's warm cache for a set of canonical keys.
    CacheQuery(CacheQueryRequest),
    /// Merge computed entries into the host's warm cache.
    CacheFill(CacheFillRequest),
    /// A pipelined digitization under a client-chosen correlation id.
    Submit(SubmitRequest),
}

const KIND_PING: u8 = 0x01;
const KIND_DIGITIZE: u8 = 0x02;
const KIND_METRICS: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_GANGED: u8 = 0x05;
const KIND_JOB_BATCH: u8 = 0x06;
const KIND_CACHE_QUERY: u8 = 0x07;
const KIND_CACHE_FILL: u8 = 0x08;
const KIND_SUBMIT: u8 = 0x09;
const KIND_PONG: u8 = 0x81;
const KIND_BATCH: u8 = 0x82;
const KIND_DONE: u8 = 0x83;
const KIND_METRICS_SNAPSHOT: u8 = 0x84;
const KIND_ERROR: u8 = 0x85;
const KIND_SHUTDOWN_ACK: u8 = 0x86;
const KIND_GANGED_BATCH: u8 = 0x87;
const KIND_GANGED_DONE: u8 = 0x88;
const KIND_JOB_RESULT: u8 = 0x89;
const KIND_CACHE_HITS: u8 = 0x8A;
const KIND_CACHE_FILL_ACK: u8 = 0x8B;
const KIND_TAGGED: u8 = 0x8C;

fn encode_digitize_fields(d: &DigitizeRequest, w: &mut PayloadWriter) {
    w.u8(d.preset.to_u8());
    w.u64(d.seed);
    d.overrides.encode(w);
    d.waveform.encode(w);
    w.u32(d.n_samples);
    w.u32(d.batch_size);
    w.u32(d.deadline_ms);
}

fn decode_digitize_fields(r: &mut PayloadReader<'_>) -> Result<DigitizeRequest, WireError> {
    let preset = Preset::from_u8(r.u8()?)?;
    let seed = r.u64()?;
    let overrides = ConfigOverrides::decode(r)?;
    let waveform = WaveformSpec::decode(r)?;
    Ok(DigitizeRequest {
        preset,
        seed,
        overrides,
        waveform,
        n_samples: r.u32()?,
        batch_size: r.u32()?,
        deadline_ms: r.u32()?,
    })
}

fn encode_ganged_fields(g: &GangedRequest, w: &mut PayloadWriter) {
    w.u8(g.preset.to_u8());
    w.u64(g.seed);
    w.u8(g.channels);
    w.u8(u8::from(g.mismatch));
    w.u8(g.cal.to_u8());
    w.f64(g.f_target_hz);
    w.u32(g.n_samples);
    w.u32(g.batch_size);
    w.u32(g.deadline_ms);
}

fn decode_ganged_fields(r: &mut PayloadReader<'_>) -> Result<GangedRequest, WireError> {
    let preset = Preset::from_u8(r.u8()?)?;
    let seed = r.u64()?;
    let channels = r.u8()?;
    if channels == 0 || channels > MAX_GANGED_CHANNELS {
        return Err(WireError::Malformed("channel count"));
    }
    let mismatch = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("mismatch flag")),
    };
    let cal = GangedCal::from_u8(r.u8()?)?;
    Ok(GangedRequest {
        preset,
        seed,
        channels,
        mismatch,
        cal,
        f_target_hz: r.f64()?,
        n_samples: r.u32()?,
        batch_size: r.u32()?,
        deadline_ms: r.u32()?,
    })
}

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Self::Ping { .. } => KIND_PING,
            Self::Digitize(_) => KIND_DIGITIZE,
            Self::Metrics => KIND_METRICS,
            Self::Shutdown => KIND_SHUTDOWN,
            Self::Ganged(_) => KIND_GANGED,
            Self::JobBatch(_) => KIND_JOB_BATCH,
            Self::CacheQuery(_) => KIND_CACHE_QUERY,
            Self::CacheFill(_) => KIND_CACHE_FILL,
            Self::Submit(_) => KIND_SUBMIT,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Self::Ping { token } => w.u64(*token),
            Self::Digitize(d) => encode_digitize_fields(d, &mut w),
            Self::Ganged(g) => encode_ganged_fields(g, &mut w),
            Self::Submit(s) => {
                w.u64(s.corr_id);
                match &s.body {
                    SubmitBody::Digitize(d) => {
                        w.u8(0);
                        encode_digitize_fields(d, &mut w);
                    }
                    SubmitBody::Ganged(g) => {
                        w.u8(1);
                        encode_ganged_fields(g, &mut w);
                    }
                }
            }
            Self::JobBatch(b) => {
                w.u64(b.batch_id);
                w.str(&b.campaign);
                w.str(&b.kind);
                w.u32(b.deadline_ms);
                w.u32(b.jobs.len() as u32);
                for job in &b.jobs {
                    w.u64(job.id);
                    w.u64(job.key);
                    w.u64(job.seed);
                    w.str(&job.config);
                }
            }
            Self::CacheQuery(q) => {
                w.str(&q.campaign);
                w.u32(q.keys.len() as u32);
                for &key in &q.keys {
                    w.u64(key);
                }
            }
            Self::CacheFill(c) => {
                w.str(&c.campaign);
                w.u32(c.entries.len() as u32);
                for (key, line) in &c.entries {
                    w.u64(*key);
                    w.str(line);
                }
            }
            Self::Metrics | Self::Shutdown => {}
        }
        w.into_bytes()
    }

    pub(crate) fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(payload);
        let request = match kind {
            KIND_PING => Self::Ping { token: r.u64()? },
            KIND_DIGITIZE => Self::Digitize(decode_digitize_fields(&mut r)?),
            KIND_METRICS => Self::Metrics,
            KIND_SHUTDOWN => Self::Shutdown,
            KIND_GANGED => Self::Ganged(decode_ganged_fields(&mut r)?),
            KIND_SUBMIT => {
                let corr_id = r.u64()?;
                let body = match r.u8()? {
                    0 => SubmitBody::Digitize(decode_digitize_fields(&mut r)?),
                    1 => SubmitBody::Ganged(decode_ganged_fields(&mut r)?),
                    _ => return Err(WireError::Malformed("submit body discriminant")),
                };
                Self::Submit(SubmitRequest { corr_id, body })
            }
            KIND_JOB_BATCH => {
                let batch_id = r.u64()?;
                let campaign = r.str()?;
                let kind = r.str()?;
                let deadline_ms = r.u32()?;
                let count = r.u32()?;
                if count > MAX_BATCH_JOBS {
                    return Err(WireError::Malformed("job count"));
                }
                let mut jobs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    jobs.push(JobSpec {
                        id: r.u64()?,
                        key: r.u64()?,
                        seed: r.u64()?,
                        config: r.str()?,
                    });
                }
                Self::JobBatch(JobBatchRequest {
                    batch_id,
                    campaign,
                    kind,
                    deadline_ms,
                    jobs,
                })
            }
            KIND_CACHE_QUERY => {
                let campaign = r.str()?;
                let count = r.u32()?;
                if count > MAX_CACHE_ENTRIES {
                    return Err(WireError::Malformed("cache key count"));
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    keys.push(r.u64()?);
                }
                Self::CacheQuery(CacheQueryRequest { campaign, keys })
            }
            KIND_CACHE_FILL => {
                let campaign = r.str()?;
                let count = r.u32()?;
                if count > MAX_CACHE_ENTRIES {
                    return Err(WireError::Malformed("cache entry count"));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = r.u64()?;
                    let line = r.str()?;
                    entries.push((key, line));
                }
                Self::CacheFill(CacheFillRequest { campaign, entries })
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(request)
    }
}

/// Typed error classes a server can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame failed protocol validation.
    Protocol,
    /// Request fields were out of the server's accepted bounds.
    InvalidRequest,
    /// Converter build failed: no stages configured.
    NoStages,
    /// Converter build failed: non-positive conversion rate.
    InvalidRate,
    /// Converter build failed: non-positive reference voltage.
    InvalidReference,
    /// Converter build failed: clocking leaves no settling time.
    NoSettlingTime,
    /// The request exceeded its deadline.
    TimedOut,
    /// The server is draining and no longer accepts work.
    Draining,
    /// An unexpected server-side failure (worker panic, ...).
    Internal,
    /// The request names a capability this server does not provide
    /// (e.g. a job batch on a host with no job runner).
    Unsupported,
    /// Admission control shed this request: the server's bounded queues
    /// were full. The request was *not* run; retry later (in-flight
    /// requests on the same connection are unaffected).
    Overloaded,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            Self::Protocol => 0,
            Self::InvalidRequest => 1,
            Self::NoStages => 2,
            Self::InvalidRate => 3,
            Self::InvalidReference => 4,
            Self::NoSettlingTime => 5,
            Self::TimedOut => 6,
            Self::Draining => 7,
            Self::Internal => 8,
            Self::Unsupported => 9,
            Self::Overloaded => 10,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => Self::Protocol,
            1 => Self::InvalidRequest,
            2 => Self::NoStages,
            3 => Self::InvalidRate,
            4 => Self::InvalidReference,
            5 => Self::NoSettlingTime,
            6 => Self::TimedOut,
            7 => Self::Draining,
            8 => Self::Internal,
            9 => Self::Unsupported,
            10 => Self::Overloaded,
            _ => return Err(WireError::Malformed("error code")),
        })
    }
}

/// Maps a converter build failure onto its wire error class.
pub fn error_code_for_build(err: &adc_pipeline::error::BuildAdcError) -> ErrorCode {
    use adc_pipeline::error::BuildAdcError as E;
    match err {
        E::NoStages => ErrorCode::NoStages,
        E::InvalidRate(_) => ErrorCode::InvalidRate,
        E::InvalidReference(_) => ErrorCode::InvalidReference,
        E::NoSettlingTime { .. } => ErrorCode::NoSettlingTime,
    }
}

/// Completion summary of a digitize stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitizeDone {
    /// Total samples streamed across all batches.
    pub total_samples: u32,
    /// Number of batch frames that preceded this frame.
    pub batches: u32,
    /// The exact stimulus frequency used (coherent snap), hertz; `0.0`
    /// for non-tone waveforms.
    pub f_in_hz: f64,
    /// CRC-32 over the little-endian byte stream of all samples, in
    /// order — lets a client verify reassembly without re-requesting.
    pub stream_crc32: u32,
}

/// Completion summary of a ganged stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GangedDone {
    /// Total values streamed across all batches.
    pub total_samples: u32,
    /// Number of ganged-batch frames that preceded this frame.
    pub batches: u32,
    /// The exact stimulus frequency used (coherent snap), hertz.
    pub f_in_hz: f64,
    /// Background-calibration epochs run before the capture (zero for
    /// raw/foreground alignment).
    pub epochs_run: u32,
    /// Whether the background loop reached its hold state within the
    /// server's epoch budget (always `true` for raw/foreground).
    pub converged: bool,
    /// CRC-32 over the little-endian IEEE-754 byte stream of all
    /// values, in order.
    pub stream_crc32: u32,
}

/// Point-in-time metrics snapshot (see `metrics` module for semantics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Ping requests served.
    pub pings: u64,
    /// Digitize requests accepted (including ones that later failed).
    pub digitizes: u64,
    /// Metrics requests served.
    pub metrics_requests: u64,
    /// Error frames sent, any class.
    pub errors: u64,
    /// Digitize jobs currently queued or running.
    pub in_flight: u64,
    /// Digitize jobs completed successfully.
    pub completed: u64,
    /// Samples streamed to clients.
    pub samples_streamed: u64,
    /// Cluster job batches accepted.
    pub job_batches: u64,
    /// Cluster jobs answered from the warm cache.
    pub cluster_cache_hits: u64,
    /// Median digitize latency, microseconds (0 with no completed jobs).
    pub p50_us: u64,
    /// 90th-percentile digitize latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile digitize latency, microseconds.
    pub p99_us: u64,
    /// Requests shed by admission control (`Overloaded` frames sent).
    pub overloaded: u64,
    /// Digitize requests served as members of a coalesced lane batch of
    /// two or more (a subset of `completed`).
    pub coalesced: u64,
}

impl MetricsSnapshot {
    fn encode(&self, w: &mut PayloadWriter) {
        for v in [
            self.connections,
            self.pings,
            self.digitizes,
            self.metrics_requests,
            self.errors,
            self.in_flight,
            self.completed,
            self.samples_streamed,
            self.job_batches,
            self.cluster_cache_hits,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.overloaded,
            self.coalesced,
        ] {
            w.u64(v);
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            connections: r.u64()?,
            pings: r.u64()?,
            digitizes: r.u64()?,
            metrics_requests: r.u64()?,
            errors: r.u64()?,
            in_flight: r.u64()?,
            completed: r.u64()?,
            samples_streamed: r.u64()?,
            job_batches: r.u64()?,
            cluster_cache_hits: r.u64()?,
            p50_us: r.u64()?,
            p90_us: r.u64()?,
            p99_us: r.u64()?,
            overloaded: r.u64()?,
            coalesced: r.u64()?,
        })
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The echoed token.
        token: u64,
    },
    /// One streamed batch of converted codes.
    Batch {
        /// Zero-based batch index within the stream.
        seq: u32,
        /// The codes, in conversion order.
        samples: Vec<u16>,
    },
    /// End of a digitize stream.
    Done(DigitizeDone),
    /// Snapshot answering a [`Request::Metrics`].
    Metrics(MetricsSnapshot),
    /// A typed failure; terminates the active request.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server drains and
    /// closes.
    ShutdownAck,
    /// One streamed batch of a ganged (interleaved, corrected) record.
    GangedBatch {
        /// Zero-based batch index within the stream.
        seq: u32,
        /// Reconstructed voltages, in conversion order, bit-exact.
        values: Vec<f64>,
    },
    /// End of a ganged stream.
    GangedDone(GangedDone),
    /// Completion of a [`Request::JobBatch`]: one outcome per job.
    JobResult(JobResultBatch),
    /// Answer to a [`Request::CacheQuery`]: the subset of probed keys
    /// the host held, with their encoded lines.
    CacheHits {
        /// `(key, encoded line)` for each hit, in probe order.
        entries: Vec<(u64, String)>,
    },
    /// Acknowledges a [`Request::CacheFill`].
    CacheFillAck {
        /// Entries newly inserted (existing keys are kept, not
        /// overwritten — see [`CacheFillRequest`]).
        accepted: u32,
    },
    /// A response frame belonging to a pipelined [`Request::Submit`]
    /// stream: the correlation id names which in-flight request the
    /// inner frame continues or completes. The inner response is one of
    /// `Batch`, `Done`, `GangedBatch`, `GangedDone`, or `Error` — never
    /// another `Tagged`.
    Tagged {
        /// The correlation id the client chose at submit time.
        corr_id: u64,
        /// The wrapped stream frame.
        inner: Box<Response>,
    },
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Self::Pong { .. } => KIND_PONG,
            Self::Batch { .. } => KIND_BATCH,
            Self::Done(_) => KIND_DONE,
            Self::Metrics(_) => KIND_METRICS_SNAPSHOT,
            Self::Error { .. } => KIND_ERROR,
            Self::ShutdownAck => KIND_SHUTDOWN_ACK,
            Self::GangedBatch { .. } => KIND_GANGED_BATCH,
            Self::GangedDone(_) => KIND_GANGED_DONE,
            Self::JobResult(_) => KIND_JOB_RESULT,
            Self::CacheHits { .. } => KIND_CACHE_HITS,
            Self::CacheFillAck { .. } => KIND_CACHE_FILL_ACK,
            Self::Tagged { .. } => KIND_TAGGED,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Self::Pong { token } => w.u64(*token),
            Self::Batch { seq, samples } => {
                w.u32(*seq);
                w.samples(samples);
            }
            Self::Done(d) => {
                w.u32(d.total_samples);
                w.u32(d.batches);
                w.f64(d.f_in_hz);
                w.u32(d.stream_crc32);
            }
            Self::Metrics(m) => m.encode(&mut w),
            Self::Error { code, detail } => {
                w.u8(code.to_u8());
                w.str(detail);
            }
            Self::ShutdownAck => {}
            Self::GangedBatch { seq, values } => {
                w.u32(*seq);
                w.values(values);
            }
            Self::GangedDone(d) => {
                w.u32(d.total_samples);
                w.u32(d.batches);
                w.f64(d.f_in_hz);
                w.u32(d.epochs_run);
                w.u8(u8::from(d.converged));
                w.u32(d.stream_crc32);
            }
            Self::JobResult(b) => {
                w.u64(b.batch_id);
                w.u32(b.outcomes.len() as u32);
                for outcome in &b.outcomes {
                    w.u64(outcome.id);
                    w.u64(outcome.key);
                    w.u8(outcome.status.to_u8());
                    w.str(&outcome.value);
                }
            }
            Self::CacheHits { entries } => {
                w.u32(entries.len() as u32);
                for (key, line) in entries {
                    w.u64(*key);
                    w.str(line);
                }
            }
            Self::CacheFillAck { accepted } => w.u32(*accepted),
            Self::Tagged { corr_id, inner } => {
                w.u64(*corr_id);
                w.u8(inner.kind());
                w.bytes(&inner.payload());
            }
        }
        w.into_bytes()
    }

    pub(crate) fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(payload);
        let response = match kind {
            KIND_PONG => Self::Pong { token: r.u64()? },
            KIND_BATCH => Self::Batch {
                seq: r.u32()?,
                samples: r.samples()?,
            },
            KIND_DONE => Self::Done(DigitizeDone {
                total_samples: r.u32()?,
                batches: r.u32()?,
                f_in_hz: r.f64()?,
                stream_crc32: r.u32()?,
            }),
            KIND_METRICS_SNAPSHOT => Self::Metrics(MetricsSnapshot::decode(&mut r)?),
            KIND_ERROR => Self::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                detail: r.str()?,
            },
            KIND_SHUTDOWN_ACK => Self::ShutdownAck,
            KIND_GANGED_BATCH => Self::GangedBatch {
                seq: r.u32()?,
                values: r.values()?,
            },
            KIND_GANGED_DONE => Self::GangedDone(GangedDone {
                total_samples: r.u32()?,
                batches: r.u32()?,
                f_in_hz: r.f64()?,
                epochs_run: r.u32()?,
                converged: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("converged flag")),
                },
                stream_crc32: r.u32()?,
            }),
            KIND_JOB_RESULT => {
                let batch_id = r.u64()?;
                let count = r.u32()?;
                if count > MAX_BATCH_JOBS {
                    return Err(WireError::Malformed("outcome count"));
                }
                let mut outcomes = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    outcomes.push(JobOutcome {
                        id: r.u64()?,
                        key: r.u64()?,
                        status: JobStatus::from_u8(r.u8()?)?,
                        value: r.str()?,
                    });
                }
                Self::JobResult(JobResultBatch { batch_id, outcomes })
            }
            KIND_CACHE_HITS => {
                let count = r.u32()?;
                if count > MAX_CACHE_ENTRIES {
                    return Err(WireError::Malformed("cache hit count"));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = r.u64()?;
                    let line = r.str()?;
                    entries.push((key, line));
                }
                Self::CacheHits { entries }
            }
            KIND_CACHE_FILL_ACK => Self::CacheFillAck { accepted: r.u32()? },
            KIND_TAGGED => {
                let corr_id = r.u64()?;
                let inner_kind = r.u8()?;
                match inner_kind {
                    KIND_BATCH | KIND_DONE | KIND_ERROR | KIND_GANGED_BATCH | KIND_GANGED_DONE => {}
                    _ => return Err(WireError::Malformed("tagged inner kind")),
                }
                // The inner decoder enforces its own trailing-bytes
                // check over the rest of the payload.
                let inner = Self::decode(inner_kind, r.rest())?;
                return Ok(Self::Tagged {
                    corr_id,
                    inner: Box::new(inner),
                });
            }
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Encodes a request into one wire frame.
pub fn encode_request(request: &Request) -> Vec<u8> {
    encode_frame(request.kind(), &request.payload())
}

/// Encodes a response into one wire frame.
pub fn encode_response(response: &Response) -> Vec<u8> {
    encode_frame(response.kind(), &response.payload())
}

/// Validates framing (magic, version, size bound, CRC) and returns the
/// frame kind and payload slice.
fn check_frame(bytes: &[u8], max_payload: u32) -> Result<(u8, &[u8]), WireError> {
    let magic = u32::from_le_bytes(field(bytes, 0)?);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(field(bytes, 4)?);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let [kind] = field(bytes, 6)?;
    let declared = u32::from_le_bytes(field(bytes, 7)?);
    if declared > max_payload {
        return Err(WireError::Oversize {
            declared,
            max: max_payload,
        });
    }
    let body_len = HEADER_LEN + declared as usize;
    let total = body_len + 4;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    if bytes.len() > total {
        return Err(WireError::TrailingBytes(bytes.len() - total));
    }
    let body = bytes.get(..body_len).ok_or(WireError::Truncated)?;
    let received = u32::from_le_bytes(field(bytes, body_len)?);
    let computed = crc32(body);
    if computed != received {
        return Err(WireError::BadCrc { computed, received });
    }
    let payload = bytes
        .get(HEADER_LEN..body_len)
        .ok_or(WireError::Truncated)?;
    Ok((kind, payload))
}

/// Decodes the `(kind, payload)` pair a [`FrameAssembler`] yields into
/// a [`Request`].
///
/// # Errors
///
/// [`WireError`] when the kind is unknown or the payload malformed.
pub fn decode_request_frame(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
    Request::decode(kind, payload)
}

/// Decodes the `(kind, payload)` pair a [`FrameAssembler`] yields into
/// a [`Response`].
///
/// # Errors
///
/// [`WireError`] when the kind is unknown or the payload malformed.
pub fn decode_response_frame(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
    Response::decode(kind, payload)
}

/// Decodes one complete request frame from a byte slice.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let (kind, payload) = check_frame(bytes, MAX_PAYLOAD)?;
    Request::decode(kind, payload)
}

/// Decodes one complete response frame from a byte slice.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let (kind, payload) = check_frame(bytes, MAX_PAYLOAD)?;
    Response::decode(kind, payload)
}

/// Incremental frame assembler for nonblocking transports.
///
/// Bytes arrive in arbitrary chunks ([`FrameAssembler::extend`]);
/// [`FrameAssembler::next_frame`] yields one complete, CRC-verified
/// frame at a time or `Ok(None)` while a frame is still partial. Header
/// fields (magic, version, declared size) are validated as soon as the
/// header is buffered, so garbage input fails fast instead of stalling
/// a length-prefixed read.
///
/// Decoding is total — any input either yields frames or a typed
/// [`WireError`], never a panic. After an error the stream offset is
/// unrecoverable; the caller must drop the connection (exactly what the
/// server does).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

/// Compact the assembler's buffer once the consumed prefix passes this
/// size, amortizing the copy against at least as many parsed bytes.
const ASSEMBLER_COMPACT_AT: usize = 64 * 1024;

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes to the stream buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// Extracts the next complete frame, if one is fully buffered.
    ///
    /// Returns `Ok(Some((kind, payload)))` for a verified frame,
    /// `Ok(None)` while the stream is mid-frame.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] on bad magic, version, an oversize
    /// declaration (checked against `max_payload`), or a CRC mismatch.
    pub fn next_frame(&mut self, max_payload: u32) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        let bytes = self.buf.get(self.start..).unwrap_or(&[]);
        if bytes.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(field(bytes, 0)?);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(field(bytes, 4)?);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let [kind] = field(bytes, 6)?;
        let declared = u32::from_le_bytes(field(bytes, 7)?);
        if declared > max_payload {
            return Err(WireError::Oversize {
                declared,
                max: max_payload,
            });
        }
        let body_len = HEADER_LEN + declared as usize;
        let total = body_len + 4;
        if bytes.len() < total {
            return Ok(None);
        }
        let body = bytes.get(..body_len).ok_or(WireError::Truncated)?;
        let received = u32::from_le_bytes(field(bytes, body_len)?);
        let computed = crc32(body);
        if computed != received {
            return Err(WireError::BadCrc { computed, received });
        }
        let payload = body.get(HEADER_LEN..).ok_or(WireError::Truncated)?.to_vec();
        self.start = self.start.saturating_add(total);
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= ASSEMBLER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some((kind, payload)))
    }
}

/// What [`read_frame`] can fail with: transport I/O or protocol.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying transport failed (includes clean EOF between
    /// frames, surfaced as `UnexpectedEof`).
    Io(std::io::Error),
    /// The bytes were read but violated the protocol.
    Wire(WireError),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Wire(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<std::io::Error> for FrameReadError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for FrameReadError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Reads one full frame (header, payload, CRC) from `reader`, enforcing
/// `max_payload`, and returns its raw kind and payload after CRC
/// verification.
///
/// # Errors
///
/// [`FrameReadError::Io`] on transport failure (including EOF) and
/// [`FrameReadError::Wire`] on any protocol violation.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_payload: u32,
) -> Result<(u8, Vec<u8>), FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(field(&header, 0)?);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic).into());
    }
    let version = u16::from_le_bytes(field(&header, 4)?);
    if version != VERSION {
        return Err(WireError::BadVersion(version).into());
    }
    let [kind] = field(&header, 6)?;
    let declared = u32::from_le_bytes(field(&header, 7)?);
    if declared > max_payload {
        return Err(WireError::Oversize {
            declared,
            max: max_payload,
        }
        .into());
    }
    let mut rest = vec![0u8; declared as usize + 4];
    reader.read_exact(&mut rest)?;
    let payload_end = declared as usize;
    let received = u32::from_le_bytes(field(&rest, payload_end)?);
    let mut crc_input = Vec::with_capacity(HEADER_LEN + payload_end);
    crc_input.extend_from_slice(&header);
    crc_input.extend_from_slice(rest.get(..payload_end).ok_or(WireError::Truncated)?);
    let computed = crc32(&crc_input);
    if computed != received {
        return Err(WireError::BadCrc { computed, received }.into());
    }
    rest.truncate(payload_end);
    Ok((kind, rest))
}

/// Reads and decodes one request frame from `reader`.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_request<R: Read>(reader: &mut R, max_payload: u32) -> Result<Request, FrameReadError> {
    let (kind, payload) = read_frame(reader, max_payload)?;
    Ok(Request::decode(kind, &payload)?)
}

/// Reads and decodes one response frame from `reader`.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_response<R: Read>(
    reader: &mut R,
    max_payload: u32,
) -> Result<Response, FrameReadError> {
    let (kind, payload) = read_frame(reader, max_payload)?;
    Ok(Response::decode(kind, &payload)?)
}

/// Writes one encoded frame to `writer`.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn write_frame<W: Write>(writer: &mut W, frame: &[u8]) -> std::io::Result<()> {
    writer.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping { token: 0xDEAD_BEEF },
            Request::Metrics,
            Request::Shutdown,
            Request::Digitize(DigitizeRequest::tone(7, 10e6, 4096)),
            Request::Digitize(DigitizeRequest {
                preset: Preset::Ideal,
                seed: 42,
                overrides: ConfigOverrides {
                    f_cr_hz: Some(55e6),
                    amplitude_v: Some(0.75),
                    thermal_noise: Some(false),
                },
                waveform: WaveformSpec::Ramp {
                    from_v: -1.0,
                    to_v: 1.0,
                },
                n_samples: 1000,
                batch_size: 128,
                deadline_ms: 2500,
            }),
            Request::Ganged(GangedRequest::tone(7, 2, 20e6, 4096)),
            Request::Ganged(GangedRequest {
                preset: Preset::Ideal,
                seed: 99,
                channels: MAX_GANGED_CHANNELS,
                mismatch: false,
                cal: GangedCal::Foreground,
                f_target_hz: 31e6,
                n_samples: 2048,
                batch_size: 512,
                deadline_ms: 10_000,
            }),
            Request::JobBatch(JobBatchRequest {
                batch_id: 11,
                campaign: "monte_carlo-0123456789abcdef".to_string(),
                kind: "die-tone-metrics".to_string(),
                deadline_ms: 30_000,
                jobs: vec![
                    JobSpec {
                        id: 0,
                        key: 0xd124_c4b6_f72f_81c2,
                        seed: 0x9e37_79b9_7f4a_7c15,
                        config: "(0, 10000000.0, 4096, 1)".to_string(),
                    },
                    JobSpec {
                        id: 1,
                        key: 2,
                        seed: 3,
                        config: String::new(),
                    },
                ],
            }),
            Request::JobBatch(JobBatchRequest {
                batch_id: 0,
                campaign: String::new(),
                kind: "probe-mix".to_string(),
                deadline_ms: 0,
                jobs: Vec::new(),
            }),
            Request::CacheQuery(CacheQueryRequest {
                campaign: "mc".to_string(),
                keys: vec![1, u64::MAX, 0],
            }),
            Request::CacheFill(CacheFillRequest {
                campaign: "mc".to_string(),
                entries: vec![
                    (7, "404020000000000,4050100000000000".to_string()),
                    (8, String::new()),
                ],
            }),
            Request::Submit(SubmitRequest {
                corr_id: 0x0123_4567_89AB_CDEF,
                body: SubmitBody::Digitize(DigitizeRequest::tone(7, 10e6, 4096)),
            }),
            Request::Submit(SubmitRequest {
                corr_id: 0,
                body: SubmitBody::Ganged(GangedRequest::tone(7, 2, 20e6, 2048)),
            }),
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong { token: 1 },
            Response::Batch {
                seq: 3,
                samples: vec![0, 1, 4095, 2048],
            },
            Response::Done(DigitizeDone {
                total_samples: 8192,
                batches: 8,
                f_in_hz: 10_009_765.625,
                stream_crc32: 0x1234_5678,
            }),
            Response::Metrics(MetricsSnapshot {
                connections: 4,
                digitizes: 10,
                p99_us: 1500,
                ..MetricsSnapshot::default()
            }),
            Response::Error {
                code: ErrorCode::NoSettlingTime,
                detail: "no settling time left at 600 MS/s".to_string(),
            },
            Response::ShutdownAck,
            Response::GangedBatch {
                seq: 5,
                values: vec![0.0, -0.5, 0.999_755_859_375, -0.0],
            },
            Response::GangedDone(GangedDone {
                total_samples: 4096,
                batches: 4,
                f_in_hz: 20_093_750.0,
                epochs_run: 7,
                converged: true,
                stream_crc32: 0x8BAD_F00D,
            }),
            Response::JobResult(JobResultBatch {
                batch_id: 11,
                outcomes: vec![
                    JobOutcome {
                        id: 0,
                        key: 10,
                        status: JobStatus::Computed,
                        value: "4050100000000000".to_string(),
                    },
                    JobOutcome {
                        id: 1,
                        key: 11,
                        status: JobStatus::Cached,
                        value: "4050100000000000".to_string(),
                    },
                    JobOutcome {
                        id: 2,
                        key: 12,
                        status: JobStatus::Failed,
                        value: "unknown job kind".to_string(),
                    },
                    JobOutcome {
                        id: 3,
                        key: 13,
                        status: JobStatus::Rejected,
                        value: "pool is draining".to_string(),
                    },
                ],
            }),
            Response::CacheHits {
                entries: vec![(1, "abc".to_string()), (2, String::new())],
            },
            Response::CacheHits {
                entries: Vec::new(),
            },
            Response::CacheFillAck { accepted: 17 },
            Response::Error {
                code: ErrorCode::Overloaded,
                detail: "admission queue full".to_string(),
            },
            Response::Tagged {
                corr_id: 42,
                inner: Box::new(Response::Batch {
                    seq: 0,
                    samples: vec![7, 4095, 0],
                }),
            },
            Response::Tagged {
                corr_id: u64::MAX,
                inner: Box::new(Response::Done(DigitizeDone {
                    total_samples: 2048,
                    batches: 2,
                    f_in_hz: 10_009_765.625,
                    stream_crc32: 0xFEED_FACE,
                })),
            },
            Response::Tagged {
                corr_id: 9,
                inner: Box::new(Response::Error {
                    code: ErrorCode::Overloaded,
                    detail: "shed".to_string(),
                }),
            },
            Response::Tagged {
                corr_id: 3,
                inner: Box::new(Response::GangedDone(GangedDone {
                    total_samples: 1024,
                    batches: 1,
                    f_in_hz: 20_093_750.0,
                    epochs_run: 3,
                    converged: true,
                    stream_crc32: 0x0BAD_CAFE,
                })),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn streamed_round_trip_through_io() {
        let mut buf = Vec::new();
        for req in sample_requests() {
            write_frame(&mut buf, &encode_request(&req)).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for req in sample_requests() {
            assert_eq!(read_request(&mut cursor, MAX_PAYLOAD).unwrap(), req);
        }
        match read_request(&mut cursor, MAX_PAYLOAD) {
            Err(FrameReadError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_magic_version_crc_are_typed_errors() {
        let frame = encode_request(&Request::Ping { token: 9 });
        let mut bad_magic = frame.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_request(&bad_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut bad_version = frame.clone();
        bad_version[4] = 0xFE;
        assert!(matches!(
            decode_request(&bad_version),
            Err(WireError::BadVersion(_))
        ));
        let mut bad_payload = frame.clone();
        let n = bad_payload.len();
        bad_payload[n - 6] ^= 0x01; // payload byte: CRC must catch it
        assert!(matches!(
            decode_request(&bad_payload),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_at_every_length_is_rejected_not_panicking() {
        let frame = encode_request(&Request::Digitize(DigitizeRequest::tone(1, 10e6, 512)));
        for len in 0..frame.len() {
            assert!(
                decode_request(&frame[..len]).is_err(),
                "truncated to {len} must not decode"
            );
        }
    }

    #[test]
    fn oversize_declaration_is_rejected_before_reading() {
        let mut frame = encode_request(&Request::Metrics);
        frame[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&frame),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn ganged_channel_counts_outside_bounds_are_malformed() {
        let good = Request::Ganged(GangedRequest::tone(1, 2, 20e6, 1024));
        let Request::Ganged(template) = &good else {
            unreachable!()
        };
        for channels in [0u8, MAX_GANGED_CHANNELS + 1, 255] {
            let bad = Request::Ganged(GangedRequest {
                channels,
                ..template.clone()
            });
            // Encode bypasses decode validation; the decoder must reject.
            let frame = encode_request(&bad);
            assert_eq!(
                decode_request(&frame),
                Err(WireError::Malformed("channel count")),
                "channels = {channels}"
            );
        }
        // The boundary values decode fine.
        for channels in [1u8, MAX_GANGED_CHANNELS] {
            let ok = Request::Ganged(GangedRequest {
                channels,
                ..template.clone()
            });
            assert_eq!(decode_request(&encode_request(&ok)).unwrap(), ok);
        }
    }

    #[test]
    fn ganged_flag_and_discriminant_bytes_are_malformed_not_panics() {
        // Corrupt the mismatch flag (offset: preset 1 + seed 8 + channels 1).
        let frame_bytes = |req: &Request| encode_request(req);
        let base = frame_bytes(&Request::Ganged(GangedRequest::tone(1, 2, 20e6, 1024)));
        let payload_start = HEADER_LEN;
        let patch = |offset: usize, value: u8| {
            let mut f = base.clone();
            f[payload_start + offset] = value;
            let body_len = f.len() - 4;
            let crc = crc32(&f[..body_len]);
            f[body_len..].copy_from_slice(&crc.to_le_bytes());
            f
        };
        assert_eq!(
            decode_request(&patch(10, 7)),
            Err(WireError::Malformed("mismatch flag"))
        );
        assert_eq!(
            decode_request(&patch(11, 9)),
            Err(WireError::Malformed("ganged cal discriminant"))
        );
    }

    #[test]
    fn oversized_job_and_cache_counts_are_malformed() {
        // Forge a JobBatch frame whose declared job count exceeds the
        // cap but whose payload is otherwise well-formed framing: the
        // count check must fire before any per-job reads.
        let mut w = PayloadWriter::new();
        w.u64(1); // batch_id
        w.str("c");
        w.str("k");
        w.u32(0); // deadline
        w.u32(MAX_BATCH_JOBS + 1);
        let frame = encode_frame(KIND_JOB_BATCH, &w.into_bytes());
        assert_eq!(
            decode_request(&frame),
            Err(WireError::Malformed("job count"))
        );

        let mut w = PayloadWriter::new();
        w.str("c");
        w.u32(MAX_CACHE_ENTRIES + 1);
        let frame = encode_frame(KIND_CACHE_QUERY, &w.into_bytes());
        assert_eq!(
            decode_request(&frame),
            Err(WireError::Malformed("cache key count"))
        );

        let mut w = PayloadWriter::new();
        w.str("c");
        w.u32(MAX_CACHE_ENTRIES + 1);
        let frame = encode_frame(KIND_CACHE_FILL, &w.into_bytes());
        assert_eq!(
            decode_request(&frame),
            Err(WireError::Malformed("cache entry count"))
        );

        let mut w = PayloadWriter::new();
        w.u64(1);
        w.u32(MAX_BATCH_JOBS + 1);
        let frame = encode_frame(KIND_JOB_RESULT, &w.into_bytes());
        assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("outcome count"))
        );

        let mut w = PayloadWriter::new();
        w.u32(MAX_CACHE_ENTRIES + 1);
        let frame = encode_frame(KIND_CACHE_HITS, &w.into_bytes());
        assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("cache hit count"))
        );
    }

    #[test]
    fn invalid_job_status_byte_is_malformed_not_panic() {
        let mut w = PayloadWriter::new();
        w.u64(1); // batch_id
        w.u32(1); // one outcome
        w.u64(0); // id
        w.u64(0); // key
        w.u8(4); // invalid status discriminant
        w.str("x");
        let frame = encode_frame(KIND_JOB_RESULT, &w.into_bytes());
        assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("job status discriminant"))
        );
    }

    #[test]
    fn job_frames_truncated_at_every_length_are_rejected() {
        let frames = [
            encode_request(&Request::JobBatch(JobBatchRequest {
                batch_id: 5,
                campaign: "mc".to_string(),
                kind: "die-tone-metrics".to_string(),
                deadline_ms: 1000,
                jobs: vec![JobSpec {
                    id: 0,
                    key: 1,
                    seed: 2,
                    config: "(0, 10000000.0, 4096, 1)".to_string(),
                }],
            })),
            encode_response(&Response::JobResult(JobResultBatch {
                batch_id: 5,
                outcomes: vec![JobOutcome {
                    id: 0,
                    key: 1,
                    status: JobStatus::Computed,
                    value: "4050100000000000".to_string(),
                }],
            })),
        ];
        for frame in &frames {
            for len in 0..frame.len() {
                assert!(
                    decode_request(&frame[..len]).is_err()
                        && decode_response(&frame[..len]).is_err(),
                    "truncated to {len} must not decode"
                );
            }
        }
    }

    #[test]
    fn ganged_values_survive_the_wire_bit_exactly() {
        let values = vec![0.0, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, -0.999];
        let resp = Response::GangedBatch {
            seq: 0,
            values: values.clone(),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        let Response::GangedBatch { values: got, .. } = back else {
            panic!("wrong kind");
        };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&values));
    }

    #[test]
    fn tagged_inner_kind_is_whitelisted() {
        // Forge a Tagged frame wrapping a Pong — a kind the stream
        // demultiplexer must never see inside a correlation stream.
        let mut w = PayloadWriter::new();
        w.u64(5);
        w.u8(KIND_PONG);
        w.u64(1); // pong token
        let frame = encode_frame(KIND_TAGGED, &w.into_bytes());
        assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("tagged inner kind"))
        );
        // Nesting Tagged inside Tagged is likewise rejected.
        let mut w = PayloadWriter::new();
        w.u64(5);
        w.u8(KIND_TAGGED);
        let frame = encode_frame(KIND_TAGGED, &w.into_bytes());
        assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("tagged inner kind"))
        );
    }

    #[test]
    fn submit_body_discriminant_is_validated() {
        let mut w = PayloadWriter::new();
        w.u64(1); // corr_id
        w.u8(2); // invalid body tag
        let frame = encode_frame(KIND_SUBMIT, &w.into_bytes());
        assert_eq!(
            decode_request(&frame),
            Err(WireError::Malformed("submit body discriminant"))
        );
    }

    #[test]
    fn submit_and_tagged_truncation_sweeps_are_rejected_not_panicking() {
        let frames = [
            encode_request(&Request::Submit(SubmitRequest {
                corr_id: 77,
                body: SubmitBody::Digitize(DigitizeRequest::tone(1, 10e6, 512)),
            })),
            encode_response(&Response::Tagged {
                corr_id: 77,
                inner: Box::new(Response::Batch {
                    seq: 1,
                    samples: vec![1, 2, 3],
                }),
            }),
        ];
        for frame in &frames {
            for len in 0..frame.len() {
                assert!(
                    decode_request(&frame[..len]).is_err()
                        && decode_response(&frame[..len]).is_err(),
                    "truncated to {len} must not decode"
                );
            }
        }
    }

    #[test]
    fn assembler_reassembles_frames_from_arbitrary_chunkings() {
        let mut stream = Vec::new();
        for req in sample_requests() {
            stream.extend_from_slice(&encode_request(&req));
        }
        for chunk in [1usize, 2, 3, 7, 11, 64, 1024] {
            let mut asm = FrameAssembler::new();
            let mut decoded = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.extend(piece);
                while let Some((kind, payload)) = asm.next_frame(MAX_PAYLOAD).unwrap() {
                    decoded.push(Request::decode(kind, &payload).unwrap());
                }
            }
            assert_eq!(decoded, sample_requests(), "chunk size {chunk}");
            assert_eq!(asm.buffered(), 0);
        }
    }

    #[test]
    fn assembler_rejects_garbage_as_soon_as_the_header_lands() {
        let mut asm = FrameAssembler::new();
        asm.extend(&[0xFF; HEADER_LEN]);
        assert!(matches!(
            asm.next_frame(MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut asm = FrameAssembler::new();
        let mut frame = encode_request(&Request::Metrics);
        frame[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        asm.extend(&frame[..HEADER_LEN]);
        assert!(matches!(
            asm.next_frame(MAX_PAYLOAD),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn assembler_catches_crc_corruption_mid_stream() {
        let good = encode_request(&Request::Ping { token: 3 });
        let mut bad = encode_request(&Request::Ping { token: 4 });
        let n = bad.len();
        bad[n - 6] ^= 0x40; // flip a payload bit; CRC must catch it
        let mut asm = FrameAssembler::new();
        asm.extend(&good);
        asm.extend(&bad);
        assert!(asm.next_frame(MAX_PAYLOAD).unwrap().is_some());
        assert!(matches!(
            asm.next_frame(MAX_PAYLOAD),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn assembler_waits_while_a_frame_is_partial() {
        let frame = encode_request(&Request::Digitize(DigitizeRequest::tone(1, 10e6, 256)));
        let mut asm = FrameAssembler::new();
        for (i, &byte) in frame.iter().enumerate() {
            asm.extend(&[byte]);
            let got = asm.next_frame(MAX_PAYLOAD).unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "byte {i}: frame incomplete");
            } else {
                let (kind, payload) = got.expect("final byte completes the frame");
                assert_eq!(
                    Request::decode(kind, &payload).unwrap(),
                    Request::Digitize(DigitizeRequest::tone(1, 10e6, 256))
                );
            }
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn f64_fields_are_bit_exact_on_the_wire() {
        for value in [0.0, -0.0, f64::MIN_POSITIVE, 10e6 + 1e-7, f64::INFINITY] {
            let req = Request::Digitize(DigitizeRequest {
                waveform: WaveformSpec::Dc { level_v: value },
                ..DigitizeRequest::tone(0, 0.0, 16)
            });
            let back = decode_request(&encode_request(&req)).unwrap();
            let Request::Digitize(d) = back else {
                panic!("wrong kind");
            };
            let WaveformSpec::Dc { level_v } = d.waveform else {
                panic!("wrong waveform");
            };
            assert_eq!(level_v.to_bits(), value.to_bits());
        }
    }
}
