//! The server's metrics registry: lock-free counters, an in-flight
//! gauge, and a log-linear latency histogram.
//!
//! The registry is fed from two directions:
//!
//! * the reactor counts requests, connections, sheds, and error frames
//!   directly;
//! * the digitize job pool reports through the registry's
//!   [`RunObserver`] implementation — `on_job_start` raises the
//!   in-flight gauge, `on_job_finish` lowers it, records the job's wall
//!   time into the histogram once per logical request the job served
//!   (`JobReport::requests` — a coalesced lane batch counts each
//!   member), and accumulates its streamed-sample credit.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into the wire-level
//! [`MetricsSnapshot`] answered to a `Metrics` request, including
//! p50/p90/p99 latency estimated from the histogram (upper bucket
//! bounds, so estimates are conservative).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adc_runtime::{JobId, JobReport, RunObserver};

use crate::protocol::MetricsSnapshot;

/// Sub-buckets per octave (and the linear range's width): 16 gives a
/// worst-case relative quantile error of 1/16 = 6.25%.
const SUBS: usize = 16;
/// First octave exponent covered by log-linear buckets; values below
/// `2^LINEAR_BITS` µs get one exact bucket each.
const LINEAR_BITS: usize = 4;
/// Highest octave exponent covered (latencies to ~2^40 µs ≈ 12.7 days;
/// anything larger clamps into the final bucket).
const MAX_BITS: usize = 40;
/// Histogram bucket count: 16 exact sub-16 µs buckets plus 16 per
/// octave from 2^4 to 2^40 µs.
const BUCKETS: usize = SUBS + (MAX_BITS - LINEAR_BITS) * SUBS;

/// A fixed-layout log-linear latency histogram.
///
/// Latencies under 16 µs land in exact 1 µs buckets; above that each
/// power-of-two octave splits into 16 equal sub-buckets, so the upper
/// bound reported for any observation overshoots it by at most 6.25% —
/// fine-grained enough that a 2–4 ms serving distribution no longer
/// collapses into one "4095 µs" bucket.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(us: u64) -> usize {
        if us < SUBS as u64 {
            return us as usize;
        }
        let octave = 63 - u64::leading_zeros(us) as usize;
        let shift = octave - LINEAR_BITS;
        // 2^octave <= us < 2^(octave+1), so (us >> shift) is in
        // [16, 31] and the subtraction below cannot underflow.
        let sub = ((us >> shift) as usize).saturating_sub(SUBS);
        (SUBS + (octave - LINEAR_BITS) * SUBS + sub).min(BUCKETS - 1)
    }

    /// Inclusive upper bound (µs) of bucket `i` — what quantile queries
    /// report, hence the ≤6.25% conservative overshoot.
    fn upper_bound_us(i: usize) -> u64 {
        if i < SUBS {
            return i as u64;
        }
        let octave = LINEAR_BITS + (i - SUBS) / SUBS;
        let sub = ((i - SUBS) % SUBS) as u64;
        let width = 1u64 << (octave - LINEAR_BITS);
        (SUBS as u64 + sub) * width + width - 1
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_n(latency, 1);
    }

    /// Records `n` observations of the same latency — how a coalesced
    /// batch accounts each member request it served.
    pub fn record_n(&self, latency: Duration, n: u64) {
        if n == 0 {
            return;
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_for(us)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The latency (microseconds, upper bucket bound) at or below which
    /// `quantile` of observations fall; `0` with no observations.
    pub fn quantile_us(&self, quantile: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_bound_us(i);
            }
        }
        Self::upper_bound_us(BUCKETS - 1)
    }
}

/// Counters and gauges for one server instance. All methods are cheap
/// and callable from any thread.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    connections: AtomicU64,
    pings: AtomicU64,
    digitizes: AtomicU64,
    metrics_requests: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
    completed: AtomicU64,
    samples_streamed: AtomicU64,
    job_batches: AtomicU64,
    cluster_cache_hits: AtomicU64,
    overloaded: AtomicU64,
    coalesced: AtomicU64,
    latency: LatencyHistogram,
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a served ping.
    pub fn ping(&self) {
        self.pings.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an accepted digitize request.
    pub fn digitize(&self) {
        self.digitizes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a served metrics request.
    pub fn metrics_request(&self) {
        self.metrics_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an error frame sent to a client.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed by admission control (an `Overloaded`
    /// frame sent).
    pub fn overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits `n` requests served inside a coalesced lane batch of two
    /// or more.
    pub fn coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
    }

    /// Credits samples streamed to a client.
    pub fn samples(&self, n: u64) {
        self.samples_streamed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts an accepted cluster job batch.
    pub fn job_batch(&self) {
        self.job_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cluster job answered from the warm cache.
    pub fn cluster_cache_hit(&self) {
        self.cluster_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the registry into a wire snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            digitizes: self.digitizes.load(Ordering::Relaxed),
            metrics_requests: self.metrics_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            samples_streamed: self.samples_streamed.load(Ordering::Relaxed),
            job_batches: self.job_batches.load(Ordering::Relaxed),
            cluster_cache_hits: self.cluster_cache_hits.load(Ordering::Relaxed),
            p50_us: self.latency.quantile_us(0.50),
            p90_us: self.latency.quantile_us(0.90),
            p99_us: self.latency.quantile_us(0.99),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

impl RunObserver for MetricsRegistry {
    fn on_job_start(&self, _id: JobId, _attempt: u32) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        adc_trace::counter("in_flight", now);
    }

    fn on_job_finish(&self, _id: JobId, report: &JobReport) {
        let now = self
            .in_flight
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        // One histogram entry per logical request the job served (a
        // coalesced batch ran its members together, so each member
        // experienced the batch's wall time); failed jobs that served
        // nothing still record one entry, as before.
        self.latency.record_n(report.wall, report.requests.max(1));
        self.samples_streamed
            .fetch_add(report.samples, Ordering::Relaxed);
        // Server jobs credit requests only for members they actually
        // completed, so the counter is exact under partial failure.
        self.completed.fetch_add(report.requests, Ordering::Relaxed);
        // Mirror the gauge and the histogram's input into the trace
        // stream: the same wall time lands in both, so a trace profile
        // and a Metrics snapshot agree on request latency.
        adc_trace::counter("in_flight", now);
        adc_trace::counter(
            "request_latency_us",
            u64::try_from(report.wall.as_micros()).unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_exact_below_16us_and_log_linear_above() {
        for us in 0..16u64 {
            assert_eq!(LatencyHistogram::bucket_for(us), us as usize);
            assert_eq!(LatencyHistogram::upper_bound_us(us as usize), us);
        }
        // 2^4..2^5 is the first split octave: 16 one-µs sub-buckets.
        assert_eq!(LatencyHistogram::bucket_for(16), 16);
        assert_eq!(LatencyHistogram::bucket_for(31), 31);
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_relative_error_is_within_a_sixteenth() {
        // The reported upper bound never undershoots and overshoots by
        // at most us/16 — the ~10%-relative-error requirement.
        for us in (0..4096u64)
            .chain((1..200).map(|k| k * 4093))
            .chain((1..50).map(|k| k * 1_048_573))
        {
            let ub = LatencyHistogram::upper_bound_us(LatencyHistogram::bucket_for(us));
            assert!(ub >= us, "upper bound {ub} undershoots {us}");
            assert!(
                ub - us <= us / 16,
                "upper bound {ub} overshoots {us} by more than 6.25%"
            );
        }
    }

    #[test]
    fn bucket_upper_bounds_are_monotonic() {
        let mut prev = 0;
        for i in 1..BUCKETS {
            let ub = LatencyHistogram::upper_bound_us(i);
            assert!(ub > prev, "bucket {i}: {ub} <= {prev}");
            prev = ub;
        }
    }

    #[test]
    fn quantiles_are_tight_conservative_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [100u64, 200, 400, 800, 100_000] {
            h.record(Duration::from_micros(us));
        }
        // p50 = 400 µs; its bucket spans 400..=415 µs.
        let p50 = h.quantile_us(0.5);
        assert!((400..=415).contains(&p50), "p50 {p50}");
        // p99 = 100000 µs; its bucket spans 98304..=102399 µs.
        let p99 = h.quantile_us(0.99);
        assert!((100_000..=102_399).contains(&p99), "p99 {p99}");
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.5));
    }

    #[test]
    fn observer_hooks_drive_gauge_histogram_and_counters() {
        use adc_runtime::JobError;
        let reg = MetricsRegistry::new();
        reg.on_job_start(JobId(0), 1);
        assert_eq!(reg.snapshot().in_flight, 1);
        reg.on_job_finish(
            JobId(0),
            &JobReport {
                id: JobId(0),
                attempts: 1,
                wall: Duration::from_micros(300),
                samples: 4096,
                requests: 1,
                error: None,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.samples_streamed, 4096);
        assert!(snap.p50_us >= 300);

        reg.on_job_start(JobId(1), 1);
        reg.on_job_finish(
            JobId(1),
            &JobReport {
                id: JobId(1),
                attempts: 1,
                wall: Duration::from_micros(10),
                samples: 0,
                requests: 0,
                error: Some(JobError::TimedOut),
            },
        );
        assert_eq!(reg.snapshot().completed, 1, "failed job not completed");
    }

    #[test]
    fn coalesced_jobs_complete_once_per_member_request() {
        let reg = MetricsRegistry::new();
        reg.on_job_start(JobId(0), 1);
        reg.on_job_finish(
            JobId(0),
            &JobReport {
                id: JobId(0),
                attempts: 1,
                wall: Duration::from_micros(5_000),
                samples: 8 * 2048,
                requests: 8,
                error: None,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.completed, 8, "one completion per coalesced member");
        assert_eq!(reg.latency.count(), 8, "one histogram entry per member");
        assert_eq!(snap.in_flight, 0);
    }

    #[test]
    fn request_counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.connection_opened();
        reg.ping();
        reg.ping();
        reg.digitize();
        reg.metrics_request();
        reg.error();
        reg.overloaded();
        reg.coalesced(3);
        let snap = reg.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.pings, 2);
        assert_eq!(snap.digitizes, 1);
        assert_eq!(snap.metrics_requests, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.coalesced, 3);
    }
}
