//! The server's metrics registry: lock-free counters, an in-flight
//! gauge, and a log-bucketed latency histogram.
//!
//! The registry is fed from two directions:
//!
//! * the connection loop counts requests, connections, and error
//!   frames directly;
//! * the digitize job pool reports through the registry's
//!   [`RunObserver`] implementation — `on_job_start` raises the
//!   in-flight gauge, `on_job_finish` lowers it, records the job's wall
//!   time into the histogram, and accumulates its streamed-sample
//!   credit.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into the wire-level
//! [`MetricsSnapshot`] answered to a `Metrics` request, including
//! p50/p90/p99 latency estimated from the histogram (upper bucket
//! bounds, so estimates are conservative).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adc_runtime::{JobId, JobReport, RunObserver};

use crate::protocol::MetricsSnapshot;

/// Histogram bucket count: bucket `i` covers latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
const BUCKETS: usize = 40;

/// A fixed-layout latency histogram with power-of-two microsecond
/// buckets (sub-microsecond lands in bucket 0, ~18-minute-plus tails in
/// the final open bucket).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            (63 - u64::leading_zeros(us) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The latency (microseconds, upper bucket bound) at or below which
    /// `quantile` of observations fall; `0` with no observations.
    pub fn quantile_us(&self, quantile: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1 µs.
                return (1u64 << (i + 1)) - 1;
            }
        }
        (1u64 << BUCKETS) - 1
    }
}

/// Counters and gauges for one server instance. All methods are cheap
/// and callable from any thread.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    connections: AtomicU64,
    pings: AtomicU64,
    digitizes: AtomicU64,
    metrics_requests: AtomicU64,
    errors: AtomicU64,
    in_flight: AtomicU64,
    completed: AtomicU64,
    samples_streamed: AtomicU64,
    job_batches: AtomicU64,
    cluster_cache_hits: AtomicU64,
    latency: LatencyHistogram,
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a served ping.
    pub fn ping(&self) {
        self.pings.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an accepted digitize request.
    pub fn digitize(&self) {
        self.digitizes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a served metrics request.
    pub fn metrics_request(&self) {
        self.metrics_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an error frame sent to a client.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits samples streamed to a client.
    pub fn samples(&self, n: u64) {
        self.samples_streamed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts an accepted cluster job batch.
    pub fn job_batch(&self) {
        self.job_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cluster job answered from the warm cache.
    pub fn cluster_cache_hit(&self) {
        self.cluster_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the registry into a wire snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            digitizes: self.digitizes.load(Ordering::Relaxed),
            metrics_requests: self.metrics_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            samples_streamed: self.samples_streamed.load(Ordering::Relaxed),
            job_batches: self.job_batches.load(Ordering::Relaxed),
            cluster_cache_hits: self.cluster_cache_hits.load(Ordering::Relaxed),
            p50_us: self.latency.quantile_us(0.50),
            p90_us: self.latency.quantile_us(0.90),
            p99_us: self.latency.quantile_us(0.99),
        }
    }
}

impl RunObserver for MetricsRegistry {
    fn on_job_start(&self, _id: JobId, _attempt: u32) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        adc_trace::counter("in_flight", now);
    }

    fn on_job_finish(&self, _id: JobId, report: &JobReport) {
        let now = self
            .in_flight
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        self.latency.record(report.wall);
        self.samples_streamed
            .fetch_add(report.samples, Ordering::Relaxed);
        if report.error.is_none() {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
        // Mirror the gauge and the histogram's input into the trace
        // stream: the same wall time lands in both, so a trace profile
        // and a Metrics snapshot agree on request latency.
        adc_trace::counter("in_flight", now);
        adc_trace::counter(
            "request_latency_us",
            u64::try_from(report.wall.as_micros()).unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(LatencyHistogram::bucket_for(0), 0);
        assert_eq!(LatencyHistogram::bucket_for(1), 0);
        assert_eq!(LatencyHistogram::bucket_for(2), 1);
        assert_eq!(LatencyHistogram::bucket_for(3), 1);
        assert_eq!(LatencyHistogram::bucket_for(1024), 10);
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [100u64, 200, 400, 800, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.5);
        assert!((200..=511).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 100_000, "p99 {p99}");
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.5));
    }

    #[test]
    fn observer_hooks_drive_gauge_histogram_and_counters() {
        use adc_runtime::JobError;
        let reg = MetricsRegistry::new();
        reg.on_job_start(JobId(0), 1);
        assert_eq!(reg.snapshot().in_flight, 1);
        reg.on_job_finish(
            JobId(0),
            &JobReport {
                id: JobId(0),
                attempts: 1,
                wall: Duration::from_micros(300),
                samples: 4096,
                error: None,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.samples_streamed, 4096);
        assert!(snap.p50_us >= 300);

        reg.on_job_start(JobId(1), 1);
        reg.on_job_finish(
            JobId(1),
            &JobReport {
                id: JobId(1),
                attempts: 1,
                wall: Duration::from_micros(10),
                samples: 0,
                error: Some(JobError::TimedOut),
            },
        );
        assert_eq!(reg.snapshot().completed, 1, "failed job not completed");
    }

    #[test]
    fn request_counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.connection_opened();
        reg.ping();
        reg.ping();
        reg.digitize();
        reg.metrics_request();
        reg.error();
        let snap = reg.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.pings, 2);
        assert_eq!(snap.digitizes, 1);
        assert_eq!(snap.metrics_requests, 1);
        assert_eq!(snap.errors, 1);
    }
}
