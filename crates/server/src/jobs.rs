//! Remote campaign-job execution: the [`JobRunner`] capability and the
//! per-campaign warm caches a serving host keeps.
//!
//! A cluster peer ships jobs as *rendered* canonical configs (the wire
//! cannot carry arbitrary `Debug` types), so a host needs a way to turn
//! `(kind, config, seed)` back into a computation. That mapping is the
//! [`JobRunner`]: a registry of named job kinds installed into
//! [`ServerConfig`](crate::ServerConfig) when the host opts into
//! cluster duty. The concrete registry lives in `adc-cluster` (it knows
//! the campaign workloads); this module only defines the capability so
//! the server stays workload-agnostic.
//!
//! Results are exchanged and stored as [`CacheCodec`]-encoded lines —
//! exactly the bytes `adc-runtime` persists — so a value computed here,
//! a value from another host's fill, and a value from a local on-disk
//! cache are interchangeable bit-for-bit.
//!
//! [`CacheCodec`]: adc_runtime::CacheCodec

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use adc_runtime::ResultCache;

/// Why a job runner could not produce a result.
///
/// Every variant is *deterministic*: the same `(kind, config, seed)`
/// fails identically on any host, so the server reports these as
/// [`JobStatus::Failed`](crate::protocol::JobStatus::Failed) (do not
/// resubmit) rather than `Rejected` (resubmit elsewhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobRunError {
    /// No runner is registered under the requested kind.
    UnknownKind(String),
    /// The rendered config did not decode for this kind.
    BadConfig(String),
    /// The computation itself reported an error (e.g. converter build).
    Failed(String),
}

impl std::fmt::Display for JobRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownKind(kind) => write!(f, "unknown job kind {kind:?}"),
            Self::BadConfig(detail) => write!(f, "bad job config: {detail}"),
            Self::Failed(detail) => write!(f, "job failed: {detail}"),
        }
    }
}

impl std::error::Error for JobRunError {}

/// The capability a host needs to execute [`Request::JobBatch`] work:
/// map a `(kind, rendered config, derived seed)` triple to an encoded
/// result line.
///
/// Implementations must be pure functions of their inputs — the cluster
/// layer's bit-identity guarantee (any host, any schedule, same bits)
/// holds exactly as far as this contract does.
///
/// [`Request::JobBatch`]: crate::protocol::Request::JobBatch
pub trait JobRunner: Send + Sync {
    /// Runs one job, returning the `CacheCodec`-encoded result line.
    ///
    /// # Errors
    ///
    /// A deterministic failure (unknown kind, malformed config, or a
    /// computation error); see [`JobRunError`].
    fn run(&self, kind: &str, config: &str, seed: u64) -> Result<String, JobRunError>;
}

/// Per-campaign warm caches, created lazily and preloaded from disk on
/// first touch.
///
/// Each campaign gets its own [`ResultCache`] so one host can serve
/// many campaigns without cross-pollinating their persisted files.
/// Keys are campaign-salted, so even a shared map would be *correct* —
/// the segregation is hygiene (per-file stats, targeted GC).
pub struct CampaignCaches {
    dir: Option<PathBuf>,
    map: Mutex<BTreeMap<String, Arc<ResultCache>>>,
}

impl std::fmt::Debug for CampaignCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignCaches")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl CampaignCaches {
    /// A cache set mirrored to `dir`, or memory-only when `None`.
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self {
            dir,
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// The cache for `campaign`, created (and preloaded from disk, when
    /// disk-backed) on first use.
    pub fn for_campaign(&self, campaign: &str) -> Arc<ResultCache> {
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cache) = map.get(campaign) {
            return Arc::clone(cache);
        }
        let cache = match &self.dir {
            // Fall back to memory-only if the directory is unusable —
            // serving must not die on cache I/O.
            Some(dir) => ResultCache::on_disk(dir).unwrap_or_else(|_| ResultCache::in_memory()),
            None => ResultCache::in_memory(),
        };
        cache.preload(campaign);
        let cache = Arc::new(cache);
        map.insert(campaign.to_string(), Arc::clone(&cache));
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_runtime::CacheCodec;

    #[test]
    fn caches_are_per_campaign_and_persistent() {
        let dir = std::env::temp_dir().join("adc_server_campaign_caches_test");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let caches = CampaignCaches::new(Some(dir.clone()));
            let a = caches.for_campaign("camp_a");
            let b = caches.for_campaign("camp_b");
            a.put_line(1, &2.5f64.encode());
            assert_eq!(b.get_line(1), None, "campaign caches are segregated");
            a.persist("camp_a").unwrap();
            assert!(Arc::ptr_eq(&a, &caches.for_campaign("camp_a")));
        }
        {
            let caches = CampaignCaches::new(Some(dir.clone()));
            let a = caches.for_campaign("camp_a");
            assert_eq!(a.get::<f64>(1), Some(2.5), "preloaded from disk");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_only_caches_work_without_a_dir() {
        let caches = CampaignCaches::new(None);
        let c = caches.for_campaign("x");
        c.put_line(7, "abc");
        assert_eq!(c.get_line(7), Some("abc".to_string()));
        assert!(c.persist("x").is_ok(), "persist is a no-op in memory");
    }
}
