//! # adc-server
//!
//! A streaming digitization service over the behavioral pipeline ADC:
//! the simulator from `adc-pipeline`/`adc-testbench`, served over TCP
//! behind a length-prefixed, CRC-checked binary protocol.
//!
//! The paper's part is a *component* — other systems hand it a waveform
//! and clock and read back codes. This crate gives the behavioral model
//! the same shape: a client names a config preset, a fabrication seed,
//! and a stimulus; the server fabricates the die, converts the record,
//! and streams the codes back in batches. Because the server runs the
//! exact in-process code path (`MeasurementSession` on an
//! `adc-runtime` pool), the streamed samples are **bit-identical** to a
//! direct library call with the same config and seed — the service
//! boundary adds transport, not nondeterminism.
//!
//! ## Layers
//!
//! * [`protocol`] — the wire format: framing (magic, version, kind,
//!   length, CRC-32 trailer), request/response payload codecs, and
//!   total, panic-free decoding with typed [`protocol::WireError`]s.
//! * [`server`] — configuration, lifecycle, and the served
//!   computations, dispatched onto a [`adc_runtime::JobPool`] with
//!   cooperative per-request deadlines and graceful
//!   drain-then-shutdown. The socket side is a readiness-driven
//!   reactor: one thread multiplexes every connection over `poll(2)`,
//!   pipelines requests under client-chosen correlation ids (out-of-
//!   order completion), coalesces identical tone requests into
//!   lane-parallel jobs, and sheds overload from bounded admission
//!   queues with typed [`ErrorCode::Overloaded`] frames.
//! * [`metrics`] — lock-free request counters, an in-flight gauge, and
//!   a log-linear latency histogram (~6% relative error) fed from the
//!   pool's [`adc_runtime::RunObserver`] hooks; snapshots answer
//!   `Metrics` requests.
//! * [`client`] — a blocking [`Client`] for one-at-a-time calls, and a
//!   [`PipelinedClient`] that keeps many correlated requests in flight
//!   on one connection and yields completions in server finish order.
//!
//! Besides single-die digitization, the server speaks a **ganged**
//! mode ([`GangedRequest`]): it fabricates an M-way time-interleaved
//! array (optionally with the typical skew/bandwidth mismatch draw),
//! aligns it raw / foreground / background-calibrated, and streams the
//! interleaved record as bit-exact `f64` values — identical to an
//! in-process [`adc_calib::GangedScenario`] capture of the same
//! request (see [`ganged_scenario`] for the exact mapping).
//!
//! A host can additionally opt into **cluster duty** by installing a
//! [`JobRunner`] (and optionally a cache directory) in its
//! [`ServerConfig`]: it then executes [`JobBatch`](Request::JobBatch)
//! campaign work on its job pool, answers
//! [`CacheQuery`](Request::CacheQuery) probes from per-campaign warm
//! caches ([`jobs::CampaignCaches`]), and merges
//! [`CacheFill`](Request::CacheFill) entries from peers. Results travel
//! as `CacheCodec`-encoded lines under `adc-runtime` canonical keys, so
//! remote and local results are interchangeable bit-for-bit; the
//! scheduling side lives in the `adc-cluster` crate.
//!
//! ## Quick start
//!
//! ```
//! use adc_server::{Client, DigitizeRequest, Server, ServerConfig};
//!
//! let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let result = client.digitize(&DigitizeRequest::tone(7, 10e6, 1024)).unwrap();
//! assert_eq!(result.samples.len(), 1024);
//! client.shutdown().unwrap();
//! join.join().unwrap().unwrap();
//! ```

pub mod client;
pub mod jobs;
pub mod metrics;
pub mod protocol;
mod reactor;
pub mod server;

pub use client::{
    Client, ClientError, DigitizeResult, GangedResult, PipelinedClient, PipelinedOutcome,
};
pub use jobs::{CampaignCaches, JobRunError, JobRunner};
pub use metrics::{LatencyHistogram, MetricsRegistry};
pub use protocol::{
    CacheFillRequest, CacheQueryRequest, ConfigOverrides, DigitizeDone, DigitizeRequest, ErrorCode,
    GangedCal, GangedDone, GangedRequest, JobBatchRequest, JobOutcome, JobResultBatch, JobSpec,
    JobStatus, MetricsSnapshot, Preset, Request, Response, SubmitBody, SubmitRequest, WaveformSpec,
    WireError, MAX_BATCH_JOBS, MAX_CACHE_ENTRIES,
};
pub use server::{
    ganged_scenario, preset_config, Server, ServerConfig, ServerHandle, GANGED_BACKGROUND_EPOCHS,
    GANGED_BACKGROUND_EPOCH_LEN, GANGED_FOREGROUND_AVERAGES,
};
