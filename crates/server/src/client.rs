//! A blocking client for the digitization service.
//!
//! [`Client`] owns one connection and exposes the protocol as plain
//! calls: [`Client::ping`], [`Client::digitize`] (reassembles the
//! streamed batches and verifies the stream CRC), [`Client::metrics`],
//! and [`Client::shutdown`]. Requests on one client are sequential —
//! for concurrent load, open one client per thread, which is also how
//! the server parallelizes work across its pool.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    self, encode_request, CacheFillRequest, CacheQueryRequest, DigitizeDone, DigitizeRequest,
    ErrorCode, FrameReadError, GangedDone, GangedRequest, JobBatchRequest, JobResultBatch,
    MetricsSnapshot, Request, Response, WireError,
};
use crate::server::{stream_crc, value_stream_crc};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a frame this client could not decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request in flight.
    UnexpectedResponse(&'static str),
    /// The reassembled stream failed a local consistency check.
    StreamCorrupt(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Server { code, detail } => write!(f, "server error ({code:?}): {detail}"),
            Self::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
            Self::StreamCorrupt(detail) => write!(f, "stream corrupt: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(io) => Self::Io(io),
            FrameReadError::Wire(w) => Self::Wire(w),
        }
    }
}

/// A completed digitization: the full reassembled record plus the
/// server's completion summary.
#[derive(Debug, Clone)]
pub struct DigitizeResult {
    /// The converted codes, in order.
    pub samples: Vec<u16>,
    /// The server's end-of-stream summary (exact stimulus frequency,
    /// batch count, stream CRC).
    pub done: DigitizeDone,
}

/// A completed ganged digitization: the reassembled interleaved record
/// (reconstructed volts, bit-exact) plus the server's summary.
#[derive(Debug, Clone)]
pub struct GangedResult {
    /// The interleaved record values, in order.
    pub values: Vec<f64>,
    /// The server's end-of-stream summary (stimulus frequency,
    /// calibration epochs, convergence, stream CRC).
    pub done: GangedDone,
}

/// One blocking connection to an `adc-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
}

impl Client {
    /// Connects with the protocol's default payload ceiling.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_payload: protocol::MAX_PAYLOAD,
        })
    }

    /// Sets a read timeout on the underlying socket (`None` blocks
    /// forever). Useful around [`Client::digitize`] with server-side
    /// deadlines.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let frame = encode_request(request);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        Ok(protocol::read_response(&mut self.stream, self.max_payload)?)
    }

    /// Round-trips a liveness probe, returning the echoed token.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn ping(&mut self, token: u64) -> Result<u64, ClientError> {
        self.send(&Request::Ping { token })?;
        match self.recv()? {
            Response::Pong { token } => Ok(token),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected pong")),
        }
    }

    /// Runs one digitization, blocking until the full record has
    /// streamed back. Verifies batch ordering, the sample count, and
    /// the server's stream CRC before returning.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors (including mid-stream typed
    /// errors like `TimedOut`), and [`ClientError::StreamCorrupt`] if
    /// reassembly fails a consistency check.
    pub fn digitize(&mut self, request: &DigitizeRequest) -> Result<DigitizeResult, ClientError> {
        self.send(&Request::Digitize(request.clone()))?;
        let mut samples: Vec<u16> = Vec::new();
        let mut next_seq = 0u32;
        loop {
            match self.recv()? {
                Response::Batch {
                    seq,
                    samples: chunk,
                } => {
                    if seq != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "batch {seq} arrived, expected {next_seq}"
                        )));
                    }
                    next_seq += 1;
                    samples.extend_from_slice(&chunk);
                }
                Response::Done(done) => {
                    if done.total_samples as usize != samples.len() {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} samples, reassembled {}",
                            done.total_samples,
                            samples.len()
                        )));
                    }
                    if done.batches != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} batches, received {}",
                            done.batches, next_seq
                        )));
                    }
                    let crc = stream_crc(&samples);
                    if crc != done.stream_crc32 {
                        return Err(ClientError::StreamCorrupt(format!(
                            "stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        )));
                    }
                    return Ok(DigitizeResult { samples, done });
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                _ => return Err(ClientError::UnexpectedResponse("expected batch or done")),
            }
        }
    }

    /// Runs one ganged digitization through a server-side interleaved
    /// array, blocking until the full record has streamed back. Verifies
    /// batch ordering, the value count, and the server's stream CRC
    /// before returning; values are bit-identical to an in-process
    /// `adc_calib::GangedScenario` capture of the same request.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors, and
    /// [`ClientError::StreamCorrupt`] if reassembly fails a consistency
    /// check.
    pub fn digitize_ganged(
        &mut self,
        request: &GangedRequest,
    ) -> Result<GangedResult, ClientError> {
        self.send(&Request::Ganged(request.clone()))?;
        let mut values: Vec<f64> = Vec::new();
        let mut next_seq = 0u32;
        loop {
            match self.recv()? {
                Response::GangedBatch { seq, values: chunk } => {
                    if seq != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "batch {seq} arrived, expected {next_seq}"
                        )));
                    }
                    next_seq += 1;
                    values.extend_from_slice(&chunk);
                }
                Response::GangedDone(done) => {
                    if done.total_samples as usize != values.len() {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} values, reassembled {}",
                            done.total_samples,
                            values.len()
                        )));
                    }
                    if done.batches != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} batches, received {}",
                            done.batches, next_seq
                        )));
                    }
                    let crc = value_stream_crc(&values);
                    if crc != done.stream_crc32 {
                        return Err(ClientError::StreamCorrupt(format!(
                            "stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        )));
                    }
                    return Ok(GangedResult { values, done });
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                _ => {
                    return Err(ClientError::UnexpectedResponse(
                        "expected ganged batch or done",
                    ))
                }
            }
        }
    }

    /// Submits a batch of campaign jobs and blocks for the outcomes.
    ///
    /// The response carries one [`protocol::JobOutcome`] per submitted
    /// job, in submission order; the caller (normally the
    /// `adc-cluster` executor) decides what to resubmit based on each
    /// outcome's typed status.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors (notably
    /// [`ErrorCode::Unsupported`] from a host with no job runner), and
    /// [`ClientError::StreamCorrupt`] if the response does not answer
    /// the submitted batch.
    pub fn job_batch(&mut self, request: &JobBatchRequest) -> Result<JobResultBatch, ClientError> {
        self.send(&Request::JobBatch(request.clone()))?;
        match self.recv()? {
            Response::JobResult(result) => {
                if result.batch_id != request.batch_id {
                    return Err(ClientError::StreamCorrupt(format!(
                        "job result for batch {}, expected {}",
                        result.batch_id, request.batch_id
                    )));
                }
                if result.outcomes.len() != request.jobs.len() {
                    return Err(ClientError::StreamCorrupt(format!(
                        "{} outcomes for {} jobs",
                        result.outcomes.len(),
                        request.jobs.len()
                    )));
                }
                Ok(result)
            }
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected job result")),
        }
    }

    /// Probes the host's warm cache for `keys` in `campaign`'s
    /// namespace, returning the `(key, encoded line)` hits.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn cache_query(
        &mut self,
        campaign: &str,
        keys: &[u64],
    ) -> Result<Vec<(u64, String)>, ClientError> {
        self.send(&Request::CacheQuery(CacheQueryRequest {
            campaign: campaign.to_string(),
            keys: keys.to_vec(),
        }))?;
        match self.recv()? {
            Response::CacheHits { entries } => Ok(entries),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected cache hits")),
        }
    }

    /// Merges `(key, encoded line)` entries into the host's warm cache
    /// for `campaign`, returning how many were newly inserted.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn cache_fill(
        &mut self,
        campaign: &str,
        entries: &[(u64, String)],
    ) -> Result<u32, ClientError> {
        self.send(&Request::CacheFill(CacheFillRequest {
            campaign: campaign.to_string(),
            entries: entries.to_vec(),
        }))?;
        match self.recv()? {
            Response::CacheFillAck { accepted } => Ok(accepted),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected cache fill ack")),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::Metrics(snapshot) => Ok(snapshot),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected metrics")),
        }
    }

    /// Asks the server to begin a graceful drain. Returns once the
    /// server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownAck => Ok(()),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected shutdown ack")),
        }
    }
}
