//! Clients for the digitization service.
//!
//! [`Client`] owns one connection and exposes the protocol as plain
//! blocking calls: [`Client::ping`], [`Client::digitize`] (reassembles
//! the streamed batches and verifies the stream CRC),
//! [`Client::metrics`], and [`Client::shutdown`]. Requests on one
//! `Client` are sequential.
//!
//! [`PipelinedClient`] keeps many requests in flight on one connection:
//! each [`PipelinedClient::submit`] assigns a correlation id and
//! returns immediately; [`PipelinedClient::next_completion`] yields
//! finished requests in whatever order the server completes them, with
//! the same reassembly and CRC verification as the blocking path.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    self, encode_request, CacheFillRequest, CacheQueryRequest, DigitizeDone, DigitizeRequest,
    ErrorCode, FrameAssembler, FrameReadError, GangedDone, GangedRequest, JobBatchRequest,
    JobResultBatch, MetricsSnapshot, Request, Response, SubmitBody, SubmitRequest, WireError,
};
use crate::server::{stream_crc, value_stream_crc};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a frame this client could not decode.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with a well-formed frame of the wrong kind
    /// for the request in flight.
    UnexpectedResponse(&'static str),
    /// The reassembled stream failed a local consistency check.
    StreamCorrupt(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Server { code, detail } => write!(f, "server error ({code:?}): {detail}"),
            Self::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
            Self::StreamCorrupt(detail) => write!(f, "stream corrupt: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(io) => Self::Io(io),
            FrameReadError::Wire(w) => Self::Wire(w),
        }
    }
}

/// A completed digitization: the full reassembled record plus the
/// server's completion summary.
#[derive(Debug, Clone)]
pub struct DigitizeResult {
    /// The converted codes, in order.
    pub samples: Vec<u16>,
    /// The server's end-of-stream summary (exact stimulus frequency,
    /// batch count, stream CRC).
    pub done: DigitizeDone,
}

/// A completed ganged digitization: the reassembled interleaved record
/// (reconstructed volts, bit-exact) plus the server's summary.
#[derive(Debug, Clone)]
pub struct GangedResult {
    /// The interleaved record values, in order.
    pub values: Vec<f64>,
    /// The server's end-of-stream summary (stimulus frequency,
    /// calibration epochs, convergence, stream CRC).
    pub done: GangedDone,
}

/// One blocking connection to an `adc-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
}

impl Client {
    /// Connects with the protocol's default payload ceiling.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_payload: protocol::MAX_PAYLOAD,
        })
    }

    /// Sets a read timeout on the underlying socket (`None` blocks
    /// forever). Useful around [`Client::digitize`] with server-side
    /// deadlines.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let frame = encode_request(request);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        Ok(protocol::read_response(&mut self.stream, self.max_payload)?)
    }

    /// Round-trips a liveness probe, returning the echoed token.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn ping(&mut self, token: u64) -> Result<u64, ClientError> {
        self.send(&Request::Ping { token })?;
        match self.recv()? {
            Response::Pong { token } => Ok(token),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected pong")),
        }
    }

    /// Runs one digitization, blocking until the full record has
    /// streamed back. Verifies batch ordering, the sample count, and
    /// the server's stream CRC before returning.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors (including mid-stream typed
    /// errors like `TimedOut`), and [`ClientError::StreamCorrupt`] if
    /// reassembly fails a consistency check.
    pub fn digitize(&mut self, request: &DigitizeRequest) -> Result<DigitizeResult, ClientError> {
        self.send(&Request::Digitize(request.clone()))?;
        let mut samples: Vec<u16> = Vec::new();
        let mut next_seq = 0u32;
        loop {
            match self.recv()? {
                Response::Batch {
                    seq,
                    samples: chunk,
                } => {
                    if seq != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "batch {seq} arrived, expected {next_seq}"
                        )));
                    }
                    next_seq += 1;
                    samples.extend_from_slice(&chunk);
                }
                Response::Done(done) => {
                    if done.total_samples as usize != samples.len() {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} samples, reassembled {}",
                            done.total_samples,
                            samples.len()
                        )));
                    }
                    if done.batches != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} batches, received {}",
                            done.batches, next_seq
                        )));
                    }
                    let crc = stream_crc(&samples);
                    if crc != done.stream_crc32 {
                        return Err(ClientError::StreamCorrupt(format!(
                            "stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        )));
                    }
                    return Ok(DigitizeResult { samples, done });
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                _ => return Err(ClientError::UnexpectedResponse("expected batch or done")),
            }
        }
    }

    /// Runs one ganged digitization through a server-side interleaved
    /// array, blocking until the full record has streamed back. Verifies
    /// batch ordering, the value count, and the server's stream CRC
    /// before returning; values are bit-identical to an in-process
    /// `adc_calib::GangedScenario` capture of the same request.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors, and
    /// [`ClientError::StreamCorrupt`] if reassembly fails a consistency
    /// check.
    pub fn digitize_ganged(
        &mut self,
        request: &GangedRequest,
    ) -> Result<GangedResult, ClientError> {
        self.send(&Request::Ganged(request.clone()))?;
        let mut values: Vec<f64> = Vec::new();
        let mut next_seq = 0u32;
        loop {
            match self.recv()? {
                Response::GangedBatch { seq, values: chunk } => {
                    if seq != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "batch {seq} arrived, expected {next_seq}"
                        )));
                    }
                    next_seq += 1;
                    values.extend_from_slice(&chunk);
                }
                Response::GangedDone(done) => {
                    if done.total_samples as usize != values.len() {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} values, reassembled {}",
                            done.total_samples,
                            values.len()
                        )));
                    }
                    if done.batches != next_seq {
                        return Err(ClientError::StreamCorrupt(format!(
                            "done claims {} batches, received {}",
                            done.batches, next_seq
                        )));
                    }
                    let crc = value_stream_crc(&values);
                    if crc != done.stream_crc32 {
                        return Err(ClientError::StreamCorrupt(format!(
                            "stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        )));
                    }
                    return Ok(GangedResult { values, done });
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                _ => {
                    return Err(ClientError::UnexpectedResponse(
                        "expected ganged batch or done",
                    ))
                }
            }
        }
    }

    /// Submits a batch of campaign jobs and blocks for the outcomes.
    ///
    /// The response carries one [`protocol::JobOutcome`] per submitted
    /// job, in submission order; the caller (normally the
    /// `adc-cluster` executor) decides what to resubmit based on each
    /// outcome's typed status.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors (notably
    /// [`ErrorCode::Unsupported`] from a host with no job runner), and
    /// [`ClientError::StreamCorrupt`] if the response does not answer
    /// the submitted batch.
    pub fn job_batch(&mut self, request: &JobBatchRequest) -> Result<JobResultBatch, ClientError> {
        self.send(&Request::JobBatch(request.clone()))?;
        match self.recv()? {
            Response::JobResult(result) => {
                if result.batch_id != request.batch_id {
                    return Err(ClientError::StreamCorrupt(format!(
                        "job result for batch {}, expected {}",
                        result.batch_id, request.batch_id
                    )));
                }
                if result.outcomes.len() != request.jobs.len() {
                    return Err(ClientError::StreamCorrupt(format!(
                        "{} outcomes for {} jobs",
                        result.outcomes.len(),
                        request.jobs.len()
                    )));
                }
                Ok(result)
            }
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected job result")),
        }
    }

    /// Probes the host's warm cache for `keys` in `campaign`'s
    /// namespace, returning the `(key, encoded line)` hits.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn cache_query(
        &mut self,
        campaign: &str,
        keys: &[u64],
    ) -> Result<Vec<(u64, String)>, ClientError> {
        self.send(&Request::CacheQuery(CacheQueryRequest {
            campaign: campaign.to_string(),
            keys: keys.to_vec(),
        }))?;
        match self.recv()? {
            Response::CacheHits { entries } => Ok(entries),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected cache hits")),
        }
    }

    /// Merges `(key, encoded line)` entries into the host's warm cache
    /// for `campaign`, returning how many were newly inserted.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn cache_fill(
        &mut self,
        campaign: &str,
        entries: &[(u64, String)],
    ) -> Result<u32, ClientError> {
        self.send(&Request::CacheFill(CacheFillRequest {
            campaign: campaign.to_string(),
            entries: entries.to_vec(),
        }))?;
        match self.recv()? {
            Response::CacheFillAck { accepted } => Ok(accepted),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected cache fill ack")),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::Metrics(snapshot) => Ok(snapshot),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected metrics")),
        }
    }

    /// Asks the server to begin a graceful drain. Returns once the
    /// server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport, wire, or server errors; see [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownAck => Ok(()),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::UnexpectedResponse("expected shutdown ack")),
        }
    }
}

/// How one pipelined request ended.
#[derive(Debug, Clone)]
pub enum PipelinedOutcome {
    /// The digitization completed and passed reassembly checks.
    Digitize(DigitizeResult),
    /// The ganged digitization completed and passed reassembly checks.
    Ganged(GangedResult),
    /// The server answered this request with a typed error frame
    /// (validation, overload shed, deadline, ...). Per-request — the
    /// connection and the other in-flight requests are unaffected.
    ServerError {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

/// In-progress reassembly of one pipelined request.
#[derive(Debug)]
enum Accum {
    Digitize { samples: Vec<u16>, next_seq: u32 },
    Ganged { values: Vec<f64>, next_seq: u32 },
}

/// A pipelined connection: many requests in flight at once, completed
/// out of order.
///
/// Every submission gets a nonzero correlation id (assigned here,
/// counting up from 1); the server tags each response frame with it,
/// so interleaved streams demultiplex unambiguously. Completions are
/// yielded in **server finish order**, each verified exactly like the
/// blocking [`Client`] path: batch ordering, sample count, and stream
/// CRC.
///
/// ```
/// use adc_server::{DigitizeRequest, PipelinedClient, PipelinedOutcome, Server, ServerConfig};
///
/// let (handle, join) = Server::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
/// let mut client = PipelinedClient::connect(handle.addr()).unwrap();
/// let a = client.submit(&DigitizeRequest::tone(7, 10e6, 1024)).unwrap();
/// let b = client.submit(&DigitizeRequest::tone(8, 10e6, 1024)).unwrap();
/// let mut seen = Vec::new();
/// while client.in_flight() > 0 {
///     let (corr, outcome) = client.next_completion().unwrap();
///     assert!(matches!(outcome, PipelinedOutcome::Digitize(_)));
///     seen.push(corr);
/// }
/// seen.sort_unstable();
/// assert_eq!(seen, vec![a, b]);
/// handle.shutdown();
/// join.join().unwrap().unwrap();
/// ```
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    assembler: FrameAssembler,
    max_payload: u32,
    next_corr: u64,
    pending: BTreeMap<u64, Accum>,
    ready: VecDeque<(u64, PipelinedOutcome)>,
}

impl PipelinedClient {
    /// Connects with the protocol's default payload ceiling.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            assembler: FrameAssembler::new(),
            max_payload: protocol::MAX_PAYLOAD,
            next_corr: 1,
            pending: BTreeMap::new(),
            ready: VecDeque::new(),
        })
    }

    /// Sets a read timeout on the underlying socket (`None` blocks
    /// forever). With a timeout set, [`Self::try_next_completion`]
    /// returns `Ok(None)` when it expires with nothing decoded.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Switches the underlying socket between blocking and non-blocking
    /// mode. Non-blocking makes [`Self::try_next_completion`] return
    /// immediately instead of waiting out the read timeout — kernels
    /// round `SO_RCVTIMEO` up to scheduler-tick granularity, so a
    /// "1 ms" timeout can block for several milliseconds, which matters
    /// to open-loop load generators pacing precise arrival schedules.
    /// Partial frames are preserved across calls either way. Callers
    /// must restore blocking mode before using the blocking APIs
    /// ([`Self::next_completion`], [`Self::submit`] under a full send
    /// buffer).
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.stream.set_nonblocking(nonblocking)
    }

    /// Requests submitted but not yet yielded by a completion call.
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.ready.len()
    }

    /// Submits a digitization without waiting, returning its
    /// correlation id.
    ///
    /// # Errors
    ///
    /// Transport failures writing the request frame.
    pub fn submit(&mut self, request: &DigitizeRequest) -> Result<u64, ClientError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        let frame = encode_request(&Request::Submit(SubmitRequest {
            corr_id: corr,
            body: SubmitBody::Digitize(request.clone()),
        }));
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        self.pending.insert(
            corr,
            Accum::Digitize {
                samples: Vec::new(),
                next_seq: 0,
            },
        );
        Ok(corr)
    }

    /// Submits a ganged digitization without waiting, returning its
    /// correlation id.
    ///
    /// # Errors
    ///
    /// Transport failures writing the request frame.
    pub fn submit_ganged(&mut self, request: &GangedRequest) -> Result<u64, ClientError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        let frame = encode_request(&Request::Submit(SubmitRequest {
            corr_id: corr,
            body: SubmitBody::Ganged(request.clone()),
        }));
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        self.pending.insert(
            corr,
            Accum::Ganged {
                values: Vec::new(),
                next_seq: 0,
            },
        );
        Ok(corr)
    }

    /// Blocks for the next finished request, in server completion
    /// order.
    ///
    /// # Errors
    ///
    /// Transport or wire errors, connection-level server errors (e.g. a
    /// protocol fault, which poisons the whole stream), and
    /// [`ClientError::StreamCorrupt`] if any in-flight reassembly fails
    /// a consistency check. Per-request server errors are **not**
    /// errors here — they arrive as [`PipelinedOutcome::ServerError`].
    pub fn next_completion(&mut self) -> Result<(u64, PipelinedOutcome), ClientError> {
        loop {
            if let Some(done) = self.ready.pop_front() {
                return Ok(done);
            }
            self.pump()?;
        }
    }

    /// Like [`Self::next_completion`] but yields `Ok(None)` instead of
    /// blocking past the socket's read timeout (see
    /// [`Self::set_read_timeout`]).
    ///
    /// # Errors
    ///
    /// As [`Self::next_completion`].
    pub fn try_next_completion(&mut self) -> Result<Option<(u64, PipelinedOutcome)>, ClientError> {
        if let Some(done) = self.ready.pop_front() {
            return Ok(Some(done));
        }
        match self.pump() {
            Ok(()) => Ok(self.ready.pop_front()),
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Reads once from the socket and decodes every completed frame
    /// into `ready`.
    fn pump(&mut self) -> Result<(), ClientError> {
        let mut buf = [0u8; 64 * 1024];
        let n = self.stream.read(&mut buf)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        self.assembler.extend(&buf[..n]);
        loop {
            let frame = self
                .assembler
                .next_frame(self.max_payload)
                .map_err(ClientError::Wire)?;
            let Some((kind, payload)) = frame else {
                return Ok(());
            };
            let response = Response::decode(kind, &payload).map_err(ClientError::Wire)?;
            self.accept_frame(response)?;
        }
    }

    /// Routes one decoded frame to its request's reassembly state.
    fn accept_frame(&mut self, response: Response) -> Result<(), ClientError> {
        let (corr, inner) = match response {
            Response::Tagged { corr_id, inner } => (corr_id, *inner),
            // An untagged error is connection-level (protocol fault):
            // the stream is poisoned, surface it as a hard error.
            Response::Error { code, detail } => return Err(ClientError::Server { code, detail }),
            _ => {
                return Err(ClientError::UnexpectedResponse(
                    "untagged frame on a pipelined connection",
                ))
            }
        };
        let corrupt = |detail: String| Err(ClientError::StreamCorrupt(detail));
        match inner {
            Response::Batch {
                seq,
                samples: chunk,
            } => match self.pending.get_mut(&corr) {
                Some(Accum::Digitize { samples, next_seq }) => {
                    if seq != *next_seq {
                        return corrupt(format!(
                            "request {corr}: batch {seq} arrived, expected {next_seq}"
                        ));
                    }
                    *next_seq += 1;
                    samples.extend_from_slice(&chunk);
                    Ok(())
                }
                Some(Accum::Ganged { .. }) => {
                    corrupt(format!("request {corr}: code batch on a ganged request"))
                }
                None => corrupt(format!("batch for unknown request {corr}")),
            },
            Response::Done(done) => match self.pending.remove(&corr) {
                Some(Accum::Digitize { samples, next_seq }) => {
                    if done.total_samples as usize != samples.len() {
                        return corrupt(format!(
                            "request {corr}: done claims {} samples, reassembled {}",
                            done.total_samples,
                            samples.len()
                        ));
                    }
                    if done.batches != next_seq {
                        return corrupt(format!(
                            "request {corr}: done claims {} batches, received {next_seq}",
                            done.batches
                        ));
                    }
                    let crc = stream_crc(&samples);
                    if crc != done.stream_crc32 {
                        return corrupt(format!(
                            "request {corr}: stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        ));
                    }
                    self.ready.push_back((
                        corr,
                        PipelinedOutcome::Digitize(DigitizeResult { samples, done }),
                    ));
                    Ok(())
                }
                Some(other) => {
                    self.pending.insert(corr, other);
                    corrupt(format!("request {corr}: done on a ganged request"))
                }
                None => corrupt(format!("done for unknown request {corr}")),
            },
            Response::GangedBatch { seq, values: chunk } => match self.pending.get_mut(&corr) {
                Some(Accum::Ganged { values, next_seq }) => {
                    if seq != *next_seq {
                        return corrupt(format!(
                            "request {corr}: batch {seq} arrived, expected {next_seq}"
                        ));
                    }
                    *next_seq += 1;
                    values.extend_from_slice(&chunk);
                    Ok(())
                }
                Some(Accum::Digitize { .. }) => corrupt(format!(
                    "request {corr}: ganged batch on a digitize request"
                )),
                None => corrupt(format!("ganged batch for unknown request {corr}")),
            },
            Response::GangedDone(done) => match self.pending.remove(&corr) {
                Some(Accum::Ganged { values, next_seq }) => {
                    if done.total_samples as usize != values.len() {
                        return corrupt(format!(
                            "request {corr}: done claims {} values, reassembled {}",
                            done.total_samples,
                            values.len()
                        ));
                    }
                    if done.batches != next_seq {
                        return corrupt(format!(
                            "request {corr}: done claims {} batches, received {next_seq}",
                            done.batches
                        ));
                    }
                    let crc = value_stream_crc(&values);
                    if crc != done.stream_crc32 {
                        return corrupt(format!(
                            "request {corr}: stream CRC {:08x} != server's {:08x}",
                            crc, done.stream_crc32
                        ));
                    }
                    self.ready.push_back((
                        corr,
                        PipelinedOutcome::Ganged(GangedResult { values, done }),
                    ));
                    Ok(())
                }
                Some(other) => {
                    self.pending.insert(corr, other);
                    corrupt(format!("request {corr}: ganged done on a digitize request"))
                }
                None => corrupt(format!("ganged done for unknown request {corr}")),
            },
            Response::Error { code, detail } => {
                // Typed per-request failure (validation, overload shed,
                // deadline): the request is over, the connection fine.
                self.pending.remove(&corr);
                self.ready
                    .push_back((corr, PipelinedOutcome::ServerError { code, detail }));
                Ok(())
            }
            _ => Err(ClientError::UnexpectedResponse(
                "unexpected tagged frame kind",
            )),
        }
    }
}
