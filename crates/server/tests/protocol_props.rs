//! Property tests over the wire protocol: encode/decode is a lossless
//! round trip for arbitrary well-formed messages, and decoding is a
//! *total* function — truncated or corrupted frames come back as typed
//! [`WireError`]s, never panics.

use proptest::prelude::*;

use adc_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, CacheFillRequest,
    CacheQueryRequest, ConfigOverrides, DigitizeDone, DigitizeRequest, ErrorCode, FrameAssembler,
    GangedCal, GangedDone, GangedRequest, JobBatchRequest, JobOutcome, JobResultBatch, JobSpec,
    JobStatus, MetricsSnapshot, Preset, Request, Response, SubmitBody, SubmitRequest, WaveformSpec,
    WireError, MAX_GANGED_CHANNELS,
};

fn preset(tag: u8) -> Preset {
    match tag % 3 {
        0 => Preset::Nominal110,
        1 => Preset::Ideal,
        _ => Preset::Sibling220,
    }
}

fn waveform(tag: u8, a: f64, b: f64) -> WaveformSpec {
    match tag % 3 {
        0 => WaveformSpec::Tone { f_target_hz: a },
        1 => WaveformSpec::Dc { level_v: b },
        _ => WaveformSpec::Ramp { from_v: a, to_v: b },
    }
}

#[allow(clippy::too_many_arguments)]
fn digitize(
    preset_tag: u8,
    seed: u64,
    mask: u8,
    wf_tag: u8,
    f_a: f64,
    f_b: f64,
    n_samples: u32,
    batch_size: u32,
    deadline_ms: u32,
) -> DigitizeRequest {
    DigitizeRequest {
        preset: preset(preset_tag),
        seed,
        overrides: ConfigOverrides {
            f_cr_hz: (mask & 1 != 0).then_some(f_a * 1e6),
            amplitude_v: (mask & 2 != 0).then_some(f_b),
            thermal_noise: (mask & 4 != 0).then_some(mask & 8 != 0),
        },
        waveform: waveform(wf_tag, f_a, f_b),
        n_samples,
        batch_size,
        deadline_ms,
    }
}

#[allow(clippy::too_many_arguments)]
fn ganged(
    preset_tag: u8,
    seed: u64,
    channels: u8,
    flags: u8,
    f_a: f64,
    n_samples: u32,
    batch_size: u32,
    deadline_ms: u32,
) -> GangedRequest {
    GangedRequest {
        preset: preset(preset_tag),
        seed,
        channels,
        mismatch: flags & 1 != 0,
        cal: match (flags >> 1) % 3 {
            0 => GangedCal::Raw,
            1 => GangedCal::Foreground,
            _ => GangedCal::Background,
        },
        f_target_hz: f_a * 1e6,
        n_samples,
        batch_size,
        deadline_ms,
    }
}

/// A deterministic cluster job batch derived from a handful of scalars,
/// so the round-trip property covers variable-length job lists and
/// arbitrary config strings without a bespoke strategy type.
fn job_batch(batch_id: u64, seed: u64, jobs: usize, cfg_len: usize) -> JobBatchRequest {
    JobBatchRequest {
        batch_id,
        campaign: format!("camp-{}", batch_id & 0xFF),
        kind: "probe-mix".to_string(),
        deadline_ms: (batch_id % 100_000) as u32,
        jobs: (0..jobs)
            .map(|i| JobSpec {
                id: i as u64,
                key: seed.wrapping_mul(i as u64 + 1),
                seed: seed.rotate_left(i as u32),
                config: "c\u{1f},;\t"
                    .repeat(cfg_len % 8)
                    .chars()
                    .take(cfg_len)
                    .collect(),
            })
            .collect(),
    }
}

fn cache_entries(seed: u64, n: usize, line_len: usize) -> Vec<(u64, String)> {
    (0..n)
        .map(|i| {
            (
                seed.wrapping_add(i as u64),
                format!("{:016x};{}", seed ^ i as u64, "x".repeat(line_len % 32)),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every request kind round-trips bit-exactly through the codec.
    #[test]
    fn requests_round_trip(
        kind in 0u8..9,
        token in 0u64..u64::MAX,
        preset_tag in 0u8..3,
        seed in 0u64..u64::MAX,
        mask in 0u8..16,
        wf_tag in 0u8..3,
        f_a in 0.001f64..200.0,
        f_b in -1.0f64..1.0,
        n_samples in 1u32..100_000,
        batch_size in 0u32..10_000,
        deadline_ms in 0u32..100_000,
        channels in 1u8..=MAX_GANGED_CHANNELS,
    ) {
        let request = match kind {
            0 => Request::Ping { token },
            1 => Request::Digitize(digitize(
                preset_tag, seed, mask, wf_tag, f_a, f_b, n_samples, batch_size, deadline_ms,
            )),
            2 => Request::Metrics,
            3 => Request::Ganged(ganged(
                preset_tag, seed, channels, mask, f_a, n_samples, batch_size, deadline_ms,
            )),
            4 => Request::Shutdown,
            5 => Request::JobBatch(job_batch(
                token, seed, n_samples as usize % 20, batch_size as usize % 48,
            )),
            6 => Request::CacheQuery(CacheQueryRequest {
                campaign: "q".repeat(deadline_ms as usize % 16),
                keys: (0..n_samples as u64 % 32).map(|i| seed ^ i).collect(),
            }),
            7 => Request::CacheFill(CacheFillRequest {
                campaign: format!("fill-{}", token & 0xF),
                entries: cache_entries(seed, n_samples as usize % 16, batch_size as usize),
            }),
            // Pipelined submissions: the correlation id (any u64,
            // including 0 = legacy ordered mode) must survive exactly.
            _ => Request::Submit(SubmitRequest {
                corr_id: token,
                body: if wf_tag % 2 == 0 {
                    SubmitBody::Digitize(digitize(
                        preset_tag, seed, mask, wf_tag, f_a, f_b, n_samples, batch_size,
                        deadline_ms,
                    ))
                } else {
                    SubmitBody::Ganged(ganged(
                        preset_tag, seed, channels, mask, f_a, n_samples, batch_size, deadline_ms,
                    ))
                },
            }),
        };
        let decoded = decode_request(&encode_request(&request));
        prop_assert_eq!(decoded.as_ref(), Ok(&request));
    }

    /// Out-of-range channel counts in a ganged frame decode to the typed
    /// malformed error — for *any* surrounding field values.
    #[test]
    fn ganged_channel_counts_out_of_bounds_are_malformed(
        preset_tag in 0u8..3,
        seed in 0u64..u64::MAX,
        raw_channels in 0u8..=255,
        flags in 0u8..16,
        f_a in 0.001f64..200.0,
        n_samples in 1u32..100_000,
    ) {
        // Map the raw byte onto the out-of-range set: 0, or anything
        // strictly above the ceiling.
        let bad_channels = if raw_channels <= MAX_GANGED_CHANNELS {
            raw_channels
                .checked_add(MAX_GANGED_CHANNELS)
                .map_or(0, |c| if c <= MAX_GANGED_CHANNELS { 0 } else { c })
        } else {
            raw_channels
        };
        let request = Request::Ganged(ganged(
            preset_tag, seed, bad_channels, flags, f_a, n_samples, 0, 0,
        ));
        // The encoder writes whatever it is given; the decoder must
        // reject it with the typed error, never a panic.
        let decoded = decode_request(&encode_request(&request));
        prop_assert_eq!(decoded, Err(WireError::Malformed("channel count")));
    }

    /// Truncating a ganged frame anywhere yields a typed error.
    #[test]
    fn truncated_ganged_frames_are_rejected(
        seed in 0u64..u64::MAX,
        channels in 1u8..=MAX_GANGED_CHANNELS,
        n_samples in 1u32..100_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_request(&Request::Ganged(GangedRequest {
            channels,
            n_samples,
            ..GangedRequest::tone(seed, 2, 20e6, 4096)
        }));
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(decode_request(&frame[..cut]).is_err());
    }

    /// Truncating a cluster job/cache frame anywhere yields a typed
    /// error — variable-length job lists never panic the decoder.
    #[test]
    fn truncated_job_frames_are_rejected(
        which in 0u8..3,
        batch_id in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        jobs in 0usize..12,
        cfg_len in 0usize..32,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_request(&match which {
            0 => Request::JobBatch(job_batch(batch_id, seed, jobs, cfg_len)),
            1 => Request::CacheQuery(CacheQueryRequest {
                campaign: "mc".to_string(),
                keys: (0..jobs as u64).map(|i| seed ^ i).collect(),
            }),
            _ => Request::CacheFill(CacheFillRequest {
                campaign: "mc".to_string(),
                entries: cache_entries(seed, jobs, cfg_len),
            }),
        });
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(decode_request(&frame[..cut]).is_err());
    }

    /// Any out-of-range job status byte in a `JobResult` frame decodes
    /// to the typed malformed error — never a panic, never a silent
    /// reinterpretation.
    #[test]
    fn invalid_job_status_bytes_are_malformed(
        batch_id in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        bad_status in 4u8..=255,
        value_len in 0usize..24,
    ) {
        let outcome = |status| Response::JobResult(JobResultBatch {
            batch_id,
            outcomes: vec![JobOutcome {
                id: 3,
                key,
                status,
                value: "v".repeat(value_len),
            }],
        });
        // Locate the status byte by diffing two encodings that differ
        // only in status, then forge an out-of-range discriminant and
        // re-seal the CRC trailer.
        let mut frame = encode_response(&outcome(JobStatus::Computed));
        let other = encode_response(&outcome(JobStatus::Cached));
        let pos = frame
            .iter()
            .zip(other.iter())
            .position(|(a, b)| a != b)
            .expect("encodings differ in the status byte");
        frame[pos] = bad_status;
        let body = frame.len() - 4;
        let crc = adc_server::protocol::crc32(&frame[..body]);
        frame[body..].copy_from_slice(&crc.to_le_bytes());
        prop_assert_eq!(
            decode_response(&frame),
            Err(WireError::Malformed("job status discriminant"))
        );
    }

    /// Every response kind round-trips bit-exactly through the codec,
    /// including non-finite floats (f64s travel as IEEE-754 bits).
    #[test]
    fn responses_round_trip(
        kind in 0u8..12,
        token in 0u64..u64::MAX,
        seq in 0u32..u32::MAX,
        len in 0usize..512,
        fill in 0u16..4096,
        f_sel in 0u8..4,
        f_val in -250.0f64..250.0,
        code_tag in 0u8..12,
        counters in prop::collection::vec(0u64..1_000_000, 15),
        detail_len in 0usize..64,
    ) {
        let f_in_hz = match f_sel {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => 0.0,
            _ => f_val * 1e6,
        };
        let response = match kind {
            0 => Response::Pong { token },
            1 => Response::Batch {
                seq,
                samples: (0..len).map(|i| fill.wrapping_add(i as u16) & 0x0FFF).collect(),
            },
            2 => Response::Done(DigitizeDone {
                total_samples: seq,
                batches: seq / 7,
                f_in_hz,
                stream_crc32: token as u32,
            }),
            3 => Response::Metrics(MetricsSnapshot {
                connections: counters[0],
                pings: counters[1],
                digitizes: counters[2],
                metrics_requests: counters[3],
                errors: counters[4],
                in_flight: counters[5],
                completed: counters[6],
                samples_streamed: counters[7],
                job_batches: counters[8],
                cluster_cache_hits: counters[9],
                p50_us: counters[10],
                p90_us: counters[11],
                p99_us: counters[12],
                overloaded: counters[13],
                coalesced: counters[14],
            }),
            4 => {
                use adc_server::ErrorCode as C;
                let codes = [
                    C::Protocol,
                    C::InvalidRequest,
                    C::NoStages,
                    C::InvalidRate,
                    C::InvalidReference,
                    C::NoSettlingTime,
                    C::TimedOut,
                    C::Draining,
                    C::Internal,
                    C::Unsupported,
                    C::Overloaded,
                ];
                Response::Error {
                    code: codes[code_tag as usize % codes.len()],
                    detail: "e".repeat(detail_len),
                }
            }
            5 => Response::GangedBatch {
                seq,
                values: (0..len)
                    .map(|i| match (i + f_sel as usize) % 5 {
                        0 => f64::NAN,
                        1 => f64::NEG_INFINITY,
                        2 => -0.0,
                        3 => f_val * (i as f64 + 1.0),
                        _ => f64::MIN_POSITIVE,
                    })
                    .collect(),
            },
            6 => Response::GangedDone(GangedDone {
                total_samples: seq,
                batches: seq / 3,
                f_in_hz,
                epochs_run: fill as u32,
                converged: fill & 1 != 0,
                stream_crc32: token as u32,
            }),
            7 => Response::ShutdownAck,
            8 => Response::JobResult(JobResultBatch {
                batch_id: token,
                outcomes: (0..len % 24)
                    .map(|i| JobOutcome {
                        id: i as u64,
                        key: token.wrapping_add(i as u64),
                        status: match i % 4 {
                            0 => JobStatus::Computed,
                            1 => JobStatus::Cached,
                            2 => JobStatus::Failed,
                            _ => JobStatus::Rejected,
                        },
                        value: format!("{:016x}", token ^ i as u64),
                    })
                    .collect(),
            }),
            9 => Response::CacheHits {
                entries: cache_entries(token, len % 24, detail_len),
            },
            10 => Response::CacheFillAck { accepted: seq },
            // Tagged (pipelined) responses: any streamable inner frame
            // under any correlation id.
            _ => Response::Tagged {
                corr_id: token,
                inner: Box::new(match f_sel {
                    0 => Response::Batch {
                        seq,
                        samples: (0..len).map(|i| fill.wrapping_add(i as u16) & 0x0FFF).collect(),
                    },
                    1 => Response::Done(DigitizeDone {
                        total_samples: seq,
                        batches: seq / 7,
                        f_in_hz: f_val * 1e6,
                        stream_crc32: token as u32,
                    }),
                    2 => Response::Error {
                        code: ErrorCode::Overloaded,
                        detail: "o".repeat(detail_len),
                    },
                    _ => Response::GangedDone(GangedDone {
                        total_samples: seq,
                        batches: seq / 3,
                        f_in_hz: f_val * 1e6,
                        epochs_run: fill as u32,
                        converged: fill & 1 != 0,
                        stream_crc32: token as u32,
                    }),
                }),
            },
        };
        let decoded = decode_response(&encode_response(&response)).unwrap();
        // NaN != NaN under PartialEq; compare f64s by bit pattern.
        match (&decoded, &response) {
            (Response::Done(a), Response::Done(b)) => {
                prop_assert_eq!(a.f_in_hz.to_bits(), b.f_in_hz.to_bits());
                prop_assert_eq!(a.total_samples, b.total_samples);
                prop_assert_eq!(a.batches, b.batches);
                prop_assert_eq!(a.stream_crc32, b.stream_crc32);
            }
            (Response::GangedBatch { seq: sa, values: va },
             Response::GangedBatch { seq: sb, values: vb }) => {
                prop_assert_eq!(sa, sb);
                prop_assert_eq!(va.len(), vb.len());
                for (a, b) in va.iter().zip(vb.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            (Response::GangedDone(a), Response::GangedDone(b)) => {
                prop_assert_eq!(a.f_in_hz.to_bits(), b.f_in_hz.to_bits());
                prop_assert_eq!(a.total_samples, b.total_samples);
                prop_assert_eq!(a.batches, b.batches);
                prop_assert_eq!(a.epochs_run, b.epochs_run);
                prop_assert_eq!(a.converged, b.converged);
                prop_assert_eq!(a.stream_crc32, b.stream_crc32);
            }
            _ => prop_assert_eq!(&decoded, &response),
        }
    }

    /// Truncating a valid frame anywhere yields a typed error — decoding
    /// never panics and never misreads a prefix as a complete message.
    #[test]
    fn truncated_frames_are_rejected(
        seed in 0u64..u64::MAX,
        n_samples in 1u32..10_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_request(&Request::Digitize(DigitizeRequest::tone(
            seed,
            10e6,
            n_samples,
        )));
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(decode_request(&frame[..cut]).is_err());
    }

    /// Flipping any byte of a valid frame is detected (the CRC-32
    /// trailer catches payload damage; header fields are validated
    /// first) — again without panicking.
    #[test]
    fn corrupted_frames_are_rejected(
        token in 0u64..u64::MAX,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_request(&Request::Ping { token });
        let pos = ((frame.len() as f64 * pos_frac) as usize).min(frame.len() - 1);
        frame[pos] ^= flip;
        prop_assert!(decode_request(&frame).is_err());
    }

    /// Arbitrary byte soup never decodes to a request and never panics.
    #[test]
    fn random_bytes_never_panic_the_decoder(
        len in 0usize..64,
        fill in 0u8..=255,
        step in 1u8..=255,
    ) {
        let bytes: Vec<u8> = (0..len)
            .map(|i| fill.wrapping_add((i as u8).wrapping_mul(step)))
            .collect();
        // Random soup essentially never carries a valid magic + CRC; the
        // property under test is totality (no panic), so accept either
        // outcome but exercise the decoder.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Truncating a pipelined `Submit` frame anywhere yields a typed
    /// error — the correlation-id prefix never lets a partial body
    /// decode.
    #[test]
    fn truncated_submit_frames_are_rejected(
        corr_id in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        n_samples in 1u32..100_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_request(&Request::Submit(SubmitRequest {
            corr_id,
            body: SubmitBody::Digitize(DigitizeRequest::tone(seed, 10e6, n_samples)),
        }));
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(decode_request(&frame[..cut]).is_err());
    }

    /// A pipelined response stream — tagged frames from many requests
    /// interleaved out of order — reassembles exactly through the
    /// incremental [`FrameAssembler`] no matter how the transport
    /// fragments it, and truncating the stream anywhere never panics
    /// and never yields a frame beyond the cut.
    #[test]
    fn interleaved_tagged_streams_survive_fragmentation_and_truncation(
        corr_pool in prop::collection::vec(1u64..u64::MAX, 5),
        n_requests in 1usize..6,
        order_seed in 0u64..u64::MAX,
        chunk in 1usize..97,
        cut_frac in 0.0f64..1.0,
    ) {
        let corr_ids = &corr_pool[..n_requests];
        // Each request contributes a batch frame and a done frame; a
        // seed-driven shuffle interleaves completions out of order.
        let mut frames: Vec<(u64, Response)> = Vec::new();
        for (i, &corr) in corr_ids.iter().enumerate() {
            frames.push((corr, Response::Batch {
                seq: 0,
                samples: vec![i as u16; 3],
            }));
            frames.push((corr, Response::Done(DigitizeDone {
                total_samples: 3,
                batches: 1,
                f_in_hz: 10e6,
                stream_crc32: corr as u32,
            })));
        }
        let mut rng = order_seed | 1;
        for i in (1..frames.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (rng >> 33) as usize % (i + 1);
            // Keep each request's batch before its done; swapping is
            // fine when the pair order within a corr id is preserved.
            let (ci, cj) = (frames[i].0, frames[j].0);
            if ci != cj {
                frames.swap(i, j);
            }
        }
        let expected: Vec<Response> = frames
            .iter()
            .map(|(corr, inner)| Response::Tagged {
                corr_id: *corr,
                inner: Box::new(inner.clone()),
            })
            .collect();
        let stream: Vec<u8> = expected.iter().flat_map(encode_response).collect();

        // Fragmented feed: every frame comes back, in stream order.
        let mut assembler = FrameAssembler::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            assembler.extend(piece);
            while let Some((kind, payload)) = assembler.next_frame(1 << 20).unwrap() {
                decoded.push(
                    adc_server::protocol::decode_response_frame(kind, &payload).unwrap()
                );
            }
        }
        prop_assert_eq!(&decoded, &expected);

        // Truncated feed: never panics, never invents a frame past the
        // cut.
        let cut = ((stream.len() as f64 * cut_frac) as usize).min(stream.len());
        let mut assembler = FrameAssembler::new();
        assembler.extend(&stream[..cut]);
        let mut complete = 0usize;
        while let Ok(Some(_)) = assembler.next_frame(1 << 20) {
            complete += 1;
        }
        prop_assert!(complete <= expected.len());
    }

    /// `Overloaded` error frames decode to the typed code — tagged or
    /// untagged — so clients can tell admission shed from hard failure.
    #[test]
    fn overloaded_frames_decode_typed(
        corr_id in 1u64..u64::MAX,
        detail_len in 0usize..64,
    ) {
        let detail = "q".repeat(detail_len);
        let untagged = decode_response(&encode_response(&Response::Error {
            code: ErrorCode::Overloaded,
            detail: detail.clone(),
        })).unwrap();
        prop_assert_eq!(untagged, Response::Error {
            code: ErrorCode::Overloaded,
            detail: detail.clone(),
        });
        let tagged = decode_response(&encode_response(&Response::Tagged {
            corr_id,
            inner: Box::new(Response::Error {
                code: ErrorCode::Overloaded,
                detail: detail.clone(),
            }),
        })).unwrap();
        match tagged {
            Response::Tagged { corr_id: c, inner } => {
                prop_assert_eq!(c, corr_id);
                prop_assert_eq!(*inner, Response::Error {
                    code: ErrorCode::Overloaded,
                    detail,
                });
            }
            other => prop_assert!(false, "expected tagged error, got {:?}", other),
        }
    }
}
