//! A measurement session: one fabricated die on the bench.
//!
//! Wires together the pieces the paper's §4 describes: an RF generator,
//! a high-order band-pass filter, the ADC under test, and the FFT
//! post-processing — with coherent-frequency selection handled
//! automatically (including deliberate undersampling for inputs beyond
//! Nyquist, as in Fig. 6).

use adc_pipeline::config::AdcConfig;
use adc_pipeline::converter::PipelineAdc;
use adc_pipeline::error::BuildAdcError;
use adc_pipeline::lanes::LaneBatch;
use adc_spectral::linearity::{sine_histogram, LinearityError, LinearityResult};
use adc_spectral::metrics::{analyze_tone_with, SingleToneAnalysis, ToneAnalysisConfig};
use adc_spectral::plan::SpectralScratch;
use adc_spectral::window::coherent_frequency_clear;

use crate::filter::BandpassFilter;
use crate::signal::SineSource;

/// The fabrication seed of the reproduction's "measured die": chosen (see
/// `EXPERIMENTS.md`) so that this die's Table I metrics land closest to
/// the paper's published numbers. All figure regeneration binaries use it.
pub const GOLDEN_SEED: u64 = 7;

/// A dynamic measurement at one stimulus point.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ToneMeasurement {
    /// The exact (coherent) stimulus frequency used, hertz.
    pub f_in_hz: f64,
    /// Stimulus amplitude, volts peak.
    pub amplitude_v: f64,
    /// Conversion rate, hertz.
    pub f_cr_hz: f64,
    /// The spectral analysis of the captured record.
    pub analysis: SingleToneAnalysis,
}

/// Reusable capture/analysis buffers — measurement plumbing, not part
/// of the die's identity. A warm session performs a full `measure_tone`
/// without heap allocation.
#[derive(Debug, Clone, Default)]
struct SessionScratch {
    /// Captured code record.
    codes: Vec<u16>,
    /// Reconstructed analog record.
    record: Vec<f64>,
    /// Histogram-test code record.
    codes_u32: Vec<u32>,
    /// Spectral-analysis intermediates.
    spectral: SpectralScratch,
}

/// One die on the measurement bench.
#[derive(Debug, Clone)]
pub struct MeasurementSession {
    adc: PipelineAdc,
    /// FFT record length (power of two).
    pub record_len: usize,
    /// Stimulus amplitude for dynamic tests, volts peak — defaults to
    /// 0.995·V_REF (the paper used "signal amplitude near full scale
    /// (2 V_P-P)").
    pub amplitude_v: f64,
    scratch: SessionScratch,
}

impl MeasurementSession {
    /// Puts a die on the bench.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    pub fn new(config: AdcConfig, seed: u64) -> Result<Self, BuildAdcError> {
        let amplitude_v = 0.995 * config.v_ref_v;
        Ok(Self {
            adc: PipelineAdc::build(config, seed)?,
            record_len: 8192,
            amplitude_v,
            scratch: SessionScratch::default(),
        })
    }

    /// The golden die (seed [`GOLDEN_SEED`]) for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    pub fn golden(config: AdcConfig) -> Result<Self, BuildAdcError> {
        Self::new(config, GOLDEN_SEED)
    }

    /// The paper's nominal 110 MS/s design on the golden die.
    ///
    /// # Errors
    ///
    /// Propagates converter build errors.
    pub fn nominal() -> Result<Self, BuildAdcError> {
        Self::golden(AdcConfig::nominal_110ms())
    }

    /// The device under test.
    pub fn adc(&self) -> &PipelineAdc {
        &self.adc
    }

    /// Mutable access to the device under test (fault injection).
    pub fn adc_mut(&mut self) -> &mut PipelineAdc {
        &mut self.adc
    }

    /// Reconstructs a code record into analog values.
    pub fn reconstruct(&self, codes: &[u16]) -> Vec<f64> {
        codes.iter().map(|&c| self.adc.reconstruct_v(c)).collect()
    }

    /// Captures one coherent record near `f_target_hz`: RF generator →
    /// band-pass filter → ADC. Returns the codes and the exact stimulus
    /// frequency.
    pub fn capture_tone(&mut self, f_target_hz: f64) -> (Vec<u16>, f64) {
        let mut codes = Vec::new();
        let f_in = self.capture_tone_into(f_target_hz, &mut codes);
        (codes, f_in)
    }

    /// Like [`Self::capture_tone`], capturing into a caller-owned buffer
    /// (cleared first) and returning the exact stimulus frequency.
    pub fn capture_tone_into(&mut self, f_target_hz: f64, out: &mut Vec<u16>) -> f64 {
        let _trace = adc_trace::span_with("capture_tone", self.record_len as u64);
        let f_cr = self.adc.config().f_cr_hz;
        let (f_in, _) = coherent_frequency_clear(f_cr, self.record_len, f_target_hz, 8);
        let generator = SineSource::rf_generator(self.amplitude_v, f_in);
        let filtered = BandpassFilter::passive_high_order(f_in).clean(&generator);
        self.adc.reset();
        self.adc
            .convert_waveform_into(&filtered, self.record_len, out);
        f_in
    }

    /// Runs the full single-tone dynamic measurement at `f_target_hz`.
    ///
    /// Capture, reconstruction, and spectral analysis all reuse the
    /// session's scratch buffers; a warm session allocates nothing here.
    pub fn measure_tone(&mut self, f_target_hz: f64) -> ToneMeasurement {
        let _trace = adc_trace::span("measure_tone");
        let mut codes = std::mem::take(&mut self.scratch.codes);
        let mut record = std::mem::take(&mut self.scratch.record);
        let f_in = self.capture_tone_into(f_target_hz, &mut codes);
        record.clear();
        record.extend(codes.iter().map(|&c| self.adc.reconstruct_v(c)));
        let cfg = ToneAnalysisConfig::coherent().with_full_scale(self.adc.config().v_ref_v);
        let analysis = analyze_tone_with(&record, &cfg, &mut self.scratch.spectral)
            .expect("record length is a power of two by construction");
        self.scratch.codes = codes;
        self.scratch.record = record;
        ToneMeasurement {
            f_in_hz: f_in,
            amplitude_v: self.amplitude_v,
            f_cr_hz: self.adc.config().f_cr_hz,
            analysis,
        }
    }

    /// Runs the sine-histogram linearity test with `samples` conversions
    /// (use ≥ 2²⁰ for stable 12-bit DNL).
    ///
    /// # Errors
    ///
    /// Propagates histogram-test errors.
    pub fn measure_linearity(&mut self, samples: usize) -> Result<LinearityResult, LinearityError> {
        let f_cr = self.adc.config().f_cr_hz;
        let n_pow2 = samples.next_power_of_two();
        let (f_in, _) = coherent_frequency_clear(f_cr, n_pow2, f_cr / 11.3, 8);
        // Slight overdrive so the rail codes populate.
        let source = SineSource::clean(self.adc.config().v_ref_v * 1.02, f_in);
        self.adc.reset();
        let mut codes = std::mem::take(&mut self.scratch.codes);
        let mut codes_u32 = std::mem::take(&mut self.scratch.codes_u32);
        self.adc.convert_waveform_into(&source, samples, &mut codes);
        codes_u32.clear();
        codes_u32.extend(codes.iter().map(|&c| u32::from(c)));
        let result = sine_histogram(&codes_u32, self.adc.config().code_count());
        self.scratch.codes = codes;
        self.scratch.codes_u32 = codes_u32;
        result
    }
}

/// N dies on the bench at once, captured through the lane-parallel SoA
/// kernel ([`LaneBatch`]) instead of one [`MeasurementSession`] each.
///
/// The bench semantics are [`MeasurementSession`]'s exactly — same
/// coherent-frequency selection, same RF generator and band-pass
/// filter, same default record length and near-full-scale amplitude —
/// so each lane's captured record and tone analysis are bit-identical
/// to a scalar session on that die at the same seed. The lanes just
/// advance through the stage math together, which is what makes
/// Monte-Carlo die campaigns and interleaved-array captures fast.
#[derive(Debug, Clone)]
pub struct LaneBench {
    batch: LaneBatch,
    /// FFT record length (power of two), shared by every lane.
    pub record_len: usize,
    /// Stimulus amplitude for dynamic tests, volts peak — defaults to
    /// 0.995·V_REF like [`MeasurementSession`].
    pub amplitude_v: f64,
    /// Spectral-analysis intermediates, reused across lanes and tones.
    spectral: SpectralScratch,
    /// Reconstructed analog record, reused across lanes.
    record: Vec<f64>,
}

impl LaneBench {
    /// Puts one die per seed on the bench (the Monte-Carlo shape: a
    /// shared design, different process draws).
    ///
    /// # Errors
    ///
    /// Propagates converter build errors (lowest seed first).
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty.
    pub fn new(config: AdcConfig, seeds: &[u64]) -> Result<Self, BuildAdcError> {
        let amplitude_v = 0.995 * config.v_ref_v;
        Ok(Self {
            batch: LaneBatch::build(&config, seeds)?,
            record_len: 8192,
            amplitude_v,
            spectral: SpectralScratch::default(),
            record: Vec::new(),
        })
    }

    /// The dies under test, in lane order.
    pub fn lanes(&self) -> &[PipelineAdc] {
        self.batch.lanes()
    }

    /// Captures one coherent record near `f_target_hz` on every lane —
    /// one shared stimulus (RF generator → band-pass filter), N
    /// independent converters — into caller-owned buffers (cleared
    /// first, one per lane). Returns the exact stimulus frequency.
    ///
    /// # Panics
    ///
    /// Panics when `outs.len()` differs from the lane count, or when
    /// the lanes disagree on conversion rate (one coherent grid must
    /// serve every lane).
    pub fn capture_tone_into(&mut self, f_target_hz: f64, outs: &mut [Vec<u16>]) -> f64 {
        let _trace = adc_trace::span_with(
            "capture_tone_lanes",
            (self.record_len * self.batch.len()) as u64,
        );
        let f_cr = self.batch.lanes()[0].config().f_cr_hz;
        assert!(
            self.batch
                .lanes()
                .iter()
                .all(|l| l.config().f_cr_hz.to_bits() == f_cr.to_bits()),
            "lanes must share a conversion rate for one coherent capture grid"
        );
        let (f_in, _) = coherent_frequency_clear(f_cr, self.record_len, f_target_hz, 8);
        let generator = SineSource::rf_generator(self.amplitude_v, f_in);
        let filtered = BandpassFilter::passive_high_order(f_in).clean(&generator);
        self.batch.reset();
        self.batch
            .convert_waveform_into(&filtered, self.record_len, outs);
        f_in
    }

    /// Runs the full single-tone dynamic measurement at `f_target_hz`
    /// on every lane, returning one [`ToneMeasurement`] per lane — each
    /// bit-identical to [`MeasurementSession::measure_tone`] on that
    /// die alone.
    pub fn measure_tone(&mut self, f_target_hz: f64) -> Vec<ToneMeasurement> {
        let _trace = adc_trace::span("measure_tone_lanes");
        let mut codes = vec![Vec::new(); self.batch.len()];
        let f_in = self.capture_tone_into(f_target_hz, &mut codes);
        codes
            .iter()
            .zip(self.batch.lanes())
            .map(|(lane_codes, adc)| {
                self.record.clear();
                self.record
                    .extend(lane_codes.iter().map(|&c| adc.reconstruct_v(c)));
                let cfg = ToneAnalysisConfig::coherent().with_full_scale(adc.config().v_ref_v);
                let analysis = analyze_tone_with(&self.record, &cfg, &mut self.spectral)
                    .expect("record length is a power of two by construction");
                ToneMeasurement {
                    f_in_hz: f_in,
                    amplitude_v: self.amplitude_v,
                    f_cr_hz: adc.config().f_cr_hz,
                    analysis,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_session_reproduces_table1_band() {
        let mut s = MeasurementSession::nominal().unwrap();
        let m = s.measure_tone(10e6);
        // Paper Table I: SNR 67.1, SNDR 64.2, SFDR 69.4, ENOB 10.4.
        // The golden die must land within a tight band.
        assert!(
            (m.analysis.snr_db - 67.1).abs() < 1.5,
            "snr {}",
            m.analysis.snr_db
        );
        assert!(
            (m.analysis.sndr_db - 64.2).abs() < 1.5,
            "sndr {}",
            m.analysis.sndr_db
        );
        assert!(
            (m.analysis.sfdr_db - 69.4).abs() < 2.0,
            "sfdr {}",
            m.analysis.sfdr_db
        );
        assert!(
            (m.analysis.enob - 10.4).abs() < 0.25,
            "enob {}",
            m.analysis.enob
        );
    }

    #[test]
    fn capture_uses_coherent_frequency_near_target() {
        let mut s = MeasurementSession::nominal().unwrap();
        let (_, f_in) = s.capture_tone(10e6);
        assert!((f_in - 10e6).abs() < 2.0 * 110e6 / 8192.0);
    }

    #[test]
    fn ideal_config_measures_as_ideal_quantizer() {
        let mut s = MeasurementSession::golden(AdcConfig::ideal(110e6)).unwrap();
        let m = s.measure_tone(10e6);
        // Ideal 12-bit quantizer: SNDR ≈ 74 dB (slightly above the 6.02N
        // formula at amplitudes just below FS is fine: allow a band).
        assert!(m.analysis.sndr_db > 72.0, "sndr {}", m.analysis.sndr_db);
        assert!((m.analysis.enob - 12.0).abs() < 0.3);
    }

    #[test]
    fn linearity_of_ideal_converter_is_flat() {
        let mut s = MeasurementSession::golden(AdcConfig::ideal(110e6)).unwrap();
        let lin = s.measure_linearity(1 << 18).unwrap();
        // With a finite record the arcsine inversion has statistical
        // noise; an ideal converter still reads well under 0.3 LSB.
        assert!(lin.dnl_max.abs() < 0.3, "dnl {}", lin.dnl_max);
        assert!(lin.dnl_min.abs() < 0.3, "dnl {}", lin.dnl_min);
    }

    #[test]
    fn lane_bench_matches_scalar_sessions_bit_for_bit() {
        let config = AdcConfig::nominal_110ms();
        let seeds = [1u64, 2, 3, 4];
        let mut bench = LaneBench::new(config.clone(), &seeds).unwrap();
        bench.record_len = 2048;
        let measurements = bench.measure_tone(10e6);
        for (&seed, m) in seeds.iter().zip(&measurements) {
            let mut session = MeasurementSession::new(config.clone(), seed).unwrap();
            session.record_len = 2048;
            assert_eq!(
                *m,
                session.measure_tone(10e6),
                "lane for seed {seed} diverged from its scalar session"
            );
        }
    }

    #[test]
    fn sessions_are_reproducible() {
        let mut a = MeasurementSession::nominal().unwrap();
        let mut b = MeasurementSession::nominal().unwrap();
        assert_eq!(a.capture_tone(10e6).0, b.capture_tone(10e6).0);
    }
}
