//! Datasheet extraction: the paper's Table I as a measurement procedure.

use std::fmt;

use adc_pipeline::error::BuildAdcError;
use adc_spectral::linearity::LinearityError;

use crate::session::MeasurementSession;

/// The silicon area of the paper's implementation, mm². Area cannot be
/// simulated; the published value is carried as a constant (it enters
/// only the Fig. 8 figure of merit).
pub const PAPER_AREA_MM2: f64 = 0.86;

/// The paper's process label.
pub const PAPER_TECHNOLOGY: &str = "0.18 um digital CMOS";

/// A complete characterisation of one die at one operating point —
/// the rows of the paper's Table I.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Datasheet {
    /// Process label.
    pub technology: String,
    /// Nominal supply, volts.
    pub supply_v: f64,
    /// Resolution, bits.
    pub resolution_bits: u32,
    /// Full-scale input, volts peak-to-peak (differential).
    pub full_scale_vpp: f64,
    /// Silicon area, mm² (the published value; see [`PAPER_AREA_MM2`]).
    pub area_mm2: f64,
    /// Conversion rate, hertz.
    pub f_cr_hz: f64,
    /// Input frequency of the dynamic measurements, hertz.
    pub f_in_hz: f64,
    /// Analog power, watts.
    pub power_w: f64,
    /// DNL extremes, LSB.
    pub dnl_lsb: (f64, f64),
    /// INL extremes, LSB.
    pub inl_lsb: (f64, f64),
    /// Offset error, LSB (mean code error at a grounded input).
    pub offset_error_lsb: f64,
    /// Gain error, percent (transfer slope deviation over ±0.9 FS).
    pub gain_error_percent: f64,
    /// SNR at `f_in_hz`, dB.
    pub snr_db: f64,
    /// SNDR at `f_in_hz`, dB.
    pub sndr_db: f64,
    /// SFDR at `f_in_hz`, dB.
    pub sfdr_db: f64,
    /// ENOB at `f_in_hz`, bits.
    pub enob: f64,
}

/// Errors from datasheet extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasheetError {
    /// The converter could not be built.
    Build(BuildAdcError),
    /// The linearity test failed.
    Linearity(LinearityError),
}

impl fmt::Display for DatasheetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasheetError::Build(e) => write!(f, "build failed: {e}"),
            DatasheetError::Linearity(e) => write!(f, "linearity test failed: {e}"),
        }
    }
}

impl std::error::Error for DatasheetError {}

impl From<BuildAdcError> for DatasheetError {
    fn from(e: BuildAdcError) -> Self {
        DatasheetError::Build(e)
    }
}

impl From<LinearityError> for DatasheetError {
    fn from(e: LinearityError) -> Self {
        DatasheetError::Linearity(e)
    }
}

impl Datasheet {
    /// Measures a full datasheet on a session: one dynamic tone at
    /// `f_in_target_hz` plus a `linearity_samples`-point histogram test.
    ///
    /// # Errors
    ///
    /// Returns an error if the linearity test cannot run.
    pub fn measure(
        session: &mut MeasurementSession,
        f_in_target_hz: f64,
        linearity_samples: usize,
    ) -> Result<Self, DatasheetError> {
        let tone = session.measure_tone(f_in_target_hz);
        let lin = session.measure_linearity(linearity_samples)?;
        let cfg = session.adc().config().clone();
        // Offset: averaged grounded-input reading. Gain: wide-span slope.
        let average_at = |session: &mut MeasurementSession, v: f64| {
            let n = 256;
            let sum: f64 = (0..n)
                .map(|_| {
                    let code = session.adc_mut().convert_held(v);
                    session.adc().reconstruct_v(code)
                })
                .sum();
            sum / f64::from(n)
        };
        let offset_v = average_at(session, 0.0);
        let hi = average_at(session, 0.9 * cfg.v_ref_v);
        let lo = average_at(session, -0.9 * cfg.v_ref_v);
        let slope = (hi - lo) / (1.8 * cfg.v_ref_v);
        let offset_error_lsb = offset_v / cfg.lsb_v();
        let gain_error_percent = (slope - 1.0) * 100.0;
        Ok(Self {
            technology: PAPER_TECHNOLOGY.to_string(),
            supply_v: cfg.conditions.vdd_v,
            resolution_bits: cfg.resolution_bits(),
            full_scale_vpp: 2.0 * cfg.v_ref_v,
            area_mm2: PAPER_AREA_MM2,
            f_cr_hz: cfg.f_cr_hz,
            f_in_hz: tone.f_in_hz,
            power_w: session.adc().power_w(),
            offset_error_lsb,
            gain_error_percent,
            dnl_lsb: (lin.dnl_min, lin.dnl_max),
            inl_lsb: (lin.inl_min, lin.inl_max),
            snr_db: tone.analysis.snr_db,
            sndr_db: tone.analysis.sndr_db,
            sfdr_db: tone.analysis.sfdr_db,
            enob: tone.analysis.enob,
        })
    }

    /// The paper-adjusted Walden figure of merit (Eq. 2):
    /// `FM = 2^ENOB · f_CR / (A · P)` with f_CR in MS/s, A in mm², P in mW.
    pub fn figure_of_merit(&self) -> f64 {
        crate::survey::walden_adjusted_fm(
            self.enob,
            self.f_cr_hz / 1e6,
            self.area_mm2,
            self.power_w * 1e3,
        )
    }
}

impl fmt::Display for Datasheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Technology                {}", self.technology)?;
        writeln!(f, "Nominal supply voltage    {:.1} V", self.supply_v)?;
        writeln!(f, "Resolution                {} bit", self.resolution_bits)?;
        writeln!(
            f,
            "Full Scale analog input   {:.0} Vp-p",
            self.full_scale_vpp
        )?;
        writeln!(f, "Area                      {:.2} mm^2", self.area_mm2)?;
        writeln!(
            f,
            "Conversion rate           {:.0} MS/s",
            self.f_cr_hz / 1e6
        )?;
        writeln!(f, "Analog Power Consumption  {:.0} mW", self.power_w * 1e3)?;
        writeln!(
            f,
            "Offset error              {:+.1} LSB",
            self.offset_error_lsb
        )?;
        writeln!(
            f,
            "Gain error                {:+.2} %",
            self.gain_error_percent
        )?;
        writeln!(
            f,
            "DNL                       {:+.1}/{:+.1} LSB",
            self.dnl_lsb.0, self.dnl_lsb.1
        )?;
        writeln!(
            f,
            "INL                       {:+.1}/{:+.1} LSB",
            self.inl_lsb.0, self.inl_lsb.1
        )?;
        let fin_mhz = self.f_in_hz / 1e6;
        writeln!(f, "SNR  (fin={fin_mhz:.0}MHz)        {:.1} dB", self.snr_db)?;
        writeln!(
            f,
            "SNDR (fin={fin_mhz:.0}MHz)        {:.1} dB",
            self.sndr_db
        )?;
        writeln!(
            f,
            "SFDR (fin={fin_mhz:.0}MHz)        {:.1} dB",
            self.sfdr_db
        )?;
        write!(f, "ENOB (fin={fin_mhz:.0}MHz)        {:.1} bit", self.enob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_datasheet_matches_table1_bands() {
        let mut s = MeasurementSession::nominal().unwrap();
        let d = Datasheet::measure(&mut s, 10e6, 1 << 19).unwrap();
        assert_eq!(d.resolution_bits, 12);
        assert_eq!(d.supply_v, 1.8);
        assert!((d.full_scale_vpp - 2.0).abs() < 1e-12);
        assert!((d.power_w - 97e-3).abs() < 8e-3, "power {}", d.power_w);
        assert!((d.snr_db - 67.1).abs() < 1.5);
        assert!((d.sndr_db - 64.2).abs() < 1.5);
        assert!((d.enob - 10.4).abs() < 0.25);
        // Paper: DNL ±1.2, INL −1.5/+1. Shapes: sub-LSB to ~1.5 LSB.
        assert!(
            d.dnl_lsb.1 > 0.1 && d.dnl_lsb.1 < 1.6,
            "dnl {:?}",
            d.dnl_lsb
        );
        assert!(
            d.inl_lsb.0 < -0.3 && d.inl_lsb.0 > -2.0,
            "inl {:?}",
            d.inl_lsb
        );
    }

    #[test]
    fn figure_of_merit_matches_eq2_for_paper_numbers() {
        let d = Datasheet {
            technology: PAPER_TECHNOLOGY.into(),
            supply_v: 1.8,
            resolution_bits: 12,
            full_scale_vpp: 2.0,
            area_mm2: 0.86,
            f_cr_hz: 110e6,
            f_in_hz: 10e6,
            power_w: 97e-3,
            offset_error_lsb: 0.0,
            gain_error_percent: 0.0,
            dnl_lsb: (-1.2, 1.2),
            inl_lsb: (-1.5, 1.0),
            snr_db: 67.1,
            sndr_db: 64.2,
            sfdr_db: 69.4,
            enob: 10.4,
        };
        // 2^10.4·110/(0.86·97) ≈ 1782
        assert!(
            (d.figure_of_merit() - 1782.0).abs() < 15.0,
            "fm {}",
            d.figure_of_merit()
        );
    }

    #[test]
    fn display_contains_all_table1_rows() {
        let d = Datasheet {
            technology: PAPER_TECHNOLOGY.into(),
            supply_v: 1.8,
            resolution_bits: 12,
            full_scale_vpp: 2.0,
            area_mm2: 0.86,
            f_cr_hz: 110e6,
            f_in_hz: 10e6,
            power_w: 97e-3,
            offset_error_lsb: 0.0,
            gain_error_percent: 0.0,
            dnl_lsb: (-1.2, 1.2),
            inl_lsb: (-1.5, 1.0),
            snr_db: 67.1,
            sndr_db: 64.2,
            sfdr_db: 69.4,
            enob: 10.4,
        };
        let text = d.to_string();
        for needle in [
            "Technology",
            "SNR",
            "SNDR",
            "SFDR",
            "ENOB",
            "DNL",
            "INL",
            "Power",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
