//! Plain-text reporting: aligned tables and CSV output for the figure
//! regeneration binaries, plus the [`CampaignReporter`] progress
//! observer for `adc-runtime` campaigns.

use std::fmt::Write as _;
use std::sync::Mutex;

use adc_runtime::{CampaignSummary, JobId, JobReport, RunObserver};

/// A [`RunObserver`] that narrates campaign progress as text lines.
///
/// Writes a header when the campaign starts, a progress line at each
/// completed-job milestone (every `stride` jobs, and always the last),
/// and a summary line — jobs/s, samples/s, effective speedup — when it
/// finishes. Output goes to any `Write + Send` sink behind a mutex, so
/// worker threads can report concurrently.
pub struct CampaignReporter<W: std::io::Write + Send> {
    out: Mutex<W>,
    stride: usize,
}

impl<W: std::io::Write + Send> std::fmt::Debug for CampaignReporter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignReporter")
            .field("stride", &self.stride)
            .finish()
    }
}

impl CampaignReporter<std::io::Stderr> {
    /// A reporter on standard error (progress must not pollute the
    /// figure tables on standard out), announcing every 4th job.
    pub fn stderr() -> Self {
        Self::to(std::io::stderr(), 4)
    }
}

impl<W: std::io::Write + Send> CampaignReporter<W> {
    /// A reporter on an arbitrary sink, announcing every `stride`-th
    /// completed job (`stride` is clamped to at least 1).
    pub fn to(out: W, stride: usize) -> Self {
        Self {
            out: Mutex::new(out),
            stride: stride.max(1),
        }
    }

    fn line(&self, text: &str) {
        let mut out = self.out.lock().expect("reporter lock");
        let _ = writeln!(out, "{text}");
    }
}

impl<W: std::io::Write + Send> RunObserver for CampaignReporter<W> {
    fn on_campaign_start(&self, name: &str, jobs: usize, threads: usize) {
        self.line(&format!("[{name}] {jobs} jobs on {threads} threads"));
    }

    fn on_job_finish(&self, id: JobId, report: &JobReport) {
        if let Some(err) = &report.error {
            self.line(&format!("[job {id}] {err}"));
        }
    }

    fn on_progress(&self, done: usize, total: usize) {
        if done.is_multiple_of(self.stride) || done == total {
            self.line(&format!("  {done}/{total} jobs done"));
        }
    }

    fn on_campaign_finish(&self, summary: &CampaignSummary) {
        self.line(&format!(
            "[{}] {}/{} ok in {:.2?} ({:.1} jobs/s, {:.2e} samples/s, {:.1}x speedup)",
            summary.name,
            summary.succeeded,
            summary.jobs,
            summary.wall,
            summary.jobs_per_sec(),
            summary.samples_per_sec(),
            summary.speedup(),
        ));
    }
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the CSV rendering to a file (for plotting the figure
    /// series with external tools).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.render_csv())
    }

    /// Renders as CSV (no quoting — intended for numeric tables).
    pub fn render_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a one-sided power spectrum as an ASCII plot, the way a bench
/// spectrum analyzer displays it: x = frequency bins (binned down to
/// `width` columns, peak-holding within each column), y = dB relative to
/// the spectrum's peak, clipped at `floor_db` (negative).
///
/// # Panics
///
/// Panics for an empty spectrum, non-positive dimensions, or a
/// non-negative floor.
pub fn render_spectrum_ascii(power: &[f64], width: usize, height: usize, floor_db: f64) -> String {
    assert!(!power.is_empty(), "empty spectrum");
    assert!(width > 0 && height > 1, "degenerate plot dimensions");
    assert!(floor_db < 0.0, "floor must be below the 0 dB peak");
    let peak = power.iter().copied().fold(0.0_f64, f64::max);
    let peak = if peak > 0.0 { peak } else { 1.0 };
    // Column levels: max power in each bin group, in dB relative to peak.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * power.len() / width;
            let hi = (((c + 1) * power.len()) / width)
                .max(lo + 1)
                .min(power.len());
            let p = power[lo..hi].iter().copied().fold(0.0_f64, f64::max);
            if p > 0.0 {
                (10.0 * (p / peak).log10()).max(floor_db)
            } else {
                floor_db
            }
        })
        .collect();
    let mut out = String::new();
    for row in 0..height {
        let level = -(row as f64) * floor_db.abs() / (height - 1) as f64;
        let label = if row == 0 || row == height - 1 || row == (height - 1) / 2 {
            format!("{level:6.0} |")
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        for &c in &cols {
            out.push(if c >= level { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("  dB    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("        0");
    let pad = width.saturating_sub(9);
    out.push_str(&" ".repeat(pad));
    out.push_str("fs/2\n");
    out
}

/// Formats a decibel value for a table cell.
pub fn db_cell(value_db: f64) -> String {
    if value_db.is_finite() {
        format!("{value_db:.1}")
    } else {
        "-".to_string()
    }
}

/// Formats a frequency in MHz/MS/s for a table cell.
pub fn mhz_cell(value_hz: f64) -> String {
    format!("{:.1}", value_hz / 1e6)
}

/// Formats a power in mW for a table cell.
pub fn mw_cell(value_w: f64) -> String {
    format!("{:.1}", value_w * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_reporter_narrates_runs() {
        use adc_runtime::{Campaign, JobError};
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let reporter = Arc::new(CampaignReporter::to(buf.clone(), 2));
        let run = Campaign::new("narrate", 3)
            .jobs(0u64..4)
            .threads(2)
            .observe(reporter)
            .run(|_, &x| {
                if x == 2 {
                    Err(JobError::Failed("bad point".into()))
                } else {
                    Ok(x)
                }
            });
        assert_eq!(run.values().count(), 3);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("[narrate] 4 jobs on 2 threads"), "{text}");
        assert!(text.contains("bad point"), "{text}");
        assert!(text.contains("4/4 jobs done"), "{text}");
        assert!(text.contains("3/4 ok"), "{text}");
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["rate", "SNDR"]);
        t.push_row(["110.0", "64.2"]);
        t.push_row(["5.0", "63.1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width (right-aligned columns).
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[2].contains("110.0"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_saves_to_disk() {
        let mut t = TextTable::new(["x", "y"]);
        t.push_row(["3", "4"]);
        let path = std::env::temp_dir().join("adc_testbench_report_test.csv");
        t.save_csv(&path).expect("temp dir is writable");
        let back = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(back, "x,y\n3,4\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn spectrum_plot_marks_the_tone_column() {
        // A spectrum with one dominant bin: the corresponding column
        // must reach the top row; quiet columns must not.
        let mut ps = vec![1e-10; 256];
        ps[64] = 1.0;
        let txt = render_spectrum_ascii(&ps, 64, 10, -100.0);
        let top_row = txt.lines().next().unwrap();
        // Column of bin 64 out of 256 -> column 16 of 64 (+8 for label).
        let cells: Vec<char> = top_row.chars().collect();
        assert_eq!(cells[8 + 16], '#', "row: {top_row}");
        assert_eq!(cells[8 + 40], ' ');
    }

    #[test]
    fn spectrum_plot_has_requested_dimensions() {
        let ps = vec![1.0; 128];
        let txt = render_spectrum_ascii(&ps, 40, 8, -80.0);
        assert_eq!(txt.lines().count(), 8 + 2);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn spectrum_plot_rejects_positive_floor() {
        let _ = render_spectrum_ascii(&[1.0], 10, 5, 10.0);
    }

    #[test]
    fn cells_format_units() {
        assert_eq!(db_cell(64.23), "64.2");
        assert_eq!(db_cell(f64::NEG_INFINITY), "-");
        assert_eq!(mhz_cell(110e6), "110.0");
        assert_eq!(mw_cell(0.097), "97.0");
    }
}
