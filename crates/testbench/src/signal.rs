//! Signal sources for the measurement bench.
//!
//! The paper's dynamic measurements were "done by using RF-sources for the
//! input signal and the clocking of the ADC", filtered by "high order
//! passive band-pass filters ... to remove harmonics and white noise
//! produced by the sources" (§4). [`SineSource`] models the RF generator —
//! a tone plus its residual harmonics, wideband noise floor, and close-in
//! phase noise — and `crate::filter` models the band-pass cleanup.
//!
//! All sources implement [`adc_pipeline::Waveform`] with analytic slopes,
//! so tracking-distortion and jitter models in the converter see exact
//! derivatives.

use adc_pipeline::Waveform;
use std::f64::consts::TAU;

/// One residual harmonic of a generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Harmonic {
    /// Harmonic order (2 = second harmonic, ...).
    pub order: u32,
    /// Amplitude relative to the fundamental (linear, e.g. 10^(-60/20)).
    pub relative_amplitude: f64,
}

/// A laboratory RF sine generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SineSource {
    /// Peak amplitude of the fundamental, volts.
    pub amplitude_v: f64,
    /// Frequency, hertz.
    pub frequency_hz: f64,
    /// Initial phase, radians.
    pub phase_rad: f64,
    /// DC offset, volts.
    pub dc_v: f64,
    /// Residual harmonics (after any filtering).
    pub harmonics: Vec<Harmonic>,
    /// Deterministic close-in phase modulation depth, radians (a simple
    /// stand-in for generator phase noise; 0 = clean).
    pub phase_wobble_rad: f64,
    /// Phase-wobble rate, hertz.
    pub phase_wobble_hz: f64,
}

impl SineSource {
    /// An ideally clean tone.
    pub fn clean(amplitude_v: f64, frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        Self {
            amplitude_v,
            frequency_hz,
            phase_rad: 0.0,
            dc_v: 0.0,
            harmonics: Vec::new(),
            phase_wobble_rad: 0.0,
            phase_wobble_hz: 0.0,
        }
    }

    /// A realistic bench RF generator *before* band-pass filtering:
    /// −55 dBc HD2, −60 dBc HD3, and mild close-in phase wobble. Feed it
    /// through [`crate::filter::BandpassFilter::clean`] to reproduce the
    /// paper's measurement hygiene.
    pub fn rf_generator(amplitude_v: f64, frequency_hz: f64) -> Self {
        Self {
            harmonics: vec![
                Harmonic {
                    order: 2,
                    relative_amplitude: 10f64.powf(-55.0 / 20.0),
                },
                Harmonic {
                    order: 3,
                    relative_amplitude: 10f64.powf(-60.0 / 20.0),
                },
            ],
            phase_wobble_rad: 1e-4,
            phase_wobble_hz: frequency_hz / 1e4,
            ..Self::clean(amplitude_v, frequency_hz)
        }
    }

    /// Sets the initial phase.
    pub fn with_phase(mut self, phase_rad: f64) -> Self {
        self.phase_rad = phase_rad;
        self
    }

    /// The instantaneous phase argument at time `t`.
    fn theta(&self, t_s: f64) -> f64 {
        let wobble = if self.phase_wobble_rad > 0.0 {
            self.phase_wobble_rad * (TAU * self.phase_wobble_hz * t_s).sin()
        } else {
            0.0
        };
        TAU * self.frequency_hz * t_s + self.phase_rad + wobble
    }
}

/// Samples between exact re-anchorings of the phase recurrence in
/// [`SineSource::fill_with_slope`]: rounding drift over one block stays
/// below ~1e-13 relative, far under every modelled noise floor.
const RECURRENCE_BLOCK: usize = 1024;

impl Waveform for SineSource {
    fn value(&self, t_s: f64) -> f64 {
        let theta = self.theta(t_s);
        let mut v = self.dc_v + self.amplitude_v * theta.sin();
        for h in &self.harmonics {
            v += self.amplitude_v * h.relative_amplitude * (f64::from(h.order) * theta).sin();
        }
        v
    }

    fn slope(&self, t_s: f64) -> f64 {
        let theta = self.theta(t_s);
        let dtheta = TAU * self.frequency_hz
            + self.phase_wobble_rad
                * TAU
                * self.phase_wobble_hz
                * (TAU * self.phase_wobble_hz * t_s).cos();
        let mut d = self.amplitude_v * theta.cos() * dtheta;
        for h in &self.harmonics {
            d += self.amplitude_v
                * h.relative_amplitude
                * f64::from(h.order)
                * dtheta
                * (f64::from(h.order) * theta).cos();
        }
        d
    }

    /// Shares one phase-argument evaluation between value and slope —
    /// bit-identical to separate [`Waveform::value`]/[`Waveform::slope`]
    /// calls (identical expression trees on the same `theta`), at half
    /// the transcendental cost.
    fn sample_at(&self, t_s: f64) -> (f64, f64) {
        let theta = self.theta(t_s);
        let dtheta = TAU * self.frequency_hz
            + self.phase_wobble_rad
                * TAU
                * self.phase_wobble_hz
                * (TAU * self.phase_wobble_hz * t_s).cos();
        let mut v = self.dc_v + self.amplitude_v * theta.sin();
        let mut d = self.amplitude_v * theta.cos() * dtheta;
        for h in &self.harmonics {
            let harmonic_theta = f64::from(h.order) * theta;
            v += self.amplitude_v * h.relative_amplitude * harmonic_theta.sin();
            d += self.amplitude_v
                * h.relative_amplitude
                * f64::from(h.order)
                * dtheta
                * harmonic_theta.cos();
        }
        (v, d)
    }

    /// Grid evaluation with a phase-recurrence fast path.
    ///
    /// A clean tone (no wobble, no harmonics) advances `sin θ / cos θ`
    /// by one complex rotation per sample instead of evaluating `sin`
    /// and `cos` at every instant, re-anchoring exactly (via
    /// [`Waveform::sample_at`]'s phase expression) every
    /// [`RECURRENCE_BLOCK`] samples so rounding drift stays ≲1e-13
    /// relative — negligible against every modelled noise source. Wobbly
    /// or harmonic-bearing sources fall back to per-sample evaluation.
    fn fill_with_slope(&self, t0_s: f64, dt_s: f64, values: &mut [f64], slopes: &mut [f64]) {
        assert_eq!(values.len(), slopes.len());
        if self.phase_wobble_rad > 0.0 || !self.harmonics.is_empty() {
            for (k, (v, s)) in values.iter_mut().zip(slopes.iter_mut()).enumerate() {
                let t = t0_s + k as f64 * dt_s;
                let (value, slope) = self.sample_at(t);
                *v = value;
                *s = slope;
            }
            return;
        }
        let omega = TAU * self.frequency_hz;
        let (rot_sin, rot_cos) = (omega * dt_s).sin_cos();
        let slope_gain = self.amplitude_v * omega;
        let n = values.len();
        let mut k = 0usize;
        while k < n {
            let (mut sin_theta, mut cos_theta) = self.theta(t0_s + k as f64 * dt_s).sin_cos();
            let block = (n - k).min(RECURRENCE_BLOCK);
            for i in k..k + block {
                values[i] = self.dc_v + self.amplitude_v * sin_theta;
                slopes[i] = slope_gain * cos_theta;
                let advanced_sin = sin_theta * rot_cos + cos_theta * rot_sin;
                let advanced_cos = cos_theta * rot_cos - sin_theta * rot_sin;
                sin_theta = advanced_sin;
                cos_theta = advanced_cos;
            }
            k += block;
        }
    }
}

/// A sum of independent tones (for intermodulation tests).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MultiTone {
    /// The component tones.
    pub tones: Vec<SineSource>,
}

impl MultiTone {
    /// A symmetric two-tone stimulus.
    pub fn two_tone(amplitude_each_v: f64, f1_hz: f64, f2_hz: f64) -> Self {
        Self {
            tones: vec![
                SineSource::clean(amplitude_each_v, f1_hz),
                SineSource::clean(amplitude_each_v, f2_hz),
            ],
        }
    }
}

impl Waveform for MultiTone {
    fn value(&self, t_s: f64) -> f64 {
        self.tones.iter().map(|s| s.value(t_s)).sum()
    }

    fn slope(&self, t_s: f64) -> f64 {
        self.tones.iter().map(|s| s.slope(t_s)).sum()
    }
}

/// A slow linear ramp between two voltages (static/linearity testing).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RampSource {
    /// Start voltage.
    pub from_v: f64,
    /// End voltage.
    pub to_v: f64,
    /// Ramp duration, seconds.
    pub duration_s: f64,
}

impl RampSource {
    /// Creates a ramp.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not positive.
    pub fn new(from_v: f64, to_v: f64, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "ramp duration must be positive");
        Self {
            from_v,
            to_v,
            duration_s,
        }
    }
}

impl Waveform for RampSource {
    fn value(&self, t_s: f64) -> f64 {
        let x = (t_s / self.duration_s).clamp(0.0, 1.0);
        self.from_v + (self.to_v - self.from_v) * x
    }

    fn slope(&self, t_s: f64) -> f64 {
        if (0.0..=self.duration_s).contains(&t_s) {
            (self.to_v - self.from_v) / self.duration_s
        } else {
            0.0
        }
    }
}

/// A constant level (offset/grounded-input testing).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct DcSource {
    /// The level, volts.
    pub level_v: f64,
}

impl Waveform for DcSource {
    fn value(&self, _t_s: f64) -> f64 {
        self.level_v
    }

    fn slope(&self, _t_s: f64) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sine_has_exact_value_and_slope() {
        let s = SineSource::clean(0.8, 10e6);
        let t = 13.7e-9;
        let expected = 0.8 * (TAU * 10e6 * t).sin();
        assert!((s.value(t) - expected).abs() < 1e-15);
        let dexp = 0.8 * TAU * 10e6 * (TAU * 10e6 * t).cos();
        assert!((s.slope(t) - dexp).abs() / dexp.abs() < 1e-12);
    }

    #[test]
    fn analytic_slope_matches_numeric() {
        let s = SineSource::rf_generator(1.0, 7e6);
        for &t in &[0.0, 1e-7, 3.3e-7] {
            let numeric = (s.value(t + 1e-12) - s.value(t - 1e-12)) / 2e-12;
            assert!(
                (s.slope(t) - numeric).abs() < 1e-2 * s.slope(t).abs().max(1.0),
                "t {t}: {} vs {numeric}",
                s.slope(t)
            );
        }
    }

    #[test]
    fn harmonics_add_to_value() {
        let mut s = SineSource::clean(1.0, 1e6);
        s.harmonics.push(Harmonic {
            order: 3,
            relative_amplitude: 0.1,
        });
        // At the fundamental's positive peak (θ = π/2), HD3 contributes
        // sin(3π/2) = −1.
        let t_peak = 0.25 / 1e6;
        assert!((s.value(t_peak) - (1.0 - 0.1)).abs() < 1e-9);
    }

    #[test]
    fn sample_at_is_bit_identical_to_separate_calls() {
        let s = SineSource::rf_generator(1.0, 7e6).with_phase(0.3);
        for i in 0..200 {
            let t = i as f64 * 9.09e-9;
            let (v, d) = s.sample_at(t);
            assert_eq!(v.to_bits(), s.value(t).to_bits(), "value at t={t}");
            assert_eq!(d.to_bits(), s.slope(t).to_bits(), "slope at t={t}");
        }
    }

    #[test]
    fn recurrence_fill_tracks_direct_evaluation() {
        // Clean tone => the phase-recurrence path runs; drift between
        // re-anchors must stay far below any modelled noise floor.
        let s = SineSource::clean(0.9, 10.3e6).with_phase(0.7);
        let n = 4096;
        let dt = 1.0 / 110e6;
        let mut values = vec![0.0; n];
        let mut slopes = vec![0.0; n];
        s.fill_with_slope(0.0, dt, &mut values, &mut slopes);
        for k in 0..n {
            let (v, d) = s.sample_at(k as f64 * dt);
            assert!(
                (values[k] - v).abs() < 1e-11,
                "value drift {} at k={k}",
                (values[k] - v).abs()
            );
            // Drift scales with the full-scale slope A·ω (the recurrence
            // error lives in the phasor), not the local slope.
            assert!(
                (slopes[k] - d).abs() < 1e-12 * (0.9 * TAU * 10.3e6),
                "slope drift {} at k={k}",
                (slopes[k] - d).abs()
            );
        }
    }

    #[test]
    fn wobbly_source_fill_is_bit_identical_to_sample_at() {
        // Wobble/harmonics => the fallback runs and must be exact.
        let s = SineSource::rf_generator(1.0, 10e6);
        let n = 257;
        let dt = 1.0 / 110e6;
        let mut values = vec![0.0; n];
        let mut slopes = vec![0.0; n];
        s.fill_with_slope(1e-8, dt, &mut values, &mut slopes);
        for k in 0..n {
            let (v, d) = s.sample_at(1e-8 + k as f64 * dt);
            assert_eq!(values[k].to_bits(), v.to_bits());
            assert_eq!(slopes[k].to_bits(), d.to_bits());
        }
    }

    #[test]
    fn two_tone_sums_components() {
        let m = MultiTone::two_tone(0.45, 9e6, 10e6);
        let t = 1e-7;
        let expected = 0.45 * (TAU * 9e6 * t).sin() + 0.45 * (TAU * 10e6 * t).sin();
        assert!((m.value(t) - expected).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_linear_and_clamped() {
        let r = RampSource::new(-1.0, 1.0, 1e-3);
        assert_eq!(r.value(0.0), -1.0);
        assert_eq!(r.value(0.5e-3), 0.0);
        assert_eq!(r.value(1e-3), 1.0);
        assert_eq!(r.value(2e-3), 1.0); // clamped
        assert!((r.slope(0.3e-3) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn dc_source_is_flat() {
        let d = DcSource { level_v: 0.3 };
        assert_eq!(d.value(0.0), 0.3);
        assert_eq!(d.value(1.0), 0.3);
        assert_eq!(d.slope(0.5), 0.0);
    }
}
