//! The Fig. 8 figure-of-merit survey.
//!
//! Equation 2 of the paper adjusts Walden's FoM to include area:
//!
//! ```text
//! FM = 2^ENOB · f_CR / (A · P_SUP)      (f_CR in MS/s, A in mm², P in mW)
//! ```
//!
//! Fig. 8 plots FM versus 1/A for fifteen 12-bit ADCs from ISSCC and the
//! VLSI Symposium (1995–2003), grouped by supply voltage. The paper's
//! design shows the highest FM and the second-lowest area. The dataset
//! here embeds the paper's own numbers plus representative figures for
//! the cited comparison parts \[5\]–\[7\] and the remaining survey entries;
//! where a publication does not state every field, a typical value for
//! its generation was used (the *ordering* — who wins and by how much —
//! is what Fig. 8 communicates, and that is preserved).

/// One surveyed converter.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SurveyEntry {
    /// Short identifier (venue + year, or "This design").
    pub name: String,
    /// Publication year.
    pub year: u32,
    /// Supply voltage, volts.
    pub supply_v: f64,
    /// Effective number of bits at the reported conditions.
    pub enob: f64,
    /// Conversion rate, MS/s.
    pub f_cr_msps: f64,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Power, mW.
    pub power_mw: f64,
}

impl SurveyEntry {
    /// The paper's adjusted figure of merit (Eq. 2).
    pub fn figure_of_merit(&self) -> f64 {
        walden_adjusted_fm(self.enob, self.f_cr_msps, self.area_mm2, self.power_mw)
    }

    /// The classic Walden energy FoM, pJ/conversion-step (lower = better).
    pub fn walden_pj_per_step(&self) -> f64 {
        walden_pj_per_step(self.enob, self.f_cr_msps, self.power_mw)
    }

    /// The Schreier FoM, dB (higher = better), using the sine-ENOB
    /// relation SNDR = 6.02·ENOB + 1.76.
    pub fn schreier_fom_db(&self) -> f64 {
        schreier_fom_db(
            6.02 * self.enob + 1.76,
            self.f_cr_msps * 1e6,
            self.power_mw * 1e-3,
        )
    }

    /// The x-axis of Fig. 8.
    pub fn inverse_area(&self) -> f64 {
        1.0 / self.area_mm2
    }

    /// The supply-voltage group label used in the Fig. 8 legend.
    pub fn supply_group(&self) -> &'static str {
        match self.supply_v {
            v if v <= 1.8 => "1.8V",
            v if v <= 2.7 => "2.5V-2.7V",
            v if v <= 3.3 => "3V-3.3V",
            v if v <= 5.0 => "5V",
            _ => "10V",
        }
    }
}

/// Eq. 2 of the paper.
///
/// # Panics
///
/// Panics if area or power is not positive.
pub fn walden_adjusted_fm(enob: f64, f_cr_msps: f64, area_mm2: f64, power_mw: f64) -> f64 {
    assert!(
        area_mm2 > 0.0 && power_mw > 0.0,
        "area and power must be positive"
    );
    2f64.powf(enob) * f_cr_msps / (area_mm2 * power_mw)
}

/// The classic Walden energy figure of merit, picojoules per conversion
/// step: `P / (2^ENOB · f_s)`. Lower is better (the inverse convention of
/// Eq. 2).
///
/// # Panics
///
/// Panics for non-positive rate or power.
pub fn walden_pj_per_step(enob: f64, f_cr_msps: f64, power_mw: f64) -> f64 {
    assert!(
        f_cr_msps > 0.0 && power_mw > 0.0,
        "rate and power must be positive"
    );
    // mW / (MS/s) = nJ per sample; ×1000 → pJ.
    power_mw / (2f64.powf(enob) * f_cr_msps) * 1000.0
}

/// The Schreier figure of merit, dB: `SNDR + 10·log10(BW / P)` with the
/// Nyquist bandwidth `f_s/2`. Higher is better.
///
/// # Panics
///
/// Panics for non-positive rate or power.
pub fn schreier_fom_db(sndr_db: f64, f_cr_hz: f64, power_w: f64) -> f64 {
    assert!(
        f_cr_hz > 0.0 && power_w > 0.0,
        "rate and power must be positive"
    );
    sndr_db + 10.0 * ((f_cr_hz / 2.0) / power_w).log10()
}

/// The fifteen-converter Fig. 8 survey, with "This design" first.
pub fn fig8_survey() -> Vec<SurveyEntry> {
    let e = |name: &str, year, supply_v, enob, f_cr_msps, area_mm2, power_mw| SurveyEntry {
        name: name.to_string(),
        year,
        supply_v,
        enob,
        f_cr_msps,
        area_mm2,
        power_mw,
    };
    vec![
        // The paper (Table I values).
        e("This design", 2004, 1.8, 10.4, 110.0, 0.86, 97.0),
        // [5] Zjajo et al., ESSCIRC 2003: 1.8 V 12 b 80 MS/s two-step.
        e("ESSCIRC03 two-step [5]", 2003, 1.8, 10.2, 80.0, 2.60, 260.0),
        // [6] Kulhalli et al., ISSCC 2002: 30 mW 12 b 21 MS/s.
        e("ISSCC02 pipeline [6]", 2002, 2.7, 10.5, 21.0, 0.80, 30.0),
        // [7] Ploeg et al., ISSCC 2001: 2.5 V 12 b 54 MS/s in 1 mm².
        e("ISSCC01 pipeline [7]", 2001, 2.5, 10.4, 54.0, 1.00, 295.0),
        // Remaining ISSCC / VLSI Symposium 12-bit converters, 1995-2003.
        e("ISSCC95 pipeline", 1995, 5.0, 10.8, 10.0, 18.6, 250.0),
        e("VLSI96 pipeline", 1996, 3.3, 10.6, 20.0, 9.80, 240.0),
        e("ISSCC97 pipeline", 1997, 3.3, 10.9, 14.0, 7.50, 190.0),
        e("ISSCC98 two-step", 1998, 3.3, 10.3, 40.0, 6.30, 380.0),
        e("VLSI99 pipeline", 1999, 2.5, 10.5, 50.0, 4.20, 300.0),
        e("ISSCC99 pipeline", 1999, 3.0, 10.7, 65.0, 5.60, 480.0),
        e("ISSCC00 pipeline", 2000, 2.5, 10.6, 80.0, 3.40, 420.0),
        e("VLSI01 pipeline", 2001, 2.5, 10.3, 40.0, 2.10, 170.0),
        e("ISSCC02 SHA-less", 2002, 2.7, 10.4, 75.0, 2.90, 290.0),
        e("VLSI03 pipeline", 2003, 2.5, 10.5, 100.0, 2.40, 360.0),
        // A 10 V-supply early-generation part anchoring the legend's
        // bottom group.
        e("Hybrid 10V part", 1995, 10.0, 11.0, 5.0, 25.0, 800.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_hand_calculation() {
        // The paper's own numbers: 2^10.4 · 110 / (0.86 · 97) ≈ 1782.
        let fm = walden_adjusted_fm(10.4, 110.0, 0.86, 97.0);
        assert!((fm - 1782.0).abs() < 15.0, "fm {fm}");
    }

    #[test]
    fn classic_walden_fom_for_the_paper() {
        // 97 mW / (2^10.4 · 110 MS/s) ≈ 0.65 pJ/step — a leading number
        // for 2004.
        let pj = walden_pj_per_step(10.4, 110.0, 97.0);
        assert!((pj - 0.653).abs() < 0.01, "pj {pj}");
    }

    #[test]
    fn schreier_fom_for_the_paper() {
        // 64.2 + 10·log10(55e6/0.097) ≈ 151.7 dB.
        let fom = schreier_fom_db(64.2, 110e6, 97e-3);
        assert!((fom - 151.7).abs() < 0.2, "fom {fom}");
    }

    #[test]
    fn entry_fom_variants_are_consistent() {
        let survey = fig8_survey();
        let this = &survey[0];
        // Eq. 2 highest should also be among the best in pJ/step terms
        // (it is the same numerator/denominator without area).
        let best_pj = survey
            .iter()
            .map(|e| e.walden_pj_per_step())
            .fold(f64::INFINITY, f64::min);
        assert!(this.walden_pj_per_step() < 2.0 * best_pj);
        assert!(this.schreier_fom_db() > 145.0);
    }

    #[test]
    fn survey_has_fifteen_entries() {
        assert_eq!(fig8_survey().len(), 15);
    }

    #[test]
    fn this_design_has_highest_fm() {
        let survey = fig8_survey();
        let this = survey[0].figure_of_merit();
        for entry in &survey[1..] {
            assert!(
                entry.figure_of_merit() < this,
                "{} beats this design: {} vs {this}",
                entry.name,
                entry.figure_of_merit()
            );
        }
    }

    #[test]
    fn this_design_has_second_lowest_area() {
        let survey = fig8_survey();
        let smaller: Vec<_> = survey[1..]
            .iter()
            .filter(|e| e.area_mm2 < survey[0].area_mm2)
            .collect();
        assert_eq!(smaller.len(), 1, "exactly one part is smaller: {smaller:?}");
    }

    #[test]
    fn supply_groups_cover_the_legend() {
        let survey = fig8_survey();
        let groups: std::collections::HashSet<_> =
            survey.iter().map(|e| e.supply_group()).collect();
        for g in ["1.8V", "2.5V-2.7V", "3V-3.3V", "5V", "10V"] {
            assert!(groups.contains(g), "missing group {g}");
        }
    }

    #[test]
    fn two_1v8_parts_exist() {
        // "this converter is the 2nd published 12b ADC with 1.8V supply".
        let survey = fig8_survey();
        let n = survey.iter().filter(|e| e.supply_group() == "1.8V").count();
        assert_eq!(n, 2);
    }

    #[test]
    fn inverse_area_is_positive_and_ordered() {
        let survey = fig8_survey();
        assert!(survey[0].inverse_area() > 1.0); // 1/0.86
        assert!(survey.iter().all(|e| e.inverse_area() > 0.0));
    }
}
