//! # adc-testbench
//!
//! The measurement laboratory of the DATE 2004 pipeline-ADC reproduction:
//! everything the paper's §4 bench did, in software.
//!
//! * [`signal`] — RF generator models (tone + residual harmonics + phase
//!   wobble), multitone, ramps;
//! * [`filter`] — the high-order passive band-pass filters the authors
//!   used to clean their sources, plus discrete-time biquads;
//! * [`session`] — a die on the bench: coherent captures, single-tone
//!   dynamic metrics, histogram linearity ([`session::GOLDEN_SEED`] is
//!   the reproduction's "measured die");
//! * [`sweep`] — the campaigns behind Figs. 4, 5 and 6;
//! * [`policy`] — execution policy (thread count, observers) routing
//!   every campaign through the `adc-runtime` engine;
//! * [`datasheet`] — Table I as a measurement procedure;
//! * [`survey`] — Eq. 2 and the fifteen-converter Fig. 8 FoM survey;
//! * [`report`] — text tables / CSV for the regeneration binaries.
//!
//! ```
//! # fn main() -> Result<(), adc_pipeline::error::BuildAdcError> {
//! use adc_testbench::session::MeasurementSession;
//!
//! let mut bench = MeasurementSession::nominal()?;
//! let m = bench.measure_tone(10e6);
//! // Table I territory:
//! assert!(m.analysis.snr_db > 65.0 && m.analysis.snr_db < 69.0);
//! # Ok(())
//! # }
//! ```

pub mod datasheet;
pub mod experiments;
pub mod filter;
pub mod floorplan;
pub mod montecarlo;
pub mod policy;
pub mod report;
pub mod session;
pub mod signal;
pub mod survey;
pub mod sweep;

pub use datasheet::{Datasheet, DatasheetError, PAPER_AREA_MM2};
pub use filter::{BandpassFilter, Biquad};
pub use floorplan::{Floorplan, FloorplanBlock};
pub use montecarlo::{
    measure_die, measure_dies_laned, monte_carlo_plan, run_monte_carlo, run_monte_carlo_with,
    summarize_dies, DieResult, MetricStats, MonteCarloPlan, MonteCarloResult, YieldSpec,
};
pub use policy::RunPolicy;
pub use report::CampaignReporter;
pub use session::{LaneBench, MeasurementSession, ToneMeasurement, GOLDEN_SEED};
pub use signal::{DcSource, Harmonic, MultiTone, RampSource, SineSource};
pub use survey::{
    fig8_survey, schreier_fom_db, walden_adjusted_fm, walden_pj_per_step, SurveyEntry,
};
pub use sweep::{DynamicPoint, SweepRunner};
