//! Area accounting and floorplan rendering — the Fig. 7 substitution.
//!
//! Fig. 7 of the paper is a die photograph; a simulation cannot produce
//! silicon, but it *can* carry the area model that the photograph
//! documents: the block-level area budget summing to the published
//! 0.86 mm², with the pipeline chain dominating and the stage-scaling
//! profile visible in the per-stage areas. The paper's layout tricks
//! (power routing strapped in all metal layers, routing over active) are
//! what made the budget this small; they enter here as the achieved
//! block densities.

use crate::datasheet::PAPER_AREA_MM2;
use adc_pipeline::config::ScalingProfile;

/// One floorplan block.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FloorplanBlock {
    /// Block name (as labelled on the die photo).
    pub name: String,
    /// Area, mm².
    pub area_mm2: f64,
}

/// The ADC's area budget.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Floorplan {
    /// The blocks.
    pub blocks: Vec<FloorplanBlock>,
}

impl Floorplan {
    /// The paper's floorplan (Fig. 7 labels), with the pipeline chain
    /// broken down by stage according to a scaling profile. The budget
    /// sums to the published 0.86 mm².
    pub fn paper(scaling: &ScalingProfile) -> Self {
        // Non-pipeline blocks, from the Fig. 7 labels.
        let fixed = [
            ("Bandgap voltage generator", 0.040),
            ("SC-bias current generator", 0.025),
            ("Reference voltage buffer", 0.090),
            ("CM-voltage generator", 0.030),
            ("Delay and correction logic", 0.085),
            ("Clock receiver / distribution", 0.040),
        ];
        let fixed_total: f64 = fixed.iter().map(|(_, a)| a).sum();
        let chain_total = PAPER_AREA_MM2 - fixed_total;

        // Stage areas follow the capacitor/bias scaling, plus a fixed
        // per-stage overhead (comparators, local clocks, routing) that
        // does not scale.
        let factors = scaling.factors(10);
        let overhead_per_stage = 0.012;
        let scaled_total = chain_total - 10.0 * overhead_per_stage - 0.020; // flash
        let factor_sum: f64 = factors.iter().sum();

        let mut blocks: Vec<FloorplanBlock> = fixed
            .iter()
            .map(|(name, area)| FloorplanBlock {
                name: (*name).to_string(),
                area_mm2: *area,
            })
            .collect();
        for (i, f) in factors.iter().enumerate() {
            blocks.push(FloorplanBlock {
                name: format!("Pipeline stage {}", i + 1),
                area_mm2: overhead_per_stage + scaled_total * f / factor_sum,
            });
        }
        blocks.push(FloorplanBlock {
            name: "2b flash backend".to_string(),
            area_mm2: 0.020,
        });
        Self { blocks }
    }

    /// Total area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_mm2).sum()
    }

    /// Area of the pipeline chain (stages + flash), mm².
    pub fn chain_mm2(&self) -> f64 {
        self.blocks
            .iter()
            .filter(|b| b.name.starts_with("Pipeline") || b.name.contains("flash"))
            .map(|b| b.area_mm2)
            .sum()
    }

    /// Renders a proportional ASCII bar chart of the budget.
    pub fn render_ascii(&self) -> String {
        let total = self.total_mm2();
        let width = 46usize;
        let mut out = String::new();
        for b in &self.blocks {
            let bar = ((b.area_mm2 / total * width as f64).round() as usize).max(1);
            out.push_str(&format!(
                "{:32} {:5.3} mm^2 |{}\n",
                b.name,
                b.area_mm2,
                "#".repeat(bar)
            ));
        }
        out.push_str(&format!("{:32} {:5.3} mm^2\n", "TOTAL", total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sums_to_published_area() {
        let fp = Floorplan::paper(&ScalingProfile::Paper);
        assert!(
            (fp.total_mm2() - PAPER_AREA_MM2).abs() < 1e-9,
            "total {}",
            fp.total_mm2()
        );
    }

    #[test]
    fn stage_scaling_is_visible_in_the_areas() {
        let fp = Floorplan::paper(&ScalingProfile::Paper);
        let stage = |i: usize| {
            fp.blocks
                .iter()
                .find(|b| b.name == format!("Pipeline stage {i}"))
                .expect("stage present")
                .area_mm2
        };
        assert!(stage(1) > stage(2));
        assert!(stage(2) > stage(3));
        // Stages 3..10 equal (1/3 scaling).
        assert!((stage(3) - stage(10)).abs() < 1e-12);
    }

    #[test]
    fn unscaled_floorplan_is_larger_chain_share() {
        // Same budget function, uniform scaling: stage 1 area shrinks
        // because the scaled pool spreads evenly.
        let paper = Floorplan::paper(&ScalingProfile::Paper);
        let uniform = Floorplan::paper(&ScalingProfile::Uniform);
        let s1 = |fp: &Floorplan| {
            fp.blocks
                .iter()
                .find(|b| b.name == "Pipeline stage 1")
                .expect("stage 1")
                .area_mm2
        };
        assert!(s1(&paper) > s1(&uniform));
        // Total stays the (published) envelope in both bookkeepings.
        assert!((paper.total_mm2() - uniform.total_mm2()).abs() < 1e-9);
    }

    #[test]
    fn ascii_render_lists_every_block() {
        let fp = Floorplan::paper(&ScalingProfile::Paper);
        let txt = fp.render_ascii();
        for b in &fp.blocks {
            assert!(txt.contains(&b.name), "missing {}", b.name);
        }
        assert!(txt.contains("TOTAL"));
    }

    #[test]
    fn chain_dominates_the_die() {
        let fp = Floorplan::paper(&ScalingProfile::Paper);
        assert!(fp.chain_mm2() > 0.5 * fp.total_mm2());
    }
}
